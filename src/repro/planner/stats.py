"""Relation statistics — the planner's view of the data.

Cost-based planning needs to know, before touching any tuples, roughly
how much data each base relation holds and how it is spread over time.
:class:`Statistics` captures exactly that: cardinality, the relation
lifespan ``LS(r)`` (its *extent*), how many distinct chronons the
extent covers, and how long a typical tuple lives. The numbers are
cheap to collect (one pass) and are cached on the relation objects —
:meth:`repro.core.relation.HistoricalRelation.statistics` and
:meth:`repro.storage.engine.StoredRelation.statistics` both return one
of these.

Examples
--------
>>> from repro.core.lifespan import Lifespan
>>> from repro.core.relation import HistoricalRelation
>>> from repro.core.scheme import RelationScheme
>>> from repro.core import domains
>>> scheme = RelationScheme("R", {"K": domains.cd(domains.STRING)}, key=["K"])
>>> r = HistoricalRelation.from_rows(scheme, [
...     (Lifespan.interval(0, 9), {"K": "a"}),
...     (Lifespan.interval(20, 24), {"K": "b"}),
... ])
>>> s = r.statistics()
>>> (s.n_tuples, s.n_chronons, s.total_chronons)
(2, 15, 15)
>>> s.extent
Lifespan([0, 9], [20, 24])
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lifespan import EMPTY_LIFESPAN, Lifespan
from repro.core.relation import HistoricalRelation


@dataclass(frozen=True)
class Statistics:
    """Summary statistics of one historical relation.

    Attributes
    ----------
    n_tuples:
        Number of tuples (objects) in the relation.
    extent:
        ``LS(r)`` — the union of the tuple lifespans.
    n_chronons:
        Number of distinct chronons the extent covers.
    total_chronons:
        Sum of the per-tuple lifespan durations (tuple-chronons).
    n_intervals:
        Total number of maximal intervals across all tuple lifespans
        (reincarnated objects contribute several).
    stored:
        True if the relation lives behind the storage engine, where
        touching a tuple means decoding a heap record.
    n_attributes:
        Width of the scheme — the denominator of the selective-decode
        fraction a fused scan's cost uses (decode 2 of 4 attributes →
        half the decode bill).
    """

    n_tuples: int
    extent: Lifespan
    n_chronons: int
    total_chronons: int
    n_intervals: int
    stored: bool = False
    n_attributes: int = 0

    @classmethod
    def of(cls, source) -> "Statistics":
        """Collect statistics from a relation in one pass.

        *source* may be an in-memory
        :class:`~repro.core.relation.HistoricalRelation` or a
        :class:`~repro.storage.engine.StoredRelation`. Only lifespans
        are consulted; stored relations provide them **header-only**
        (:meth:`~repro.storage.engine.StoredRelation.iter_lifespans`),
        so collecting statistics — which happens at plan time, after
        every write — never pays a decoding scan.
        """
        if isinstance(source, HistoricalRelation):
            lifespans = (t.lifespan for t in source.tuples)
            stored = False
        else:
            lifespans = source.iter_lifespans()
            stored = True
        extent = EMPTY_LIFESPAN
        count = 0
        total = 0
        n_intervals = 0
        for lifespan in lifespans:
            count += 1
            extent = extent | lifespan
            total += len(lifespan)
            n_intervals += lifespan.n_intervals
        return cls(
            n_tuples=count,
            extent=extent,
            n_chronons=len(extent),
            total_chronons=total,
            n_intervals=n_intervals,
            stored=stored,
            n_attributes=len(source.scheme.attributes),
        )

    @property
    def is_empty(self) -> bool:
        """True for a relation with no tuples."""
        return self.n_tuples == 0

    @property
    def avg_duration(self) -> float:
        """Mean tuple lifespan duration in chronons."""
        if self.n_tuples == 0:
            return 0.0
        return self.total_chronons / self.n_tuples

    def overlap_selectivity(self, window: Lifespan) -> float:
        """Estimated fraction of tuples whose lifespan meets *window*.

        The classic interval-overlap estimate: a tuple of average
        duration ``d`` placed uniformly in an extent of ``E`` chronons
        overlaps a window covering ``w`` of those chronons with
        probability about ``(w + d) / E``, clamped to ``[0, 1]``.
        """
        if self.n_tuples == 0 or self.n_chronons == 0:
            return 0.0
        covered = len(window & self.extent)
        if covered == 0:
            return 0.0
        return min(1.0, (covered + self.avg_duration) / self.n_chronons)


#: Statistics of a relation the planner knows nothing about.
UNKNOWN = Statistics(
    n_tuples=0, extent=EMPTY_LIFESPAN, n_chronons=0,
    total_chronons=0, n_intervals=0, stored=False,
)
