"""The cost model — cardinality and work estimates over physical plans.

Costs are abstract work units, calibrated only relatively: touching an
in-memory tuple costs ``TUPLE_CPU``; decoding a stored heap record
costs ``DECODE`` (several times more); an index probe costs ``PROBE``
per ``log₂`` level. The absolute numbers do not matter — the planner
only ever *compares* alternatives over the same data.

Cardinality estimation uses textbook selectivities informed by
:class:`~repro.planner.stats.Statistics`:

* a time window keeps roughly ``(w + d) / E`` of the tuples, for
  window coverage ``w``, mean tuple duration ``d``, extent ``E``
  (see :meth:`Statistics.overlap_selectivity`);
* an equality criterion keeps ``1/n`` of the tuples when it binds the
  relation key, else ``DEFAULT_EQ_SELECTIVITY``;
* inequalities keep ``DEFAULT_THETA_SELECTIVITY``.

:func:`annotate` walks a physical tree bottom-up and stamps
``est_rows`` / ``est_cost`` / ``est_extent`` onto every node.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Tuple

from repro.algebra.predicates import (
    And,
    AttrOp,
    AttrRef,
    Not,
    Or,
    Predicate,
    referenced_attributes,
)
from repro.core.lifespan import ALWAYS, EMPTY_LIFESPAN, Lifespan
from repro.planner import plan as P
from repro.planner.stats import UNKNOWN, Statistics

#: Cost of handling one in-memory tuple.
TUPLE_CPU = 1.0
#: Cost of decoding one stored heap record (codec + tuple rebuild).
DECODE = 6.0
#: Cost of decoding just a record's header (lifespan + key + offsets) —
#: what a fused scan pays per *candidate* tuple before deciding whether
#: any attribute is worth decoding.
HEADER_DECODE = 1.0
#: Cost of one index probe level (hash hop / tree node).
PROBE = 2.0
#: Cost of evaluating a predicate against one tuple.
PREDICATE_CPU = 0.8
#: Cost of restricting one tuple to a lifespan.
RESTRICT_CPU = 1.2
#: Selectivity of ``A = a`` on a non-key attribute.
DEFAULT_EQ_SELECTIVITY = 0.15
#: Selectivity of ``A θ a`` for an inequality θ.
DEFAULT_THETA_SELECTIVITY = 0.4
#: Fraction of tuple pairs surviving a natural / time join.
JOIN_SELECTIVITY = 0.2

StatsEnv = Mapping[str, Statistics]


# -- leaf access-path formulas (used directly for plan choices) ----------


def full_scan(stats: Statistics) -> Tuple[float, float]:
    """``(rows, cost)`` of scanning the whole relation."""
    per_tuple = DECODE if stats.stored else TUPLE_CPU
    return float(stats.n_tuples), stats.n_tuples * per_tuple


def key_lookup(stats: Statistics) -> Tuple[float, float]:
    """``(rows, cost)`` of one key-index probe."""
    rows = 1.0 if stats.n_tuples else 0.0
    per_tuple = DECODE if stats.stored else TUPLE_CPU
    return rows, PROBE + rows * per_tuple


def interval_scan(stats: Statistics, window: Lifespan) -> Tuple[float, float]:
    """``(rows, cost)`` of fetching the tuples meeting *window*.

    The interval tree answers each window interval in
    ``O(log n + answers)``; every answer is then fetched through the
    key index and decoded. Interval scans therefore win exactly when
    the window is selective enough that ``answers × (probe + decode)``
    undercuts ``n × decode``.
    """
    rows = stats.n_tuples * stats.overlap_selectivity(window)
    probes = max(1, window.n_intervals) * PROBE * math.log2(stats.n_tuples + 2)
    per_match = PROBE + (DECODE if stats.stored else TUPLE_CPU)
    return rows, probes + rows * per_match


# -- predicate selectivity ----------------------------------------------


def predicate_selectivity(predicate: Predicate, stats: Statistics,
                          key: Tuple[str, ...] = ()) -> float:
    """Estimated fraction of tuples satisfying *predicate* somewhere."""
    if isinstance(predicate, AttrOp):
        if isinstance(predicate.rhs, AttrRef):
            return DEFAULT_THETA_SELECTIVITY
        if predicate.theta in ("=", "=="):
            if key == (predicate.attribute,) and stats.n_tuples:
                return 1.0 / stats.n_tuples
            return DEFAULT_EQ_SELECTIVITY
        if predicate.theta in ("!=", "<>"):
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return DEFAULT_THETA_SELECTIVITY
    if isinstance(predicate, And):
        sel = 1.0
        for part in predicate.parts:
            sel *= predicate_selectivity(part, stats, key)
        return sel
    if isinstance(predicate, Or):
        sel = 1.0
        for part in predicate.parts:
            sel *= 1.0 - predicate_selectivity(part, stats, key)
        return 1.0 - sel
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.inner, stats, key)
    return 0.5


# -- bottom-up annotation ------------------------------------------------


#: Per-relation key attribute tuples (for 1/n equality selectivity).
KeyEnv = Mapping[str, Tuple[str, ...]]


def annotate(node: P.PhysicalNode, stats_env: StatsEnv,
             keys: Optional[KeyEnv] = None) -> P.PhysicalNode:
    """Stamp ``est_rows`` / ``est_cost`` / ``est_extent`` bottom-up."""
    for child in node.children():
        annotate(child, stats_env, keys)
    _estimate(node, stats_env, keys or {})
    return node


def _stats_for(name: str, stats_env: StatsEnv) -> Statistics:
    return stats_env.get(name, UNKNOWN)


def _extent_of(node: P.PhysicalNode) -> Lifespan:
    return node.est_extent if node.est_extent is not None else ALWAYS


def _window_selectivity(extent: Lifespan, window: Lifespan) -> float:
    """Fraction of tuples of a stream with *extent* meeting *window*."""
    if extent.is_empty:
        return 0.0
    covered = len(window & extent)
    if covered == 0:
        return 0.0
    return min(1.0, 2.0 * covered / len(extent))


def _estimate(node: P.PhysicalNode, stats_env: StatsEnv, keys: KeyEnv) -> None:
    if isinstance(node, P.FullScan):
        stats = _stats_for(node.name, stats_env)
        node.est_rows, node.est_cost = full_scan(stats)
        node.est_extent = stats.extent
    elif isinstance(node, P.KeyLookup):
        stats = _stats_for(node.name, stats_env)
        node.est_rows, node.est_cost = key_lookup(stats)
        node.est_extent = stats.extent
    elif isinstance(node, P.IntervalScan):
        stats = _stats_for(node.name, stats_env)
        node.est_rows, node.est_cost = interval_scan(stats, node.window)
        node.est_extent = stats.extent & node.window.span()
    elif isinstance(node, P.FusedScan):
        _estimate_fused(node, stats_env, keys)
    elif isinstance(node, P.Materialized):
        node.est_rows = float(len(node.relation))
        node.est_cost = len(node.relation) * TUPLE_CPU
        node.est_extent = node.relation.lifespan()
    elif isinstance(node, P.Filter):
        child = node.child
        stats = _leaf_stats(child, stats_env)
        if isinstance(child, P.KeyLookup):
            # The lookup already applied the key criterion; the filter
            # is a recheck that keeps (almost) every candidate.
            sel = 1.0
        else:
            sel = predicate_selectivity(node.predicate, stats, _leaf_key(child, keys))
        if node.lifespan is not None:
            sel *= _window_selectivity(_extent_of(child), node.lifespan)
        node.est_rows = child.est_rows * sel
        node.est_cost = child.est_cost + child.est_rows * PREDICATE_CPU
        extent = _extent_of(child)
        if node.flavor == "when" and node.lifespan is not None:
            extent = extent & node.lifespan
        node.est_extent = extent
    elif isinstance(node, P.Slice):
        child = node.child
        sel = _window_selectivity(_extent_of(child), node.lifespan)
        node.est_rows = child.est_rows * sel
        node.est_cost = child.est_cost + child.est_rows * RESTRICT_CPU
        node.est_extent = _extent_of(child) & node.lifespan
    elif isinstance(node, P.DynamicSlice):
        child = node.child
        node.est_rows = child.est_rows * 0.8
        node.est_cost = child.est_cost + child.est_rows * RESTRICT_CPU
        node.est_extent = _extent_of(child)
    elif isinstance(node, (P.ProjectOp, P.RenameOp)):
        child = node.child
        node.est_rows = child.est_rows
        node.est_cost = child.est_cost + child.est_rows * TUPLE_CPU
        node.est_extent = _extent_of(child)
    elif isinstance(node, P.WhenOp):
        child = node.child
        node.est_rows = 1.0 if child.est_rows else 0.0
        node.est_cost = child.est_cost + child.est_rows * TUPLE_CPU
        node.est_extent = _extent_of(child)
    elif isinstance(node, P.SetOp):
        left, right = node.left, node.right
        base = left.est_cost + right.est_cost
        if node.op == "times":
            node.est_rows = left.est_rows * right.est_rows
            node.est_cost = base + node.est_rows * TUPLE_CPU
            node.est_extent = _extent_of(left) & _extent_of(right)
        elif node.op.startswith("union"):
            node.est_rows = left.est_rows + right.est_rows
            node.est_cost = base + node.est_rows * TUPLE_CPU
            node.est_extent = _extent_of(left) | _extent_of(right)
        elif node.op.startswith("intersect"):
            node.est_rows = min(left.est_rows, right.est_rows) * 0.5
            node.est_cost = base + (left.est_rows + right.est_rows) * TUPLE_CPU
            node.est_extent = _extent_of(left) & _extent_of(right)
        else:  # minus
            node.est_rows = left.est_rows * 0.5
            node.est_cost = base + (left.est_rows + right.est_rows) * TUPLE_CPU
            node.est_extent = _extent_of(left)
    elif isinstance(node, P.JoinOp):
        left, right = node.left, node.right
        pairs = left.est_rows * right.est_rows
        node.est_rows = pairs * JOIN_SELECTIVITY
        node.est_cost = (left.est_cost + right.est_cost
                         + pairs * PREDICATE_CPU + node.est_rows * TUPLE_CPU)
        node.est_extent = _extent_of(left) & _extent_of(right)
    else:  # pragma: no cover - future node types
        node.est_rows = 0.0
        node.est_cost = sum(c.est_cost for c in node.children())
        node.est_extent = EMPTY_LIFESPAN


def _estimate_fused(node: P.FusedScan, stats_env: StatsEnv, keys: KeyEnv) -> None:
    """Rows / cost / extent of a fused scan.

    The candidate set is the underlying access path's; per candidate
    the engine decodes a *header* (cheap) instead of a whole record,
    predicates decode only the attributes they reference, and only the
    tuples surviving every fused op pay (projected-fraction) decode
    and materialization costs. That per-attribute accounting is why a
    fused plan prices far below the scan-then-filter chain it
    replaces.
    """
    stats = _stats_for(node.name, stats_env)
    key = keys.get(node.name, ())
    n_attrs = max(1, stats.n_attributes)
    per_candidate = HEADER_DECODE if stats.stored else TUPLE_CPU
    if node.window is None:
        rows = float(stats.n_tuples)
        cost = rows * per_candidate
        extent = stats.extent
    else:
        rows = stats.n_tuples * stats.overlap_selectivity(node.window)
        probes = (max(1, node.window.n_intervals)
                  * PROBE * math.log2(stats.n_tuples + 2))
        cost = probes + rows * (PROBE + per_candidate)
        extent = stats.extent & node.window.span()
    touched: set = set()  # attributes fused predicates have decoded
    projected = None  # attribute names of the output scheme, if narrowed
    for op in node.ops:
        if isinstance(op, P.FusedFilter):
            fresh = referenced_attributes(op.predicate) - touched
            cost += rows * PREDICATE_CPU
            if stats.stored and fresh:
                # Decodes are memoized per view: each attribute is
                # billed the first time a predicate touches it, never
                # again.
                cost += rows * DECODE * min(1.0, len(fresh) / n_attrs)
            touched |= fresh
            sel = predicate_selectivity(op.predicate, stats, key)
            if op.lifespan is not None:
                sel *= _window_selectivity(extent, op.lifespan)
                if op.flavor == "when":
                    extent = extent & op.lifespan
            rows *= sel
        elif isinstance(op, P.FusedSlice):
            cost += rows * RESTRICT_CPU
            rows *= _window_selectivity(extent, op.lifespan)
            extent = extent & op.lifespan
        elif isinstance(op, P.FusedProject):
            projected = set(op.attributes)
    # Survivors materialize, decoding only the output columns their
    # predicates have not already paid for.
    if stats.stored:
        if projected is not None:
            remaining = len(projected - touched)
        else:
            remaining = max(0, n_attrs - len(touched))
        cost += rows * DECODE * (remaining / n_attrs)
    cost += rows * TUPLE_CPU
    node.est_rows = rows
    node.est_cost = cost
    node.est_extent = extent


def _leaf_stats(node: P.PhysicalNode, stats_env: StatsEnv) -> Statistics:
    """Statistics of the base relation under *node*, if it is a leaf access."""
    if isinstance(node, (P.FullScan, P.KeyLookup, P.IntervalScan, P.FusedScan)):
        return _stats_for(node.name, stats_env)
    return UNKNOWN


def _leaf_key(node: P.PhysicalNode, keys: KeyEnv) -> Tuple[str, ...]:
    """The key attributes of the base relation under a leaf access node."""
    if isinstance(node, (P.FullScan, P.KeyLookup, P.IntervalScan, P.FusedScan)):
        return keys.get(node.name, ())
    return ()
