"""The plan executor — a pipelined (Volcano-style) engine.

:func:`execute` interprets a physical plan tree against an environment
mapping relation names to either in-memory
:class:`~repro.core.relation.HistoricalRelation` values or
:class:`~repro.storage.engine.StoredRelation` handles.

Execution is **streaming**: scan leaves yield historical tuples one at
a time, and the unary operators (``Filter``, ``Slice``,
``DynamicSlice``, ``ProjectOp``, ``RenameOp``) are generators applying
the per-tuple kernels of :mod:`repro.algebra.kernels` — the same
per-tuple logic the naive evaluator runs, so *every plan shape
computes exactly the naive answer*; pipelining changes costs, never
results (property-tested in ``tests/test_planner.py``). Tuples
materialize into a relation only at **pipeline breakers**: set
operations, joins, the Ω operator, and the final result
(:class:`TupleStream.materialize`, or
:class:`~repro.database.result.QueryResult` consuming the stream).

Two scan-side optimizations make the pipeline earn the planner's
estimates on stored relations:

* :class:`~repro.planner.plan.FusedScan` leaves evaluate their fused
  filters / slices / projections against *lazily decoded* records
  (:class:`~repro.storage.engine.TupleView`): the header answers
  lifespan tests, predicates decode only the attributes they
  reference, and only surviving tuples materialize — with only their
  projected attributes decoded;
* plain scans serve repeat reads from the engine's decoded-tuple
  cache, so an unchanged relation is never decoded twice.

With ``record=True`` each node is stamped with its observed output
cardinality and wall-clock time — the "actual" column of ``EXPLAIN
ANALYZE``. The recording path materializes at every node boundary (the
point is to attribute rows and time to individual operators), so
``ANALYZE`` numbers describe the un-pipelined data flow.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, Mapping, Optional, Union

from repro.algebra import join as join_ops
from repro.algebra import kernels
from repro.algebra import merge as merge_ops
from repro.algebra import setops
from repro.algebra.project import project as project_op
from repro.algebra.rename import rename as rename_op
from repro.algebra.select import select_if, select_when
from repro.algebra.timeslice import dynamic_timeslice, timeslice
from repro.algebra.when import when as when_op
from repro.core.errors import AlgebraError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.planner import plan as P
from repro.storage.engine import TupleView

#: Execution environments may mix in-memory and stored relations.
Source = Any  # HistoricalRelation | StoredRelation
Env = Mapping[str, Source]

_SETOP_FNS = {
    "union": setops.union,
    "intersect": setops.intersection,
    "minus": setops.difference,
    "times": setops.cartesian_product,
    "union_merged": merge_ops.union_merge,
    "intersect_merged": merge_ops.intersection_merge,
    "minus_merged": merge_ops.difference_merge,
}


class TupleStream:
    """A stream of historical tuples plus the relation metadata needed
    to materialize them.

    The executor's unit of data flow: operators transform streams into
    streams without building intermediate relations. ``scheme`` and
    ``enforce_key`` are folded eagerly (operator by operator, exactly
    as the relation-level algebra would set them), so
    :meth:`materialize` builds the same
    :class:`~repro.core.relation.HistoricalRelation` the naive
    evaluator returns.
    """

    __slots__ = ("scheme", "enforce_key", "_tuples", "_relation", "_consumed")

    def __init__(self, scheme: RelationScheme,
                 tuples: Iterable[HistoricalTuple],
                 enforce_key: bool = True,
                 relation: Optional[HistoricalRelation] = None):
        self.scheme = scheme
        self.enforce_key = enforce_key
        self._tuples = tuples
        #: When the stream is exactly an existing relation (an unfused
        #: in-memory scan, a literal, a breaker's output), keep it:
        #: materializing again would only rehash every tuple.
        self._relation = relation
        self._consumed = False

    def _drain(self) -> Iterable[HistoricalTuple]:
        if self._consumed:
            raise AlgebraError(
                "tuple stream already consumed; a stream flows once — "
                "materialize() it if the tuples are needed again"
            )
        self._consumed = True
        return self._tuples

    def __iter__(self) -> Iterator[HistoricalTuple]:
        if self._relation is not None:
            return iter(self._relation)
        return iter(self._drain())

    def materialize(self) -> HistoricalRelation:
        """Drain the stream into a relation (a pipeline breaker)."""
        if self._relation is not None:
            return self._relation
        return HistoricalRelation(self.scheme, self._drain(),
                                  enforce_key=self.enforce_key)


def _source(env: Env, name: str) -> Source:
    try:
        return env[name]
    except KeyError:
        raise AlgebraError(f"no relation named {name!r} in environment") from None


def _is_stored(source: Source) -> bool:
    return not isinstance(source, HistoricalRelation)


def _enforces_key(source: Source) -> bool:
    return getattr(source, "enforce_key", True)


# -- the streaming engine ------------------------------------------------


def execute(node: P.PhysicalNode, env: Env,
            record: bool = False) -> Union[HistoricalRelation, Lifespan]:
    """Run *node* against *env*; optionally stamp actual rows / times."""
    if not record:
        result = execute_stream(node, env)
        if isinstance(result, TupleStream):
            return result.materialize()
        return result
    start = time.perf_counter()
    result = _run_materialized(node, env)
    node.actual_ms = (time.perf_counter() - start) * 1000.0
    if isinstance(result, HistoricalRelation):
        node.actual_rows = len(result)
    else:
        node.actual_rows = result.n_intervals
    return result


def execute_stream(node: P.PhysicalNode, env: Env
                   ) -> Union["TupleStream", Lifespan]:
    """Run *node* against *env*, returning the top of the pipeline.

    Relation-sorted plans come back as a lazy :class:`TupleStream` —
    the caller is the final pipeline breaker. An Ω-topped plan drains
    its child stream here (the union of lifespans needs every tuple,
    but never a relation) and returns the
    :class:`~repro.core.lifespan.Lifespan`.
    """
    if isinstance(node, P.WhenOp):
        # Ω over a bare stored scan needs only the header lifespans —
        # LS(r) without decoding a single attribute.
        if isinstance(node.child, P.FullScan):
            source = _source(env, node.child.name)
            if _is_stored(source):
                return Lifespan.union_all(source.iter_lifespans())
        child = _stream(node.child, env)
        return Lifespan.union_all(t.lifespan for t in child)
    return _stream(node, env)


def _stream(node: P.PhysicalNode, env: Env) -> TupleStream:
    """Translate a plan node into a (lazy) tuple stream.

    Structural work — environment lookups, scheme folding, argument
    validation — happens *eagerly* here, so errors surface when the
    pipeline is built, exactly as they do in the naive evaluator.
    Only the per-tuple work is deferred.
    """
    # -- leaves ----------------------------------------------------------
    if isinstance(node, P.FullScan):
        source = _source(env, node.name)
        if _is_stored(source):
            return TupleStream(source.scheme, source.scan())
        return TupleStream(source.scheme, iter(source), source.enforce_key,
                           relation=source)
    if isinstance(node, P.Materialized):
        relation = node.relation
        return TupleStream(relation.scheme, iter(relation),
                           relation.enforce_key, relation=relation)
    if isinstance(node, P.KeyLookup):
        source = _source(env, node.name)
        t = source.get(*node.key)
        return TupleStream(source.scheme, () if t is None else (t,),
                           _enforces_key(source))
    if isinstance(node, P.IntervalScan):
        source = _source(env, node.name)
        return TupleStream(source.scheme,
                           _window_tuples(source, node.window),
                           _enforces_key(source))
    if isinstance(node, P.FusedScan):
        return _fused_stream(node, env)

    # -- streaming unary operators ---------------------------------------
    if isinstance(node, P.Filter):
        child = _stream(node.child, env)
        if node.flavor == "if":
            tuples = (t for t in child
                      if kernels.select_if_keeps(t, node.predicate,
                                                 node.quantifier, node.lifespan))
        else:
            tuples = _select_when_tuples(child, node.predicate, node.lifespan)
        return TupleStream(child.scheme, tuples, child.enforce_key)
    if isinstance(node, P.Slice):
        child = _stream(node.child, env)
        lifespan = node.lifespan
        tuples = (s for t in child
                  if (s := kernels.slice_tuple(t, lifespan)) is not None)
        return TupleStream(child.scheme, tuples, child.enforce_key)
    if isinstance(node, P.DynamicSlice):
        child = _stream(node.child, env)
        kernels.check_time_valued(child.scheme, node.attribute)
        tuples = _dynamic_slice_tuples(child, node.attribute)
        return TupleStream(child.scheme, tuples, child.enforce_key)
    if isinstance(node, P.ProjectOp):
        child = _stream(node.child, env)
        names = child.scheme.check_attributes(node.attributes)
        scheme = child.scheme.project(names)
        keeps_key = set(child.scheme.key).issubset(names)
        tuples = (t.project(names, scheme) for t in child)
        return TupleStream(scheme, tuples, child.enforce_key and keeps_key)
    if isinstance(node, P.RenameOp):
        child = _stream(node.child, env)
        mapping = dict(node.mapping)
        scheme = child.scheme.rename(mapping)
        tuples = (t.rename(mapping, scheme) for t in child)
        return TupleStream(scheme, tuples, child.enforce_key)

    # -- pipeline breakers -----------------------------------------------
    if isinstance(node, (P.SetOp, P.JoinOp)):
        left = _stream(node.left, env).materialize()
        right = _stream(node.right, env).materialize()
        result = _binary(node, left, right)
        return TupleStream(result.scheme, iter(result), result.enforce_key,
                           relation=result)
    raise AlgebraError(f"executor cannot run node {node!r}")


def _select_when_tuples(child: TupleStream, predicate, lifespan):
    for t in child:
        window = kernels.select_when_window(t, predicate, lifespan)
        restricted = kernels.when_restrict(t, window)
        if restricted is not None:
            yield restricted


def _dynamic_slice_tuples(child: TupleStream, attribute: str):
    for t in child:
        window = kernels.dynamic_window(t, attribute)
        if window.is_empty:
            continue
        restricted = t.restrict(window)
        if restricted is not None:
            yield restricted


def _window_tuples(source: Source, window: Lifespan):
    """The tuples of *source* whose lifespans meet *window* (deduped)."""
    if _is_stored(source):
        scheme = source.scheme
        for item in source.window_lazy(window):
            yield item.materialize(scheme) if isinstance(item, TupleView) else item
    else:
        # A plan carrying an interval scan can still run against an
        # in-memory binding of the same name; the semantics are just an
        # overlap filter.
        for t in source:
            if t.lifespan.overlaps(window):
                yield t


def _binary(node: P.PhysicalNode, left: HistoricalRelation,
            right: HistoricalRelation) -> HistoricalRelation:
    if isinstance(node, P.SetOp):
        return _SETOP_FNS[node.op](left, right)
    if node.kind == "theta":
        return join_ops.theta_join(left, right, node.left_attr,
                                   node.theta, node.right_attr)
    if node.kind == "natural":
        return join_ops.natural_join(left, right)
    return join_ops.time_join(left, right, node.via)


# -- fused scans ---------------------------------------------------------


def _fused_stream(node: P.FusedScan, env: Env) -> TupleStream:
    """Run a fused scan: apply the fused ops per tuple, while reading.

    Over a stored relation the items are lazy
    :class:`~repro.storage.engine.TupleView` records (or already-cached
    tuples); over an in-memory relation the ops apply eagerly to each
    tuple. Either way every op runs through the same streaming kernels
    the naive operators use, in the original bottom-up order.
    """
    source = _source(env, node.name)
    steps, out_scheme, enforce_key = _fused_steps(node, source)
    if node.window is None:
        if _is_stored(source):
            items = source.scan_lazy()
        else:
            items = iter(source)
    elif _is_stored(source):
        items = source.window_lazy(node.window)
    else:
        window = node.window
        items = (t for t in source if t.lifespan.overlaps(window))
    return TupleStream(out_scheme,
                       _fused_tuples(items, steps, out_scheme),
                       enforce_key)


def _fused_steps(node: P.FusedScan, source: Source):
    """Resolve the fused ops against the source scheme, eagerly.

    Returns ``(steps, output scheme, enforce_key)`` where each step is
    ``(op, projected names, target scheme)`` — the latter two are None
    except for projections, which pre-compute their target scheme once
    per scan instead of once per tuple.
    """
    scheme = source.scheme
    enforce_key = _enforces_key(source)
    # LS(r) backs the identity-slice elision below; computed on the
    # first slice op only (statistics are header-only and cached, but
    # filter-only scans need no extent at all).
    extent: Optional[Lifespan] = None
    steps = []
    for op in node.ops:
        if isinstance(op, P.FusedSlice):
            if extent is None:
                extent = source.statistics().extent
            if extent.issubset(op.lifespan):
                # τ_L with L ⊇ LS(r) restricts nothing: every tuple's
                # lifespan is already inside L. Dropping the op keeps
                # wide slices at scan speed.
                continue
            steps.append((op, None, None))
        elif isinstance(op, P.FusedProject):
            names = scheme.check_attributes(op.attributes)
            keeps_key = set(scheme.key).issubset(names)
            scheme = scheme.project(names)
            enforce_key = enforce_key and keeps_key
            steps.append((op, names, scheme))
        else:
            steps.append((op, None, None))
    return steps, scheme, enforce_key


def _fused_tuples(items, steps, out_scheme: RelationScheme):
    for item in items:
        if isinstance(item, TupleView):
            t = _apply_fused_lazy(item, steps, out_scheme)
        else:
            t = _apply_fused_eager(item, steps)
        if t is not None:
            yield t


def _apply_fused_eager(t: HistoricalTuple, steps) -> Optional[HistoricalTuple]:
    """The fused op chain over a real tuple — the naive calls, inlined."""
    for op, names, scheme in steps:
        if isinstance(op, P.FusedFilter):
            if op.flavor == "if":
                if not kernels.select_if_keeps(t, op.predicate,
                                               op.quantifier, op.lifespan):
                    return None
            else:
                window = kernels.select_when_window(t, op.predicate, op.lifespan)
                t = kernels.when_restrict(t, window)
                if t is None:
                    return None
        elif isinstance(op, P.FusedSlice):
            t = kernels.slice_tuple(t, op.lifespan)
            if t is None:
                return None
        else:  # FusedProject
            t = t.project(names, scheme)
    return t


def _apply_fused_lazy(view: TupleView, steps,
                      out_scheme: RelationScheme) -> Optional[HistoricalTuple]:
    """The fused op chain over a half-decoded record.

    Restrictions accumulate on the view (its ``value()`` answers are
    always restricted to the current lifespan, so the kernels see
    exactly what they would see on an eagerly-restricted tuple);
    projections narrow the visible attributes. Only a view surviving
    every op materializes — and only the output scheme's attributes
    ever decode.
    """
    for op, names, scheme in steps:
        if isinstance(op, P.FusedFilter):
            if op.flavor == "if":
                if not kernels.select_if_keeps(view, op.predicate,
                                               op.quantifier, op.lifespan):
                    return None
            else:
                window = kernels.select_when_window(view, op.predicate, op.lifespan)
                if window.is_empty or not view.restrict(window):
                    return None
        elif isinstance(op, P.FusedSlice):
            if not view.restrict(op.lifespan):
                return None
        else:  # FusedProject
            view.project(names, scheme)
    return view.materialize(out_scheme)


# -- the recording (EXPLAIN ANALYZE) engine ------------------------------


def _run_materialized(node: P.PhysicalNode, env: Env):
    """Operator-at-a-time execution, stamping actuals on every node.

    Used only under ``record=True``: each node materializes its output
    so its row count and wall-clock contribution are observable. The
    interior operators call the same relation-level algebra functions
    the naive evaluator uses (which themselves run the streaming
    kernels), so the answer is identical to the pipelined path's.
    """
    # -- leaves ----------------------------------------------------------
    if isinstance(node, P.FullScan):
        source = _source(env, node.name)
        if _is_stored(source):
            return source.to_relation()
        return source
    if isinstance(node, P.Materialized):
        return node.relation
    if isinstance(node, (P.KeyLookup, P.IntervalScan, P.FusedScan)):
        return _stream(node, env).materialize()

    # -- interior operators ---------------------------------------------
    kids = [execute(child, env, record=True) for child in node.children()]
    if isinstance(node, P.Filter):
        if node.flavor == "if":
            return select_if(kids[0], node.predicate, node.quantifier, node.lifespan)
        return select_when(kids[0], node.predicate, node.lifespan)
    if isinstance(node, P.Slice):
        return timeslice(kids[0], node.lifespan)
    if isinstance(node, P.DynamicSlice):
        return dynamic_timeslice(kids[0], node.attribute)
    if isinstance(node, P.ProjectOp):
        return project_op(kids[0], node.attributes)
    if isinstance(node, P.RenameOp):
        return rename_op(kids[0], dict(node.mapping))
    if isinstance(node, P.WhenOp):
        return when_op(kids[0])
    if isinstance(node, (P.SetOp, P.JoinOp)):
        return _binary(node, kids[0], kids[1])
    raise AlgebraError(f"executor cannot run node {node!r}")
