"""The plan executor — physical operators against real access methods.

:func:`execute` interprets a physical plan tree against an environment
mapping relation names to either in-memory
:class:`~repro.core.relation.HistoricalRelation` values or
:class:`~repro.storage.engine.StoredRelation` handles. Leaf access
paths dispatch to the matching engine method (``scan`` / ``get`` /
``alive_during``); interior operators call the same algebra functions
the naive evaluator uses, so *every plan shape computes exactly the
naive answer* — the access path changes costs, never results (the
engine's contract, restated at the planner level and property-tested
in ``tests/test_planner.py``).

With ``record=True`` each node is stamped with its observed output
cardinality and wall-clock time — the "actual" column of
``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Union

from repro.algebra import join as join_ops
from repro.algebra import merge as merge_ops
from repro.algebra import setops
from repro.algebra.project import project as project_op
from repro.algebra.rename import rename as rename_op
from repro.algebra.select import select_if, select_when
from repro.algebra.timeslice import dynamic_timeslice, timeslice
from repro.algebra.when import when as when_op
from repro.core.errors import AlgebraError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.planner import plan as P

#: Execution environments may mix in-memory and stored relations.
Source = Any  # HistoricalRelation | StoredRelation
Env = Mapping[str, Source]

_SETOP_FNS = {
    "union": setops.union,
    "intersect": setops.intersection,
    "minus": setops.difference,
    "times": setops.cartesian_product,
    "union_merged": merge_ops.union_merge,
    "intersect_merged": merge_ops.intersection_merge,
    "minus_merged": merge_ops.difference_merge,
}


def _source(env: Env, name: str) -> Source:
    try:
        return env[name]
    except KeyError:
        raise AlgebraError(f"no relation named {name!r} in environment") from None


def _is_stored(source: Source) -> bool:
    return not isinstance(source, HistoricalRelation)


def execute(node: P.PhysicalNode, env: Env,
            record: bool = False) -> Union[HistoricalRelation, Lifespan]:
    """Run *node* against *env*; optionally stamp actual rows / times."""
    if not record:
        return _run(node, env, False)
    start = time.perf_counter()
    result = _run(node, env, True)
    node.actual_ms = (time.perf_counter() - start) * 1000.0
    if isinstance(result, HistoricalRelation):
        node.actual_rows = len(result)
    else:
        node.actual_rows = result.n_intervals
    return result


def _run(node: P.PhysicalNode, env: Env, record: bool):
    # -- leaves ----------------------------------------------------------
    if isinstance(node, P.FullScan):
        source = _source(env, node.name)
        if _is_stored(source):
            return source.to_relation()
        return source
    if isinstance(node, P.Materialized):
        return node.relation
    if isinstance(node, P.KeyLookup):
        source = _source(env, node.name)
        t = source.get(*node.key)
        return HistoricalRelation(source.scheme, () if t is None else (t,))
    if isinstance(node, P.IntervalScan):
        source = _source(env, node.name)
        seen: set = set()
        out = []
        for lo, hi in node.window.intervals:
            for t in source.alive_during(lo, hi):
                key = t.key_value()
                if key not in seen:
                    seen.add(key)
                    out.append(t)
        return HistoricalRelation(source.scheme, out)

    # -- interior operators ---------------------------------------------
    kids = [execute(child, env, record) for child in node.children()]
    if isinstance(node, P.Filter):
        if node.flavor == "if":
            return select_if(kids[0], node.predicate, node.quantifier, node.lifespan)
        return select_when(kids[0], node.predicate, node.lifespan)
    if isinstance(node, P.Slice):
        return timeslice(kids[0], node.lifespan)
    if isinstance(node, P.DynamicSlice):
        return dynamic_timeslice(kids[0], node.attribute)
    if isinstance(node, P.ProjectOp):
        return project_op(kids[0], node.attributes)
    if isinstance(node, P.RenameOp):
        return rename_op(kids[0], dict(node.mapping))
    if isinstance(node, P.WhenOp):
        return when_op(kids[0])
    if isinstance(node, P.SetOp):
        return _SETOP_FNS[node.op](kids[0], kids[1])
    if isinstance(node, P.JoinOp):
        if node.kind == "theta":
            return join_ops.theta_join(
                kids[0], kids[1], node.left_attr, node.theta, node.right_attr
            )
        if node.kind == "natural":
            return join_ops.natural_join(kids[0], kids[1])
        return join_ops.time_join(kids[0], kids[1], node.via)
    raise AlgebraError(f"executor cannot run node {node!r}")
