"""The cost-based planner — algebra expressions to physical plans.

Planning proceeds in four phases:

1. **Normalize** — the expression is rewritten to a fixpoint with the
   Section 5 laws (:func:`repro.algebra.rewriter.rewrite`): slices
   fuse and sink toward the leaves, selects distribute over set
   operations. Normalization is what surfaces the
   ``TimeSlice(Rel(...))`` and ``Select(Rel(...))`` shapes the access
   paths feed on.
2. **Translate** — the logical tree maps onto physical operators. At
   each leaf touched by a slice, a bounded select, or a key-equality
   criterion, the planner *costs the alternatives* (full scan vs.
   interval-index scan vs. key lookup) using the base relation's
   :class:`~repro.planner.stats.Statistics` and keeps the cheapest.
3. **Fuse** — :func:`fuse_plan` collapses Filter / Slice / Project
   chains sitting on base-relation scans into
   :class:`~repro.planner.plan.FusedScan` leaves, so the pipelined
   executor applies them per tuple *during* the scan — with selective
   decode on stored relations (skip with ``Planner(fuse=False)``).
4. **Estimate** — :func:`repro.planner.cost.annotate` stamps row and
   cost estimates on every node, for EXPLAIN and for tests.

Access-path choices are *conservative*: every candidate access path
returns a superset of the tuples the logical operator needs, and the
logical operator is still applied on top, so a wrong statistics guess
can only cost time, never correctness.

Example
-------
>>> from repro.algebra import expr as E
>>> from repro.core.lifespan import Lifespan
>>> from repro.planner import Planner
>>> from repro.workloads import PersonnelConfig, generate_personnel
>>> emp = generate_personnel(PersonnelConfig(n_employees=12, seed=3))
>>> tree = E.TimeSlice(E.Rel("EMP"), Lifespan.interval(10, 14))
>>> plan = Planner().plan(tree, {"EMP": emp})
>>> plan.execute({"EMP": emp}) == tree.evaluate({"EMP": emp})
True
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Tuple

from repro.algebra import expr as E
from repro.algebra.predicates import (
    And,
    AttrOp,
    AttrRef,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.rewriter import DEFAULT_RULES, Rule, rewrite
from repro.core.relation import HistoricalRelation
from repro.planner import cost
from repro.planner import plan as P
from repro.planner.stats import Statistics

Env = Mapping[str, object]  # name -> HistoricalRelation | StoredRelation


def _statistics(source) -> Statistics:
    """Statistics of an in-memory or stored relation (cached on it)."""
    return source.statistics()


class Planner:
    """Plans algebra expressions against a catalog of base relations."""

    def __init__(self, rules: Tuple[Rule, ...] = DEFAULT_RULES,
                 normalize: bool = True, fuse: bool = True):
        self.rules = rules
        self.normalize = normalize
        #: Run the physical fusion pass (:func:`fuse_plan`) — collapse
        #: Filter / Slice / Project chains into the scan leaf so the
        #: executor applies them per tuple during the scan. ``False``
        #: keeps the one-node-per-operator plans (for comparison
        #: benches and debugging).
        self.fuse = fuse

    # -- entry point -----------------------------------------------------

    def plan(self, expr: E.Expr, env: Env, when: bool = False) -> P.Plan:
        """Produce an annotated physical plan for *expr* over *env*.

        With ``when=True`` the plan is topped with the Ω operator and
        executing it yields a :class:`~repro.core.lifespan.Lifespan`
        (the compiled form of a top-level ``WHEN (...)`` query).
        """
        started = time.perf_counter()
        normalized = rewrite(expr, self.rules) if self.normalize else expr
        return self._finish(expr, normalized, env, when, started)

    def plan_normalized(self, normalized: E.Expr, env: Env,
                        when: bool = False,
                        logical: Optional[E.Expr] = None) -> P.Plan:
        """Plan an expression that is already in normal form.

        Skips the Section 5 rewrite fixpoint — the expensive,
        binding-independent phase of planning — and goes straight to
        translation and costing (which *are* binding- and
        statistics-dependent: a freshly bound key value can turn a scan
        into a key lookup, and new data changes the access-path
        choice). This is how a prepared statement re-plans cheaply per
        execution: normalize once at prepare time, translate + cost per
        binding.
        """
        started = time.perf_counter()
        logical = normalized if logical is None else logical
        return self._finish(logical, normalized, env, when, started)

    def _finish(self, logical: E.Expr, normalized: E.Expr, env: Env,
                when: bool, started: float) -> P.Plan:
        stats_env, key_env = self._collect_stats(normalized, env)
        root = self._translate(normalized, env, stats_env)
        if self.fuse:
            root = fuse_plan(root)
        if when:
            root = P.WhenOp(root)
        cost.annotate(root, stats_env, key_env)
        planning_ms = (time.perf_counter() - started) * 1000.0
        return P.Plan(root, logical, normalized, planning_ms)

    # -- statistics ------------------------------------------------------

    def _collect_stats(self, expr: E.Expr, env: Env
                       ) -> tuple[dict[str, Statistics], dict[str, tuple]]:
        stats: dict[str, Statistics] = {}
        keys: dict[str, tuple] = {}

        def visit(node: E.Expr) -> None:
            if isinstance(node, E.Rel) and node.name in env and node.name not in stats:
                stats[node.name] = _statistics(env[node.name])
                keys[node.name] = tuple(env[node.name].scheme.key)
            for child in node.children():
                visit(child)

        visit(expr)
        return stats, keys

    # -- translation -----------------------------------------------------

    def _translate(self, expr: E.Expr, env: Env,
                   stats: Mapping[str, Statistics]) -> P.PhysicalNode:
        if isinstance(expr, E.Rel):
            return P.FullScan(expr.name)
        if isinstance(expr, E.Literal):
            return P.Materialized(expr.relation)

        if isinstance(expr, E.TimeSlice):
            access = self._windowed_access(expr.child, expr.lifespan, env, stats)
            child = access or self._translate(expr.child, env, stats)
            return P.Slice(child, expr.lifespan)

        if isinstance(expr, (E.SelectIf, E.SelectWhen)):
            return self._translate_select(expr, env, stats)

        if isinstance(expr, E.DynamicTimeSlice):
            return P.DynamicSlice(self._translate(expr.child, env, stats),
                                  expr.attribute)
        if isinstance(expr, E.Project):
            return P.ProjectOp(self._translate(expr.child, env, stats),
                               expr.attributes)
        if isinstance(expr, E.Rename):
            return P.RenameOp(self._translate(expr.child, env, stats),
                              expr.mapping)

        setop = _SETOP_KINDS.get(type(expr))
        if setop is not None:
            return P.SetOp(
                setop,
                self._translate(expr.left, env, stats),
                self._translate(expr.right, env, stats),
            )
        if isinstance(expr, E.ThetaJoin):
            return P.JoinOp(
                "theta",
                self._translate(expr.left, env, stats),
                self._translate(expr.right, env, stats),
                left_attr=expr.left_attr, theta=expr.theta,
                right_attr=expr.right_attr,
            )
        if isinstance(expr, E.NaturalJoin):
            return P.JoinOp(
                "natural",
                self._translate(expr.left, env, stats),
                self._translate(expr.right, env, stats),
            )
        if isinstance(expr, E.TimeJoin):
            return P.JoinOp(
                "time",
                self._translate(expr.left, env, stats),
                self._translate(expr.right, env, stats),
                via=expr.attribute,
            )
        raise TypeError(f"planner cannot translate expression {expr!r}")

    def _translate_select(self, expr, env, stats) -> P.PhysicalNode:
        """SELECT over a base leaf: consider key lookup and interval scan."""
        flavor = "if" if isinstance(expr, E.SelectIf) else "when"
        quantifier = expr.quantifier if flavor == "if" else None
        child = expr.child
        access: Optional[P.PhysicalNode] = None
        if isinstance(child, E.Rel) and child.name in env:
            key = _key_equality(expr.predicate, env[child.name])
            if key is not None:
                access = P.KeyLookup(child.name, key)
            elif expr.lifespan is not None:
                # A bounded select only ever keeps tuples alive inside
                # the bound: the bound is a candidate access window.
                access = self._windowed_access(child, expr.lifespan, env, stats)
        physical_child = access or self._translate(child, env, stats)
        return P.Filter(physical_child, flavor, expr.predicate,
                        quantifier, expr.lifespan)

    def _windowed_access(self, child: E.Expr, window, env, stats
                         ) -> Optional[P.PhysicalNode]:
        """The cheapest way to fetch the tuples of *child* meeting *window*.

        Only base relations backed by the storage engine offer an
        interval index; for those, compare a full scan against an
        interval scan and keep the winner. Returns None when *child*
        is not an indexable leaf (caller falls back to generic
        translation).
        """
        if not isinstance(child, E.Rel) or child.name not in env:
            return None
        source = env[child.name]
        if isinstance(source, HistoricalRelation):
            return None  # no interval index; a full scan is all there is
        relation_stats = stats.get(child.name) or _statistics(source)
        _, scan_cost = cost.full_scan(relation_stats)
        _, index_cost = cost.interval_scan(relation_stats, window)
        if index_cost < scan_cost:
            return P.IntervalScan(child.name, window)
        return P.FullScan(child.name)


# -- physical fusion -----------------------------------------------------


def _fusable_predicate(predicate: Predicate) -> bool:
    """True when *predicate* can run against a half-decoded tuple.

    The built-in predicate language (``A θ a`` atoms and the boolean
    combinators) touches tuples only through ``.lifespan`` and
    ``.value(attr)`` — exactly what a lazy
    :class:`~repro.storage.engine.TupleView` offers. ``Custom``
    predicates wrap arbitrary callables that may poke anything, so
    filters carrying them stay un-fused (they still stream, over fully
    materialized tuples).
    """
    if isinstance(predicate, (AttrOp, TruePredicate)):
        return True
    if isinstance(predicate, (And, Or)):
        return all(_fusable_predicate(p) for p in predicate.parts)
    if isinstance(predicate, Not):
        return _fusable_predicate(predicate.inner)
    return False


def _fused_op(node: P.PhysicalNode) -> Optional[P.FusedOp]:
    """The fused-op descriptor for *node*, or None when not fusable."""
    if isinstance(node, P.Filter) and _fusable_predicate(node.predicate):
        return P.FusedFilter(node.flavor, node.predicate,
                             node.quantifier, node.lifespan)
    if isinstance(node, P.Slice):
        return P.FusedSlice(node.lifespan)
    if isinstance(node, P.ProjectOp):
        return P.FusedProject(node.attributes)
    return None


def fuse_plan(node: P.PhysicalNode) -> P.PhysicalNode:
    """Collapse Filter / Slice / Project chains into their scan leaves.

    Bottom-up physical rewrite: whenever a fusable unary operator sits
    directly on a base-relation scan (:class:`~repro.planner.plan.FullScan`,
    :class:`~repro.planner.plan.IntervalScan`, or an already-fused
    scan), the operator moves *into* the scan as a per-tuple op. The
    op order inside the fused node preserves the original bottom-up
    evaluation order, so the fused scan computes exactly what the
    operator chain computed — tuple by tuple, during the scan, with
    selective decode on stored relations.

    Key lookups stay un-fused (a single probe has nothing to gain) and
    so do operators over pipeline breakers, dynamic slices, and
    renames — those keep streaming through the executor's generic
    operators.
    """
    if isinstance(node, (P.Filter, P.Slice, P.ProjectOp)):
        child = fuse_plan(node.child)
        op = _fused_op(node)
        if op is not None:
            if isinstance(child, (P.FullScan, P.IntervalScan)):
                window = child.window if isinstance(child, P.IntervalScan) else None
                return P.FusedScan(child.name, window, (op,))
            if isinstance(child, P.FusedScan):
                child.ops = child.ops + (op,)
                return child
        node.child = child
        return node
    if isinstance(node, P._Unary):
        node.child = fuse_plan(node.child)
        return node
    if isinstance(node, P._Binary):
        node.left = fuse_plan(node.left)
        node.right = fuse_plan(node.right)
        return node
    return node


#: Logical → physical set-operation kinds.
_SETOP_KINDS = {
    E.Union_: "union",
    E.Intersection: "intersect",
    E.Difference: "minus",
    E.Product: "times",
    E.UnionMerge: "union_merged",
    E.IntersectionMerge: "intersect_merged",
    E.DifferenceMerge: "minus_merged",
}


def _key_equality(predicate: Predicate, source) -> Optional[Tuple[object, ...]]:
    """The key value bound by *predicate*, if it pins the relation key.

    Matches ``K = c`` (or a top-level conjunction containing it) for a
    single-attribute key ``K`` and constant ``c``. Sound because key
    attributes are constant-valued: any tuple the select keeps must
    carry exactly that key value, so the key index returns a superset
    of the answer and the filter on top settles the rest. In-memory
    relations qualify only while well-keyed (the standard set
    operators can produce several tuples per key — Figure 11).
    """
    scheme = source.scheme
    if len(scheme.key) != 1:
        return None
    if isinstance(source, HistoricalRelation) and not source.is_well_keyed:
        return None
    key_attr = scheme.key[0]
    atoms = predicate.parts if isinstance(predicate, And) else (predicate,)
    for atom in atoms:
        if (isinstance(atom, AttrOp) and atom.theta in ("=", "==")
                and atom.attribute == key_attr
                and not isinstance(atom.rhs, AttrRef)):
            return (atom.rhs,)
    return None


def plan(expr: E.Expr, env: Env, when: bool = False, *,
         normalize: bool = True, fuse: bool = True) -> P.Plan:
    """Plan *expr* with a default :class:`Planner` (convenience)."""
    return Planner(normalize=normalize, fuse=fuse).plan(expr, env, when=when)
