"""Cost-based query planning for the historical algebra.

The planner closes the loop between the Section 5 rewrite laws
(:mod:`repro.algebra.rewriter`) and the Figure 9 storage stack
(:mod:`repro.storage.engine`): a logical expression is normalized,
translated to a physical plan whose leaves choose between full scans,
key-index lookups, and interval-index scans from relation statistics,
and executed against either in-memory relations or stored ones — with
``EXPLAIN`` rendering the choices and their estimated vs. actual
costs.

Data flow::

    HRQL text ─parse→ AST ─compile→ algebra Expr
        ─normalize (Section 5 laws)→ Expr
        ─translate + cost access paths→ physical Plan
        ─execute→ HistoricalRelation | Lifespan
"""

from repro.planner.cost import annotate, full_scan, interval_scan, key_lookup
from repro.planner.executor import TupleStream, execute, execute_stream
from repro.planner.explain import PlanExplanation, explain, render_plan
from repro.planner.plan import (
    DynamicSlice,
    Filter,
    FullScan,
    FusedFilter,
    FusedProject,
    FusedScan,
    FusedSlice,
    IntervalScan,
    JoinOp,
    KeyLookup,
    Materialized,
    PhysicalNode,
    Plan,
    ProjectOp,
    RenameOp,
    SetOp,
    Slice,
    WhenOp,
)
from repro.planner.planner import Planner, fuse_plan, plan
from repro.planner.stats import Statistics

__all__ = [
    "DynamicSlice",
    "Filter",
    "FullScan",
    "FusedFilter",
    "FusedProject",
    "FusedScan",
    "FusedSlice",
    "IntervalScan",
    "JoinOp",
    "KeyLookup",
    "Materialized",
    "PhysicalNode",
    "Plan",
    "PlanExplanation",
    "Planner",
    "ProjectOp",
    "RenameOp",
    "SetOp",
    "Slice",
    "Statistics",
    "TupleStream",
    "WhenOp",
    "annotate",
    "execute",
    "execute_stream",
    "explain",
    "full_scan",
    "fuse_plan",
    "interval_scan",
    "key_lookup",
    "plan",
    "render_plan",
]
