"""EXPLAIN — render a physical plan as an annotated tree.

:func:`explain` plans an expression and renders the chosen operators
with their cost estimates; with ``analyze=True`` it also *executes*
the plan and prints observed row counts and timings next to the
estimates, so estimate quality is visible at a glance. Pushed-down
operators render inside their fused scan leaf, in application order::

    Plan  (normalized 3 → 2 nodes, planning 0.1 ms)
    └─ FusedScan[EMP ∩ Lifespan([10, 20]) | τ Lifespan([10, 20])]  (est rows≈34, cost≈122.6)

(``ANALYZE`` runs the recording executor, which materializes at every
node boundary so each operator's rows and milliseconds are its own —
see :mod:`repro.planner.executor`.)

The same renderer backs the HRQL ``EXPLAIN [ANALYZE] <query>``
statement and :meth:`repro.database.database.HistoricalDatabase.explain`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.algebra import expr as E
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.planner import plan as P
from repro.planner.executor import execute
from repro.planner.planner import Planner


class PlanExplanation:
    """The result of EXPLAIN: a plan, its rendering, and (optionally)
    the answer computed while measuring actual costs."""

    def __init__(self, plan: P.Plan, analyzed: bool,
                 result: Optional[Union[HistoricalRelation, Lifespan]] = None):
        self.plan = plan
        self.analyzed = analyzed
        #: The query answer, present only after EXPLAIN ANALYZE.
        self.result = result

    @property
    def text(self) -> str:
        """The rendered plan tree."""
        return render_plan(self.plan)

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        mode = "analyzed" if self.analyzed else "estimated"
        return f"PlanExplanation({self.plan.root.label()}, {mode})"


def _node_line(node: P.PhysicalNode) -> str:
    parts = [f"est rows≈{node.est_rows:.1f}", f"cost≈{node.est_cost:.1f}"]
    annotation = f"({', '.join(parts)})"
    if node.actual_rows is not None:
        actual = f"(actual rows={node.actual_rows}"
        if node.actual_ms is not None:
            actual += f", {node.actual_ms:.2f} ms"
        annotation += "  " + actual + ")"
    return f"{node.label()}  {annotation}"


def _render_tree(node: P.PhysicalNode, prefix: str, is_last: bool,
                 lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(prefix + connector + _node_line(node))
    child_prefix = prefix + ("   " if is_last else "│  ")
    kids = node.children()
    for i, child in enumerate(kids):
        _render_tree(child, child_prefix, i == len(kids) - 1, lines)


def render_plan(plan: P.Plan) -> str:
    """Render the whole plan: a header plus the operator tree."""
    before = E.size(plan.logical)
    after = E.size(plan.normalized)
    header = (f"Plan  (normalized {before} → {after} nodes, "
              f"planning {plan.planning_ms:.1f} ms)")
    lines = [header]
    _render_tree(plan.root, "", True, lines)
    return "\n".join(lines)


def explain(expr: E.Expr, env: Mapping[str, object], *, when: bool = False,
            analyze: bool = False, planner: Optional[Planner] = None
            ) -> PlanExplanation:
    """Plan *expr* (optionally execute it) and package the explanation.

    Parameters
    ----------
    expr:
        The logical algebra expression to explain.
    env:
        Name → relation environment (in-memory or stored).
    when:
        True when the query is a top-level ``WHEN (...)``.
    analyze:
        Execute the plan and record actual rows / times per node.
    planner:
        An optional pre-configured :class:`Planner`.
    """
    chosen = planner or Planner()
    plan = chosen.plan(expr, env, when=when)
    result = None
    if analyze:
        result = execute(plan.root, env, record=True)
    return PlanExplanation(plan, analyze, result)
