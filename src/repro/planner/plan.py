"""The physical plan IR — operator nodes the executor knows how to run.

A physical plan is a tree of :class:`PhysicalNode` objects. Interior
nodes mirror the logical algebra one-for-one (filter, slice, project,
set operations, joins); the leaves are *access paths*, where the
planner's choices live:

* :class:`FullScan` — read every tuple of a base relation (decoding
  every heap record when the relation is stored);
* :class:`KeyLookup` — fetch one object through the key index
  (hash-map lookup for in-memory relations);
* :class:`IntervalScan` — fetch only the tuples whose lifespans meet a
  window, through the storage engine's interval index;
* :class:`Materialized` — an inline literal relation;
* :class:`FusedScan` — a scan with filters, slices, and projections
  pushed into it by the planner's fusion pass, applied per tuple while
  records decode selectively (the pipelined engine's workhorse).

Nodes are mutable on purpose: the planner stamps cost estimates
(``est_rows``, ``est_cost``, ``est_extent``) onto them, and an
``EXPLAIN ANALYZE`` execution stamps observed values (``actual_rows``,
``actual_ms``) next to the estimates.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.algebra.predicates import Predicate
from repro.algebra.select import Quantifier
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation


class PhysicalNode:
    """Base class of physical operators (a small mutable tree)."""

    def __init__(self) -> None:
        #: Estimated output cardinality (tuples).
        self.est_rows: float = 0.0
        #: Estimated cumulative cost, in abstract work units.
        self.est_cost: float = 0.0
        #: Estimated temporal extent of the output.
        self.est_extent: Optional[Lifespan] = None
        #: Observed output cardinality (filled by EXPLAIN ANALYZE).
        self.actual_rows: Optional[int] = None
        #: Observed wall-clock milliseconds (filled by EXPLAIN ANALYZE).
        self.actual_ms: Optional[float] = None

    def children(self) -> Tuple["PhysicalNode", ...]:
        return ()

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<{self.label()}>"


# -- leaf access paths ---------------------------------------------------


class FullScan(PhysicalNode):
    """Read every tuple of the named base relation."""

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def label(self) -> str:
        return f"FullScan[{self.name}]"


class KeyLookup(PhysicalNode):
    """Fetch the single object with the given key through the key index."""

    def __init__(self, name: str, key: Tuple[Any, ...]):
        super().__init__()
        self.name = name
        self.key = key

    def label(self) -> str:
        key = ", ".join(repr(part) for part in self.key)
        return f"KeyLookup[{self.name} key=({key})]"


class IntervalScan(PhysicalNode):
    """Fetch the tuples whose lifespans meet *window* via the interval index."""

    def __init__(self, name: str, window: Lifespan):
        super().__init__()
        self.name = name
        self.window = window

    def label(self) -> str:
        return f"IntervalScan[{self.name} ∩ {self.window!r}]"


class Materialized(PhysicalNode):
    """An inline literal relation (from :class:`repro.algebra.expr.Literal`)."""

    def __init__(self, relation: HistoricalRelation):
        super().__init__()
        self.relation = relation

    def label(self) -> str:
        return f"Materialized[{self.relation.scheme.name}, {len(self.relation)} tuples]"


# -- fused scans ---------------------------------------------------------


class FusedOp:
    """One operator fused into a :class:`FusedScan`, applied per tuple."""

    def describe(self) -> str:
        raise NotImplementedError


def _select_label(flavor: str, predicate: Predicate,
                  quantifier: Optional[Quantifier],
                  lifespan: Optional[Lifespan]) -> str:
    """Shared σ rendering for :class:`Filter` and :class:`FusedFilter` —
    a select must read identically whether or not it was fused."""
    sigma = "σ-IF" if flavor == "if" else "σ-WHEN"
    quant = f" {quantifier.value}" if (
        flavor == "if" and quantifier is not None) else ""
    bound = f" during {lifespan!r}" if lifespan is not None else ""
    return f"{sigma} {predicate!r}{quant}{bound}"


class FusedFilter(FusedOp):
    """A SELECT (either flavor) applied during the scan."""

    def __init__(self, flavor: str, predicate: Predicate,
                 quantifier: Optional[Quantifier] = None,
                 lifespan: Optional[Lifespan] = None):
        self.flavor = flavor
        self.predicate = predicate
        self.quantifier = quantifier
        self.lifespan = lifespan

    def describe(self) -> str:
        return _select_label(self.flavor, self.predicate,
                             self.quantifier, self.lifespan)


class FusedSlice(FusedOp):
    """A static TIME-SLICE applied during the scan."""

    def __init__(self, lifespan: Lifespan):
        self.lifespan = lifespan

    def describe(self) -> str:
        return f"τ {self.lifespan!r}"


class FusedProject(FusedOp):
    """A projection applied during the scan (bounds what gets decoded)."""

    def __init__(self, attributes: Tuple[str, ...]):
        self.attributes = tuple(attributes)

    def describe(self) -> str:
        return f"π {', '.join(self.attributes)}"


class FusedScan(PhysicalNode):
    """A scan leaf with filters / slices / projections pushed into it.

    The planner's fusion pass (:func:`repro.planner.planner.fuse_plan`)
    collapses a chain of :class:`Filter` / :class:`Slice` /
    :class:`ProjectOp` nodes over a base-relation scan into one of
    these. ``ops`` apply *in order* (bottom-up from the original tree),
    one tuple at a time, while the tuple is being read: over a stored
    relation the record header (key + lifespan + attribute offsets)
    answers lifespan tests before any attribute decodes, predicates
    decode only the attributes they reference, and only surviving
    tuples materialize — projected columns only.

    ``window`` selects the underlying access path: None is a full scan,
    a :class:`~repro.core.lifespan.Lifespan` scans through the interval
    index (with per-key dedup across the window's intervals).
    """

    def __init__(self, name: str, window: Optional[Lifespan] = None,
                 ops: Tuple[FusedOp, ...] = ()):
        super().__init__()
        self.name = name
        self.window = window
        self.ops = tuple(ops)

    @property
    def source_kind(self) -> str:
        """The subsumed access path: ``"FullScan"`` or ``"IntervalScan"``."""
        return "FullScan" if self.window is None else "IntervalScan"

    def label(self) -> str:
        source = self.name if self.window is None else f"{self.name} ∩ {self.window!r}"
        inner = " | ".join(op.describe() for op in self.ops)
        return f"FusedScan[{source}{' | ' if inner else ''}{inner}]"


# -- unary operators -----------------------------------------------------


class _Unary(PhysicalNode):
    def __init__(self, child: PhysicalNode):
        super().__init__()
        self.child = child

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)


class Filter(_Unary):
    """SELECT-IF or SELECT-WHEN over the child's output."""

    def __init__(self, child: PhysicalNode, flavor: str, predicate: Predicate,
                 quantifier: Optional[Quantifier] = None,
                 lifespan: Optional[Lifespan] = None):
        super().__init__(child)
        if flavor not in ("if", "when"):
            raise ValueError(f"unknown select flavor {flavor!r}")
        self.flavor = flavor
        self.predicate = predicate
        self.quantifier = quantifier
        self.lifespan = lifespan

    def label(self) -> str:
        return ("Filter["
                + _select_label(self.flavor, self.predicate,
                                self.quantifier, self.lifespan)
                + "]")


class Slice(_Unary):
    """Static TIME-SLICE ``τ_L`` over the child's output."""

    def __init__(self, child: PhysicalNode, lifespan: Lifespan):
        super().__init__(child)
        self.lifespan = lifespan

    def label(self) -> str:
        return f"Slice[τ {self.lifespan!r}]"


class DynamicSlice(_Unary):
    """Dynamic TIME-SLICE ``τ_@A`` through a time-valued attribute."""

    def __init__(self, child: PhysicalNode, attribute: str):
        super().__init__(child)
        self.attribute = attribute

    def label(self) -> str:
        return f"DynamicSlice[τ @{self.attribute}]"


class ProjectOp(_Unary):
    """PROJECT ``π_X`` over the child's output."""

    def __init__(self, child: PhysicalNode, attributes: Tuple[str, ...]):
        super().__init__(child)
        self.attributes = tuple(attributes)

    def label(self) -> str:
        return f"Project[{', '.join(self.attributes)}]"


class RenameOp(_Unary):
    """RENAME ``ρ`` over the child's output."""

    def __init__(self, child: PhysicalNode, mapping: Tuple[Tuple[str, str], ...]):
        super().__init__(child)
        self.mapping = tuple(mapping)

    def label(self) -> str:
        pairs = ", ".join(f"{a}→{b}" for a, b in self.mapping)
        return f"Rename[{pairs}]"


class WhenOp(_Unary):
    """Ω — reduce the child relation to its lifespan ``LS(r)``."""

    def label(self) -> str:
        return "When[Ω]"


# -- binary operators ----------------------------------------------------


class _Binary(PhysicalNode):
    def __init__(self, left: PhysicalNode, right: PhysicalNode):
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.left, self.right)


class SetOp(_Binary):
    """A standard or object-based (MERGED) set operation, or ×."""

    OPS = ("union", "intersect", "minus", "times",
           "union_merged", "intersect_merged", "minus_merged")

    def __init__(self, op: str, left: PhysicalNode, right: PhysicalNode):
        super().__init__(left, right)
        if op not in self.OPS:
            raise ValueError(f"unknown set operation {op!r}")
        self.op = op

    def label(self) -> str:
        return f"SetOp[{self.op}]"


class JoinOp(_Binary):
    """θ-join, natural join, or time-join."""

    def __init__(self, kind: str, left: PhysicalNode, right: PhysicalNode,
                 left_attr: Optional[str] = None, theta: Optional[str] = None,
                 right_attr: Optional[str] = None, via: Optional[str] = None):
        super().__init__(left, right)
        if kind not in ("theta", "natural", "time"):
            raise ValueError(f"unknown join kind {kind!r}")
        self.kind = kind
        self.left_attr = left_attr
        self.theta = theta
        self.right_attr = right_attr
        self.via = via

    def label(self) -> str:
        if self.kind == "theta":
            return f"Join[θ {self.left_attr} {self.theta} {self.right_attr}]"
        if self.kind == "time":
            return f"Join[time via {self.via}]"
        return "Join[natural]"


class Plan:
    """A complete physical plan plus planning metadata."""

    def __init__(self, root: PhysicalNode, logical, normalized,
                 planning_ms: float = 0.0):
        #: The physical operator tree.
        self.root = root
        #: The logical expression as given to the planner.
        self.logical = logical
        #: The expression after rewriter normalization.
        self.normalized = normalized
        #: Wall-clock milliseconds spent planning.
        self.planning_ms = planning_ms

    @property
    def est_rows(self) -> float:
        return self.root.est_rows

    @property
    def est_cost(self) -> float:
        return self.root.est_cost

    def access_paths(self) -> Tuple[PhysicalNode, ...]:
        """The leaf access nodes, left to right."""
        return tuple(n for n in self.root.walk() if not n.children())

    def execute(self, env, record: bool = False):
        """Run the plan against *env* (see :mod:`repro.planner.executor`)."""
        from repro.planner.executor import execute
        return execute(self.root, env, record=record)

    def execute_stream(self, env):
        """Run the plan, keeping the final result a stream.

        Returns a :class:`~repro.planner.executor.TupleStream` for
        relation-sorted plans (the caller is the last pipeline breaker
        — :class:`~repro.database.result.QueryResult` consumes it) or a
        :class:`~repro.core.lifespan.Lifespan` for Ω-topped plans.
        """
        from repro.planner.executor import execute_stream
        return execute_stream(self.root, env)

    def __repr__(self) -> str:
        return (f"Plan({self.root.label()}, est_rows={self.est_rows:.1f}, "
                f"est_cost={self.est_cost:.1f})")
