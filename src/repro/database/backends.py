"""Catalog storage backends — one relation, two physical homes.

The paper's Figure 9 separates the model level from the physical
level; :class:`~repro.database.database.HistoricalDatabase` keeps that
separation by holding each catalog entry behind a small backend object:

* :class:`MemoryBackend` — the relation is an immutable
  :class:`~repro.core.relation.HistoricalRelation`; every batch of
  changes installs a fresh relation value (readers are never
  surprised), and undo is a pointer swap.
* :class:`DiskBackend` — the relation lives in a
  :class:`~repro.storage.engine.StoredRelation` (slotted heap pages,
  key index, interval index); changes are applied tuple-by-tuple
  through the engine, and undo restores the prior records.

Both expose the same three operations the database needs:

``source()``
    The object queries and constraints see — it satisfies the
    :class:`~repro.core.protocols.Relation` protocol, and the planner /
    executor know how to scan, probe, and cost either kind.
``apply(changes)``
    Apply a keyed batch of new tuple values in one pass and return an
    *undo closure* that restores the prior state exactly.
``install(relation)``
    Replace the whole relation value (schema evolution, ``replace()``),
    again returning an undo closure.

Undo closures are what make constraint checking transactional at every
granularity: the database applies, checks, and on violation calls the
closures in reverse order — whether one tuple changed or a whole
transaction's worth.

For durable databases each backend additionally knows how to snapshot
itself (``to_snapshot`` / ``from_snapshot``) — the pager writes these
bytes at every checkpoint — and reports its construction ``options()``
so the manifest can rebuild it on reopen.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.storage.codec import decode_blobs, encode_blobs
from repro.storage.engine import StoredRelation, decode_tuple, encode_tuple

_U32 = struct.Struct("<I")


def _frame_tuples(tuples: Iterable[HistoricalTuple]) -> bytes:
    return encode_blobs(encode_tuple(t) for t in tuples)


def _unframe_tuples(raw: bytes, scheme: RelationScheme) -> Iterator[HistoricalTuple]:
    blobs, _ = decode_blobs(memoryview(raw), 0)
    for blob in blobs:
        yield decode_tuple(blob, scheme)

#: Restores a backend to the state captured when the closure was made.
Undo = Callable[[], None]

#: Keyed batch of new tuple values: key -> replacement tuple.
Changes = Mapping[tuple, HistoricalTuple]


class MemoryBackend:
    """An in-memory catalog entry: an immutable relation value."""

    kind = "memory"

    def __init__(self, scheme: RelationScheme,
                 tuples: Iterable[HistoricalTuple] = ()):
        self._relation = HistoricalRelation(scheme, tuples)

    @property
    def scheme(self) -> RelationScheme:
        return self._relation.scheme

    def source(self) -> HistoricalRelation:
        return self._relation

    def get(self, *key: Any) -> Optional[HistoricalTuple]:
        return self._relation.get(*key)

    def apply(self, changes: Changes) -> Undo:
        previous = self._relation
        self._relation = previous.with_tuples(changes.values())

        def undo() -> None:
            self._relation = previous

        return undo

    def install(self, relation: HistoricalRelation) -> Undo:
        previous = self._relation
        self._relation = relation

        def undo() -> None:
            self._relation = previous

        return undo

    def freeze(self) -> None:
        """Publish hook (no-op): the relation value is immutable already."""

    def options(self) -> dict:
        """Construction options to persist in the manifest (none)."""
        return {}

    def to_snapshot(self) -> bytes:
        """Serialise the relation as a framed tuple stream."""
        return _frame_tuples(self._relation)

    @classmethod
    def from_snapshot(cls, scheme: RelationScheme, raw: bytes) -> "MemoryBackend":
        """Restore from :meth:`to_snapshot` bytes."""
        return cls(scheme, _unframe_tuples(raw, scheme))


class DiskBackend:
    """A disk-backed catalog entry: a storage-engine handle."""

    kind = "disk"

    def __init__(self, scheme: RelationScheme,
                 tuples: Iterable[HistoricalTuple] = (),
                 page_size: int = 4096):
        self._page_size = page_size
        self._stored = StoredRelation(scheme, page_size)
        for t in tuples:
            self._stored.insert(t)

    @property
    def scheme(self) -> RelationScheme:
        return self._stored.scheme

    def source(self) -> StoredRelation:
        return self._stored

    def get(self, *key: Any) -> Optional[HistoricalTuple]:
        return self._stored.get(*key)

    def apply(self, changes: Changes) -> Undo:
        stored = self._stored
        if stored.frozen:
            # The current value is a published read snapshot: apply the
            # batch to a page-level copy-on-write clone and swap it in
            # whole, so concurrent readers keep their frozen state and
            # undo is a pointer restore. One clone per commit batch.
            clone = stored.cow_clone()
            for t in changes.values():
                clone.replace(t)
            self._stored = clone

            def undo() -> None:
                self._stored = stored

            return undo
        prior = [(key, stored.get(*key)) for key in changes]
        for t in changes.values():
            stored.replace(t)

        def undo() -> None:
            for key, previous in reversed(prior):
                if previous is None:
                    stored.delete(*key)
                else:
                    stored.replace(previous)

        return undo

    def install(self, relation: HistoricalRelation) -> Undo:
        previous = self._stored
        replacement = StoredRelation(relation.scheme, self._page_size)
        for t in relation:
            replacement.insert(t)
        self._stored = replacement

        def undo() -> None:
            self._stored = previous

        return undo

    def freeze(self) -> None:
        """Publish hook: mark the stored relation as a shared snapshot."""
        self._stored.freeze()

    def options(self) -> dict:
        """Construction options to persist in the manifest."""
        return {"page_size": self._page_size}

    def to_snapshot(self) -> bytes:
        """Serialise heap pages plus both access methods.

        Layout: ``u32 heap_length | heap bytes | index bytes`` — the
        index part is :meth:`repro.storage.engine.StoredRelation.index_bytes`,
        so reopening restores the key and interval indexes without
        decoding any record.
        """
        heap = self._stored.to_bytes()
        return _U32.pack(len(heap)) + heap + self._stored.index_bytes()

    @classmethod
    def from_snapshot(cls, scheme: RelationScheme, raw: bytes,
                      page_size: int = 4096) -> "DiskBackend":
        """Restore from :meth:`to_snapshot` bytes, indexes included."""
        (heap_length,) = _U32.unpack_from(raw, 0)
        heap = raw[4:4 + heap_length]
        index = raw[4 + heap_length:]
        backend = cls(scheme, (), page_size)
        backend._stored = StoredRelation.from_bytes(heap, scheme, index or None)
        return backend


#: Backend constructors by the ``storage=`` argument of create_relation.
BACKENDS = {
    "memory": MemoryBackend,
    "disk": DiskBackend,
}
