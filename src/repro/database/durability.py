"""Durability — checkpoints, WAL commits, and crash recovery.

:class:`DurabilityManager` is the glue between a
:class:`~repro.database.database.HistoricalDatabase` and the storage
substrate's persistence machinery (:mod:`repro.storage.pager`,
:mod:`repro.storage.wal`). The database owns the in-memory truth; the
manager makes three promises about the directory behind it:

1. **Committed means durable** (modulo the chosen sync policy). Every
   commit — an auto-commit mutation, a DDL change, or a whole
   transaction — appends exactly one framed, checksummed WAL record
   *after* the in-memory apply and the constraint sweep succeeded.
   The WAL append is the commit's durability point.
2. **Checkpoints are consistent cuts.** ``checkpoint()`` writes every
   relation's snapshot at a new generation, atomically flips the
   manifest, and only then truncates the log. A crash at *any* point
   of that protocol recovers to a state that equals some committed
   state — never a torn mix.
3. **Reopen replays to the last commit.** ``open()`` loads the
   manifest's snapshots, then replays the WAL's complete records
   (skipping stale generations, stopping at a torn tail) through the
   normal backend apply/install paths — without re-running integrity
   constraints, which already passed when the record was written.

The recovery invariant is property-tested in
``tests/test_durability.py``: truncate or corrupt the log at *any*
byte offset, reopen, and the recovered catalog equals the state after
the last surviving commit.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Mapping, Optional

from repro.core.domains import ValueDomain
from repro.core.errors import RecoveryError, StorageError
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.storage import pager as pager_mod
from repro.storage import wal as wal_mod
from repro.storage.engine import decode_tuple, encode_tuple
from repro.storage.pager import Pager
from repro.storage.wal import CommitRecord, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.database.database import HistoricalDatabase


# -- op builders (commit-time encoding) --------------------------------------


def apply_op(name: str, changes: Mapping[tuple, HistoricalTuple]) -> bytes:
    """Encode a keyed batch of replacement tuples for *name*."""
    return wal_mod.encode_apply(
        name, (encode_tuple(t) for t in changes.values())
    )


def install_op(name: str, relation: HistoricalRelation) -> bytes:
    """Encode a whole-relation replacement (evolution, ``replace``)."""
    return wal_mod.encode_install(
        name, pager_mod.scheme_to_json(relation.scheme),
        (encode_tuple(t) for t in relation),
    )


def create_op(name: str, kind: str, options: dict,
              scheme: RelationScheme, tuples) -> bytes:
    """Encode a new catalog entry with its initial contents."""
    return wal_mod.encode_create(
        name, kind, options, pager_mod.scheme_to_json(scheme),
        (encode_tuple(t) for t in tuples),
    )


def drop_op(name: str) -> bytes:
    """Encode a catalog entry removal."""
    return wal_mod.encode_drop(name)


class DurabilityManager:
    """Pager + WAL behind one durable :class:`HistoricalDatabase`."""

    def __init__(self, path: str, sync: str = "batch", batch_size: int = 64,
                 domains: Optional[Mapping[str, ValueDomain]] = None):
        self.pager = Pager(path)
        self._lock = self.pager.acquire_lock()  # single writer per directory
        self.wal = WriteAheadLog(self.pager.wal_path, sync, batch_size)
        self.generation = 0
        self._domains = dict(domains or {})
        self._closed = False
        #: Prepared-but-undecided transactions found by :meth:`open`:
        #: txn_id → the PREPARE :class:`CommitRecord` (ops unapplied).
        #: Presumed abort — the owner must resolve each against the
        #: coordinator's decision log (see :mod:`repro.sharding`) and
        #: call :meth:`log_decision` + replay-or-drop accordingly.
        self.recovered_in_doubt: dict[str, CommitRecord] = {}

    @property
    def path(self) -> str:
        """The database directory."""
        return self.pager.path

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the directory."""
        return self._closed

    # -- open / recover ----------------------------------------------------

    def open(self, db: "HistoricalDatabase",
             name: Optional[str]) -> None:
        """Load (or initialize) the directory into *db*.

        For an existing database: restores the catalog from the
        manifest's snapshots, then replays the WAL's surviving commit
        records on top. For a fresh or empty directory: initializes a
        generation-0 manifest so the database is reopenable from the
        very first commit.
        """
        manifest = self.pager.read_manifest()
        if manifest is None:
            db.name = name or os.path.basename(self.path.rstrip(os.sep)) or "db"
            self.generation = 0
            self.wal.recover()  # truncates any torn tail of a dead sibling
            self.wal.generation = 0
            self.write_manifest(db)
            return
        if name is not None and name != manifest["name"]:
            raise RecoveryError(
                f"the database at {self.path} is named {manifest['name']!r}, "
                f"not {name!r}"
            )
        db.name = manifest["name"]
        db.time_domain = pager_mod.time_domain_from_dict(manifest["time_domain"])
        self.generation = manifest["generation"]
        from repro.database.backends import BACKENDS

        for rel_name, meta in manifest["relations"].items():
            scheme = pager_mod.scheme_from_dict(meta["scheme"], self._domains)
            raw = self.pager.read_snapshot(rel_name, self.generation)
            factory = BACKENDS[meta["storage"]]
            db._backends[rel_name] = factory.from_snapshot(
                scheme, raw, **meta.get("options", {})
            )
        # The fencing epoch survives restarts through the manifest; a
        # record committed after the last manifest write may carry a
        # newer one (promotion bumps the epoch, then keeps committing).
        self.wal.epoch = int(manifest.get("epoch", 0))
        records = self.wal.recover()
        self.wal.generation = self.generation
        prepared: dict[str, CommitRecord] = {}
        for record in records:
            if record.generation < self.generation:
                continue  # predates the checkpoint; already in the snapshot
            if record.generation > self.generation:
                raise RecoveryError(
                    f"WAL record generation {record.generation} is ahead of "
                    f"the manifest ({self.generation}); refusing to guess"
                )
            if record.kind == "prepare":
                # Voted yes, decision unknown so far: the ops stay
                # stashed until a decision record (or the coordinator,
                # after replay) resolves them.
                prepared[record.txn_id] = record
            elif record.kind == "decide-commit":
                stash = prepared.pop(record.txn_id, None)
                if stash is not None:
                    self.replay(db, stash)
                    db._version += 1
            elif record.kind == "decide-abort":
                prepared.pop(record.txn_id, None)
            else:
                self.replay(db, record)
                db._version += 1
            if record.epoch > self.wal.epoch:
                self.wal.epoch = record.epoch
        self.recovered_in_doubt = prepared
        # Restore the LSN floor: a checkpoint-emptied log carries no
        # records to speak for the counter, and replication positions
        # must stay monotone across restarts.
        self.wal.ensure_lsn(int(manifest.get("wal_lsn", 0)))

    def replay(self, db: "HistoricalDatabase", record: CommitRecord) -> None:
        """Apply one committed record through the backend write paths.

        Constraints are *not* re-checked: the record was only written
        because they passed at commit time. Recovery replays the
        surviving log through here at open; a **replica**
        (:mod:`repro.replication`) replays its primary's streamed
        records through the same path, so a replicated catalog is
        byte-for-byte the recovered one.
        """
        from repro.database.backends import BACKENDS

        for op in record.decoded():
            tag = op[0]
            if tag == "apply":
                _, name, blobs = op
                backend = db._backends[name]
                changes = {}
                for blob in blobs:
                    t = decode_tuple(blob, backend.scheme)
                    changes[t.key_value()] = t
                backend.apply(changes)
            elif tag == "install":
                _, name, scheme_json, blobs = op
                scheme = pager_mod.scheme_from_json(scheme_json, self._domains)
                tuples = [decode_tuple(blob, scheme) for blob in blobs]
                db._backends[name].install(HistoricalRelation(scheme, tuples))
            elif tag == "create":
                _, name, kind, options, scheme_json, blobs = op
                scheme = pager_mod.scheme_from_json(scheme_json, self._domains)
                tuples = [decode_tuple(blob, scheme) for blob in blobs]
                db._backends[name] = BACKENDS[kind](scheme, tuples, **options)
            elif tag == "drop":
                _, name = op
                del db._backends[name]
            else:  # pragma: no cover - decode_op already rejects these
                raise RecoveryError(f"unknown WAL op {tag!r}")

    # -- commit logging ----------------------------------------------------

    def log_commit(self, ops: list) -> int:
        """Append one commit record; returns its LSN.

        The append is deferred-sync: it writes and flushes the frame
        (cheap, safe under the commit lock — commit order and WAL
        order stay identical) but leaves the fsync to
        :meth:`ensure_durable`, which the committer calls *after*
        releasing the commit lock and *before* acknowledging. The
        record is the durability point only once both halves ran.
        """
        self._ensure_open()
        return self.wal.append(ops, defer_sync=True)

    def ensure_durable(self, lsn: int) -> None:
        """Block until the record at *lsn* is durable per the sync
        policy (leader/follower group fsync — see
        :meth:`~repro.storage.wal.WriteAheadLog.sync_to`). Called off
        the commit lock so one committer's disk wait overlaps every
        other committer's CPU work."""
        self._ensure_open()
        self.wal.sync_to(lsn)

    # -- two-phase commit --------------------------------------------------

    def log_prepare(self, ops: list, txn_id: str) -> int:
        """Append a PREPARE record (deferred-sync); returns its LSN.

        The caller **must** call :meth:`force_durable` (off the commit
        lock) before voting yes — a prepare that is not on stable
        storage when the coordinator decides commit would be forgotten
        by a crash, and presumed abort would then lose an acknowledged
        decision.
        """
        self._ensure_open()
        return self.wal.append(ops, defer_sync=True, kind="prepare",
                               txn_id=txn_id)

    def log_decision(self, txn_id: str, commit: bool) -> int:
        """Append the coordinator's decision for a prepared transaction.

        Synced per the ordinary policy: losing an unsynced decision
        record merely re-opens the in-doubt window, which presumed-
        abort recovery resolves from the coordinator's decision log.
        """
        self._ensure_open()
        kind = "decide-commit" if commit else "decide-abort"
        return self.wal.append([], defer_sync=True, kind=kind, txn_id=txn_id)

    def force_durable(self) -> None:
        """Force-fsync every appended record regardless of sync policy
        — the PREPARE vote's durability point."""
        self._ensure_open()
        self.wal.flush()

    # -- checkpointing -----------------------------------------------------

    @property
    def position(self) -> tuple[int, int]:
        """The durable stream position: ``(generation, last LSN)``.

        This is the coordinate system replication speaks: generations
        advance at checkpoints, LSNs advance by one per commit and are
        monotone across restarts (the manifest persists the counter).
        """
        return self.generation, self.wal.last_lsn

    @property
    def epoch(self) -> int:
        """The replication fencing epoch new commits are stamped with."""
        return self.wal.epoch

    def bump_epoch(self, db: "HistoricalDatabase") -> int:
        """Advance the fencing epoch and persist it — the promote step.

        The new epoch is durable (manifest write) *before* any commit
        is stamped with it, so a crash immediately after promotion
        still reopens fenced against the old timeline. Returns the new
        epoch.
        """
        self._ensure_open()
        self.wal.epoch += 1
        self.write_manifest(db)
        return self.wal.epoch

    def checkpoint(self, db: "HistoricalDatabase",
                   generation: Optional[int] = None) -> int:
        """Write a consistent snapshot and truncate the log.

        Protocol (crash-safe at every boundary):

        1. write every relation's snapshot at generation ``G+1``;
        2. atomically flip the manifest to generation ``G+1``;
        3. truncate the WAL (its records are all inside the snapshot);
        4. delete snapshots of generations ``< G+1``.

        A crash before (2) leaves the old manifest + full WAL: recovery
        ignores the half-written new snapshots. A crash between (2)
        and (3) leaves stale WAL records, which replay skips by their
        generation stamp. Returns the new generation.

        *generation* overrides the default ``G+1``: a replica that sees
        its primary's stream jump generations mid-flight mirrors the
        primary's checkpoint locally under the **primary's** number, so
        both sides keep speaking the same ``(generation, lsn)``
        positions. It must advance the current generation.
        """
        self._ensure_open()
        pending = db.in_doubt_transactions()
        if pending:
            raise StorageError(
                f"cannot checkpoint with prepared two-phase transactions "
                f"pending ({', '.join(sorted(pending))}): truncating the "
                f"log would drop their PREPARE records before a decision "
                f"resolved them")
        if generation is None:
            new_generation = self.generation + 1
        elif generation <= self.generation:
            raise StorageError(
                f"checkpoint generation {generation} does not advance the "
                f"current one ({self.generation})")
        else:
            new_generation = generation
        for name, backend in db._backends.items():
            self.pager.write_snapshot(name, new_generation, backend.to_snapshot())
        self.write_manifest(db, new_generation)
        self.wal.reset(new_generation)
        self.pager.clean_snapshots(new_generation)
        self.generation = new_generation
        return new_generation

    def write_manifest(self, db: "HistoricalDatabase",
                       generation: Optional[int] = None) -> None:
        """Serialize the catalog metadata at *generation* (default: current)."""
        manifest = {
            "format": pager_mod.FORMAT_VERSION,
            "name": db.name,
            "generation": self.generation if generation is None else generation,
            "wal_lsn": self.wal.last_lsn,
            "epoch": self.wal.epoch,
            "time_domain": pager_mod.time_domain_to_dict(db.time_domain),
            "relations": {
                name: {
                    "storage": backend.kind,
                    "options": backend.options(),
                    "scheme": pager_mod.scheme_to_dict(backend.scheme),
                }
                for name, backend in db._backends.items()
            },
        }
        self.pager.write_manifest(manifest)

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Force every acknowledged commit to stable storage."""
        self._ensure_open()
        self.wal.flush()

    def close(self) -> None:
        """Flush and release the log and the directory lock (idempotent)."""
        if not self._closed:
            self.wal.close()
            self.pager.release_lock(self._lock)
            self._lock = None
            self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("the database has been closed")

    def __repr__(self) -> str:
        return (f"DurabilityManager({self.path!r}, "
                f"generation={self.generation}, sync={self.wal.sync!r})")
