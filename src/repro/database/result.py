"""Typed query results — what :meth:`HistoricalDatabase.query` returns.

HRQL statements evaluate to three different sorts: relations (most
queries), lifespans (top-level ``WHEN``), and plan explanations
(``EXPLAIN [ANALYZE]``). Instead of a bare union, :class:`QueryResult`
wraps the answer with a ``kind`` tag and typed accessors::

    result = db.query("SELECT WHEN SALARY >= :min IN EMP", {"min": 30_000})
    result.kind          # "relation"
    result.relation      # the HistoricalRelation answer
    result.rows()        # its historical tuples, as a list
    result.snapshot(42)  # the classical view at chronon 42
    for t in result: ... # iterate the tuples
    result.plan          # the physical plan that produced the answer

Accessing the wrong sort (``.lifespan`` on a relation result) raises
:class:`~repro.core.errors.QueryError` instead of silently returning
the wrong type — the failure the old union return made easy.

A :class:`QueryResult` is also the query pipeline's **final breaker**:
the executor streams tuples from the scans through the plan's
operators (:mod:`repro.planner.executor`), and the stream materializes
into a relation right here, as the result is constructed — no
intermediate relation exists between the scan and the answer the
caller holds.

For migration friendliness the wrapper also *delegates* the common
dunders to the underlying value: ``len(result)``, ``bool(result)``,
iteration, and ``==`` against a plain relation / lifespan all behave as
if the raw answer had been returned.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Union

from repro.core.errors import QueryError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.tuples import HistoricalTuple
from repro.planner.executor import TupleStream
from repro.planner.explain import PlanExplanation
from repro.planner.plan import Plan

#: The raw sorts a query can evaluate to. A ``TupleStream`` (the
#: pipelined executor's output) is accepted too and materializes into a
#: relation as the result is built.
ResultValue = Union[HistoricalRelation, Lifespan, PlanExplanation, TupleStream]


class QueryResult:
    """One HRQL answer: a tagged, typed wrapper around the raw value."""

    __slots__ = ("kind", "_value", "_plan")

    def __init__(self, value: ResultValue, plan: Optional[Plan] = None):
        if isinstance(value, TupleStream):
            # The result is the last pipeline breaker: scans streamed
            # tuple-by-tuple through the operators into this relation.
            value = value.materialize()
        if isinstance(value, PlanExplanation):
            self.kind = "plan"
            plan = plan or value.plan
        elif isinstance(value, Lifespan):
            self.kind = "lifespan"
        elif isinstance(value, HistoricalRelation):
            self.kind = "relation"
        else:
            raise QueryError(f"not a query result value: {value!r}")
        self._value = value
        self._plan = plan

    # -- typed accessors ---------------------------------------------------

    @property
    def value(self) -> ResultValue:
        """The raw underlying answer (migration escape hatch)."""
        return self._value

    @property
    def relation(self) -> HistoricalRelation:
        """The relation answer; raises unless ``kind == "relation"``."""
        if self.kind != "relation":
            raise QueryError(f"result is a {self.kind}, not a relation")
        return self._value  # type: ignore[return-value]

    @property
    def lifespan(self) -> Lifespan:
        """The lifespan answer of a top-level ``WHEN`` query."""
        if self.kind != "lifespan":
            raise QueryError(f"result is a {self.kind}, not a lifespan")
        return self._value  # type: ignore[return-value]

    @property
    def explanation(self) -> PlanExplanation:
        """The ``EXPLAIN [ANALYZE]`` rendering; ``kind == "plan"`` only."""
        if self.kind != "plan":
            raise QueryError(f"result is a {self.kind}, not a plan explanation")
        return self._value  # type: ignore[return-value]

    @property
    def plan(self) -> Plan:
        """The physical plan behind this result (any kind)."""
        if self._plan is None:
            raise QueryError("this result was not produced by the planner")
        return self._plan

    # -- relation conveniences ---------------------------------------------

    def rows(self) -> list[HistoricalTuple]:
        """The answer's historical tuples, as a list."""
        return list(self.relation)

    def snapshot(self, at: int) -> list[dict[str, Any]]:
        """The classical (flat) view of the relation answer at *at*."""
        return self.relation.snapshot(at)

    # -- delegation --------------------------------------------------------

    def __iter__(self) -> Iterator:
        if self.kind == "plan":
            raise QueryError("a plan explanation is not iterable")
        return iter(self._value)  # relation: tuples; lifespan: chronons

    def __len__(self) -> int:
        if self.kind == "plan":
            raise QueryError("a plan explanation has no length")
        return len(self._value)

    def __bool__(self) -> bool:
        if self.kind == "plan":
            return True
        return bool(self._value)

    def __eq__(self, other: object) -> bool:
        """Equality against another result or against the raw value."""
        if isinstance(other, QueryResult):
            return self._value == other._value
        return self._value == other

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        if self.kind == "plan":
            return self.explanation.text
        return str(self._value)

    def __repr__(self) -> str:
        return f"QueryResult({self.kind}, {self._value!r})"
