"""Lifespan-granularity designs (Section 2, Figures 2–5).

The paper walks through the design space for *where* lifespans attach:

* **database level** (Figure 2) — one lifespan for everything; "so
  stringent a constraint [it] has not ... been the subject of any
  serious research";
* **relation level** (Figure 3) — per-relation lifespans; tuples are
  temporally homogeneous (Gadia 1985);
* **tuple level** (Figure 4) — per-tuple lifespans (HRDM's choice for
  data);
* **attribute level** (Figure 5 / HRDM schemes) — per-attribute
  lifespans in the scheme (HRDM's choice for schema);
* **value level** (end of Section 2) — "the most general or flexible
  historical model would associate a lifespan with each value ... at
  the cost of maintaining a distinct lifespan for each value."

"The choice of which level is appropriate is a tradeoff between the
cost of maintaining proliferating lifespans ... and the flexibility
that finer and finer lifespans provide. ... the overhead for the
database or relation approach is quite small, and is proportional to
the size of the schema. The cost of the tuple lifespan approach is
proportional to the size of the database instance."

This module makes that tradeoff *measurable*: given a database shape
(relations × tuples × attributes), :func:`lifespan_overhead` counts the
lifespans each design maintains, and :func:`representable` /
:func:`representation_error` quantify how faithfully each coarser
design can express a fully heterogeneous instance (coarser designs must
over-approximate: every object appears alive whenever its container
is). The ``bench_granularity`` benchmark sweeps instance sizes to
regenerate the paper's qualitative claims as measured curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.core.errors import HRDMError
from repro.core.lifespan import Lifespan


class GranularityLevel(Enum):
    """The five lifespan-attachment designs of Section 2."""

    DATABASE = "database"
    RELATION = "relation"
    TUPLE = "tuple"
    ATTRIBUTE = "attribute"  # per-attribute in each scheme, plus per-tuple
    VALUE = "value"


@dataclass(frozen=True)
class DatabaseShape:
    """The size parameters of an instance, for overhead accounting.

    ``n_relations`` relations, each with ``n_tuples`` tuples over
    ``n_attributes`` attributes.
    """

    n_relations: int
    n_tuples: int
    n_attributes: int

    @property
    def schema_size(self) -> int:
        """Total attribute count across all relation schemas."""
        return self.n_relations * self.n_attributes

    @property
    def instance_size(self) -> int:
        """Total value count across the whole instance."""
        return self.n_relations * self.n_tuples * self.n_attributes


def lifespan_overhead(shape: DatabaseShape, level: GranularityLevel) -> int:
    """Number of distinct lifespans the design maintains.

    Reproduces the Section 2 accounting:

    * DATABASE: 1 — O(1);
    * RELATION: one per relation — O(|schema|);
    * ATTRIBUTE: one per (relation, attribute) plus one per tuple —
      HRDM's combined design, O(|schema| + #tuples);
    * TUPLE: one per tuple — O(|instance| / #attributes);
    * VALUE: one per value — O(|instance|).
    """
    if level is GranularityLevel.DATABASE:
        return 1
    if level is GranularityLevel.RELATION:
        return shape.n_relations
    if level is GranularityLevel.TUPLE:
        return shape.n_relations * shape.n_tuples
    if level is GranularityLevel.ATTRIBUTE:
        return shape.schema_size + shape.n_relations * shape.n_tuples
    if level is GranularityLevel.VALUE:
        return shape.instance_size
    raise HRDMError(f"unknown granularity level {level!r}")


@dataclass(frozen=True)
class ValueCell:
    """One (relation, tuple, attribute) cell with its true value lifespan."""

    relation: int
    tuple_idx: int
    attribute: int
    lifespan: Lifespan


def coarsen(cells: Iterable[ValueCell],
            level: GranularityLevel) -> dict[ValueCell, Lifespan]:
    """What each design *records* for each cell's lifespan.

    Coarser designs store one lifespan per container, necessarily the
    union of the contained true lifespans — every cell then appears
    alive whenever any sibling is. Returns the per-cell recorded
    lifespan under *level*.
    """
    cells = list(cells)
    if level is GranularityLevel.VALUE:
        return {c: c.lifespan for c in cells}

    def group_key(c: ValueCell):
        if level is GranularityLevel.DATABASE:
            return ()
        if level is GranularityLevel.RELATION:
            return (c.relation,)
        if level is GranularityLevel.TUPLE:
            return (c.relation, c.tuple_idx)
        if level is GranularityLevel.ATTRIBUTE:
            # HRDM: the value lifespan is tuple-lifespan ∩ attribute-lifespan.
            return None  # handled specially below
        raise HRDMError(f"unknown granularity level {level!r}")

    if level is GranularityLevel.ATTRIBUTE:
        tuple_ls: dict[tuple, Lifespan] = {}
        attr_ls: dict[tuple, Lifespan] = {}
        for c in cells:
            tk = (c.relation, c.tuple_idx)
            ak = (c.relation, c.attribute)
            tuple_ls[tk] = tuple_ls.get(tk, Lifespan.empty()) | c.lifespan
            attr_ls[ak] = attr_ls.get(ak, Lifespan.empty()) | c.lifespan
        return {
            c: tuple_ls[(c.relation, c.tuple_idx)] & attr_ls[(c.relation, c.attribute)]
            for c in cells
        }

    groups: dict[tuple, Lifespan] = {}
    for c in cells:
        k = group_key(c)
        groups[k] = groups.get(k, Lifespan.empty()) | c.lifespan
    return {c: groups[group_key(c)] for c in cells}


def representation_error(cells: Iterable[ValueCell],
                         level: GranularityLevel) -> int:
    """Total spurious chronons the design asserts across all cells.

    The recorded lifespan always contains the true one; the error is
    ``Σ |recorded − true|`` — 0 for the VALUE design, growing as the
    design coarsens. This is the "flexibility" axis of the Section 2
    tradeoff, as a number.
    """
    recorded = coarsen(cells, level)
    return sum(len(recorded[c] - c.lifespan) for c in recorded)


def representable(cells: Iterable[ValueCell], level: GranularityLevel) -> bool:
    """True if the design represents the instance *exactly* (zero error)."""
    return representation_error(cells, level) == 0


def tradeoff_row(cells: list[ValueCell], shape: DatabaseShape,
                 level: GranularityLevel) -> dict:
    """One row of the Figure 2–5 tradeoff table: overhead vs error."""
    return {
        "level": level.value,
        "lifespans": lifespan_overhead(shape, level),
        "spurious_chronons": representation_error(cells, level),
        "exact": representable(cells, level),
    }
