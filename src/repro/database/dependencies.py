"""Temporal functional-dependency theory — the Section 5 extension.

The paper closes by noting that "the temporal dimension of historical
relations can be used to extend the traditional notion of functional
dependency" and that dependency theory "can be expected to have a
significant impact on design methodologies for historical databases",
leaving the development to future work. This module supplies that
development in the classical style:

* :class:`FD` — a dependency ``X -> Y`` with a temporal *scope*
  (``pointwise``: holds at each chronon; ``global``: agreement on X at
  any times forces identical Y histories — the paper's "intensional"
  reading);
* :func:`closure` — attribute-set closure ``X⁺`` under a set of FDs
  (Armstrong's axioms apply unchanged per scope, since each scope's
  satisfaction relation is closed under reflexivity, augmentation, and
  transitivity);
* :func:`implies` / :func:`equivalent` — membership and cover tests;
* :func:`candidate_keys` — the minimal keys an FD set induces over a
  scheme's attributes;
* :func:`is_bcnf` / :func:`bcnf_violations` — Boyce-Codd normal-form
  checking *per scope*, the paper's "design methodologies" hook;
* :func:`minimal_cover` — a canonical cover (right-reduced,
  left-reduced, no redundant FDs);
* :func:`satisfies` — check an actual historical relation against an
  FD in either scope (bridging theory and instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, Sequence

from repro.core.attribute import attr_names
from repro.core.errors import DependencyError
from repro.core.relation import HistoricalRelation

Attrs = FrozenSet[str]


def _as_names(attributes: Iterable[str] | str) -> tuple[str, ...]:
    """Normalise a bare string into a one-attribute list, then to names."""
    if isinstance(attributes, str):
        attributes = [attributes]
    return attr_names(attributes)


@dataclass(frozen=True)
class FD:
    """A (temporal) functional dependency ``lhs -> rhs``.

    ``scope`` is ``"pointwise"`` (the classical FD read at every single
    chronon) or ``"global"`` (the intensional reading across time).
    Scope does not affect the *inference* rules — both satisfaction
    relations obey Armstrong's axioms — but mixed-scope FD sets must
    not be combined in one closure: pointwise facts do not imply global
    ones.
    """

    lhs: Attrs
    rhs: Attrs
    scope: str = "pointwise"

    def __post_init__(self) -> None:
        if self.scope not in ("pointwise", "global"):
            raise DependencyError(f"unknown FD scope {self.scope!r}")
        if not self.lhs or not self.rhs:
            raise DependencyError("FD sides must be non-empty")

    @classmethod
    def of(cls, lhs: Iterable[str] | str, rhs: Iterable[str] | str,
           scope: str = "pointwise") -> "FD":
        return cls(frozenset(_as_names(lhs)), frozenset(_as_names(rhs)), scope)

    def is_trivial(self) -> bool:
        """Trivial iff ``rhs ⊆ lhs`` (reflexivity)."""
        return self.rhs.issubset(self.lhs)

    def __repr__(self) -> str:
        lhs = ",".join(sorted(self.lhs))
        rhs = ",".join(sorted(self.rhs))
        marker = "" if self.scope == "pointwise" else " [global]"
        return f"FD({lhs} -> {rhs}{marker})"


def _check_uniform_scope(fds: Sequence[FD]) -> str:
    scopes = {fd.scope for fd in fds}
    if len(scopes) > 1:
        raise DependencyError(
            "cannot mix pointwise and global FDs in one inference; "
            "split the set by scope"
        )
    return scopes.pop() if scopes else "pointwise"


def closure(attributes: Iterable[str], fds: Sequence[FD]) -> Attrs:
    """The attribute closure ``X⁺`` under *fds* (uniform scope).

    >>> fds = [FD.of("A", "B"), FD.of("B", "C")]
    >>> sorted(closure(["A"], fds))
    ['A', 'B', 'C']
    """
    _check_uniform_scope(fds)
    result = set(_as_names(attributes))
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs.issubset(result) and not fd.rhs.issubset(result):
                result |= fd.rhs
                changed = True
    return frozenset(result)


def implies(fds: Sequence[FD], candidate: FD) -> bool:
    """True if *fds* logically implies *candidate* (same scope)."""
    scope = _check_uniform_scope(list(fds) + [candidate])
    del scope
    return candidate.rhs.issubset(closure(candidate.lhs, list(fds)))


def equivalent(fds1: Sequence[FD], fds2: Sequence[FD]) -> bool:
    """True if the two FD sets are covers of each other."""
    return all(implies(fds2, fd) for fd in fds1) and all(
        implies(fds1, fd) for fd in fds2
    )


def candidate_keys(attributes: Iterable[str], fds: Sequence[FD]) -> list[Attrs]:
    """All minimal keys of the attribute set under *fds*.

    Exponential in |attributes| (as the problem is); intended for the
    schema sizes of design work, not for machine-generated schemes.
    """
    attrs = frozenset(_as_names(attributes))
    keys: list[Attrs] = []
    for size in range(1, len(attrs) + 1):
        for subset in combinations(sorted(attrs), size):
            candidate = frozenset(subset)
            if any(key.issubset(candidate) for key in keys):
                continue
            if closure(candidate, fds) == attrs:
                keys.append(candidate)
    return keys


def is_superkey(attributes: Iterable[str], all_attributes: Iterable[str],
                fds: Sequence[FD]) -> bool:
    """True if *attributes* functionally determines everything."""
    return closure(attributes, fds) == frozenset(_as_names(all_attributes))


def bcnf_violations(attributes: Iterable[str], fds: Sequence[FD]) -> list[FD]:
    """The non-trivial FDs whose lhs is not a superkey (BCNF offenders)."""
    attrs = list(_as_names(attributes))
    return [
        fd for fd in fds
        if not fd.is_trivial() and not is_superkey(fd.lhs, attrs, list(fds))
    ]


def is_bcnf(attributes: Iterable[str], fds: Sequence[FD]) -> bool:
    """True if the scheme is in Boyce-Codd normal form under *fds*."""
    return not bcnf_violations(attributes, fds)


def minimal_cover(fds: Sequence[FD]) -> list[FD]:
    """A canonical cover: singleton rhs, reduced lhs, no redundant FDs."""
    scope = _check_uniform_scope(fds)
    # 1. Right-reduce: split every rhs into singletons.
    split: list[FD] = []
    for fd in fds:
        for attr in fd.rhs:
            split.append(FD(fd.lhs, frozenset([attr]), scope))
    # 2. Left-reduce each FD.
    reduced: list[FD] = []
    for fd in split:
        lhs = set(fd.lhs)
        for attr in sorted(fd.lhs):
            if len(lhs) > 1:
                trimmed = frozenset(lhs - {attr})
                if fd.rhs.issubset(closure(trimmed, split)):
                    lhs.discard(attr)
        reduced.append(FD(frozenset(lhs), fd.rhs, scope))
    # 3. Drop redundant FDs.
    result = list(dict.fromkeys(reduced))  # dedupe, keep order
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            rest = [other for other in result if other != fd]
            if rest and implies(rest, fd):
                result.remove(fd)
                changed = True
                break
    return result


# ---------------------------------------------------------------------------
# Instance-level satisfaction (bridging the theory to live relations).
# ---------------------------------------------------------------------------

_MISSING = object()


def satisfies(relation: HistoricalRelation, fd: FD) -> bool:
    """Check a historical relation against one FD in its scope."""
    tuples = list(relation)
    for i, t1 in enumerate(tuples):
        for t2 in tuples[i:]:
            if fd.scope == "pointwise":
                if not _pointwise_ok(t1, t2, fd):
                    return False
            else:
                if not _global_ok(t1, t2, fd):
                    return False
    return True


def _pointwise_ok(t1, t2, fd: FD) -> bool:
    if t1 is t2:
        return True
    for s in t1.lifespan & t2.lifespan:
        lhs1 = [t1.value(a).get(s, _MISSING) for a in sorted(fd.lhs)]
        lhs2 = [t2.value(a).get(s, _MISSING) for a in sorted(fd.lhs)]
        if _MISSING in lhs1 or _MISSING in lhs2 or lhs1 != lhs2:
            continue
        for a in fd.rhs:
            v1 = t1.value(a).get(s, _MISSING)
            v2 = t2.value(a).get(s, _MISSING)
            if v1 is not _MISSING and v2 is not _MISSING and v1 != v2:
                return False
    return True


def _global_ok(t1, t2, fd: FD) -> bool:
    if t1 is t2:
        return True
    lhs_sorted = sorted(fd.lhs)
    values1 = set()
    for s in t1.lifespan:
        key = tuple(t1.value(a).get(s, _MISSING) for a in lhs_sorted)
        if _MISSING not in key:
            values1.add(key)
    agree = any(
        tuple(t2.value(a).get(s, _MISSING) for a in lhs_sorted) in values1
        for s in t2.lifespan
    )
    if not agree:
        return True
    for a in fd.rhs:
        f1, f2 = t1.value(a), t2.value(a)
        overlap = f1.domain & f2.domain
        if overlap and f1.restrict(overlap) != f2.restrict(overlap):
            return False
    return True
