"""Lifespan-phrased mutation logic, as pure tuple computations.

Section 1 of the paper phrases updates in terms of object lifespans:
birth (insert), death (terminate), rebirth (reincarnate), and new
values from a chronon onwards (update). The functions here compute the
*resulting tuple* for each operation without touching any catalog —
:class:`~repro.database.database.HistoricalDatabase` applies them and
checks constraints immediately, while
:class:`~repro.database.session.Transaction` applies them against its
buffered overlay and defers the constraint sweep to commit. One
implementation, two consistency disciplines.

Every function raises :class:`~repro.core.errors.RelationError` on an
illegal operation (duplicate birth, overlapping reincarnation, update
past the attribute lifespan, termination that would erase all history).

The ``delta_*`` companions compute each operation's **delta lifespan**
— the temporal region where the resulting tuple differs from its base.
Write-sets (:class:`~repro.database.concurrency.WriteSet`) record these
alongside the written key, so when two concurrent sessions collide on
the same object the :class:`~repro.core.errors.ConflictError` can
report the temporal overlap of the two writes (empty when they touched
disjoint regions of the same history).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.core.errors import EvolutionError, RelationError
from repro.core.lifespan import Lifespan
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction
from repro.core.tuples import HistoricalTuple


def build_insert(scheme: RelationScheme, lifespan: Lifespan,
                 values: Mapping[str, Any],
                 get: Callable[[tuple], Optional[HistoricalTuple]],
                 relation_name: str) -> HistoricalTuple:
    """A new object's tuple — its database *birth*.

    *get* looks up the tuple currently carrying a key (None if the key
    is fresh) — the catalog itself, or a transaction's buffered view; a
    duplicate birth is rejected.
    """
    t = HistoricalTuple.build(scheme, lifespan, values)
    if get(t.key_value()) is not None:
        raise RelationError(
            f"key {t.key_value()!r} already exists in {relation_name!r}; "
            "use reincarnate() or update()"
        )
    return t


def build_terminate(t: HistoricalTuple, at: int) -> HistoricalTuple:
    """The tuple after the object's *death* at chronon *at*.

    The lifespan (and all values) are truncated to times strictly
    before *at*.
    """
    remaining = t.lifespan & Lifespan.until(at - 1)
    if remaining.is_empty:
        raise RelationError(
            f"terminating at {at} would erase the whole history of "
            f"{t.key_value()!r}; drop the tuple explicitly instead"
        )
    truncated = t.restrict(remaining)
    assert truncated is not None
    return truncated


def build_reincarnate(scheme: RelationScheme, t: HistoricalTuple,
                      lifespan: Lifespan,
                      values: Mapping[str, Any]) -> HistoricalTuple:
    """The tuple after the object's *rebirth* over *lifespan*.

    The new lifespan must be disjoint from the existing one and the
    key value must be preserved; the new values extend the object's
    temporal functions.
    """
    if not t.lifespan.isdisjoint(lifespan):
        raise RelationError(
            f"reincarnation lifespan overlaps the existing lifespan of "
            f"{t.key_value()!r}"
        )
    addition = HistoricalTuple.build(scheme, lifespan, values)
    if addition.key_value() != t.key_value():
        raise RelationError("reincarnation must preserve the key value")
    merged_ls = t.lifespan | lifespan
    merged_values = {
        a: t.value(a).merge(addition.value(a))
        for a in scheme.attributes
    }
    return HistoricalTuple(scheme, merged_ls, merged_values)


def build_update(scheme: RelationScheme, t: HistoricalTuple, at: int,
                 changes: Mapping[str, Any]) -> HistoricalTuple:
    """The tuple with new attribute values from chronon *at* onwards.

    For each attribute in *changes*, the stored function keeps its
    history before *at* and takes the new constant value on the
    remainder of the tuple's (and attribute's) lifespan.
    """
    values = {a: t.value(a) for a in scheme.attributes}
    future = Lifespan.since(at)
    for attr, new_value in changes.items():
        vls = t.vls(attr)
        window = vls & future
        if window.is_empty:
            raise RelationError(
                f"attribute {attr!r} of {t.key_value()!r} has no lifespan "
                f"at or after {at}"
            )
        kept = values[attr].restrict(t.lifespan - future)
        values[attr] = kept.merge(TemporalFunction.constant(new_value, window))
    return HistoricalTuple(scheme, t.lifespan, values)


def delta_insert(t: HistoricalTuple) -> Lifespan:
    """The temporal region a birth modifies: the whole new lifespan."""
    return t.lifespan


def delta_terminate(before: HistoricalTuple,
                    after: HistoricalTuple) -> Lifespan:
    """The temporal region a death modifies: the truncated tail."""
    return before.lifespan - after.lifespan


def delta_reincarnate(lifespan: Lifespan) -> Lifespan:
    """The temporal region a rebirth modifies: the added span."""
    return lifespan


def delta_update(updated: HistoricalTuple, at: int) -> Lifespan:
    """The temporal region an update modifies: the lifespan from *at* on."""
    return updated.lifespan & Lifespan.since(at)


def rehome(tuples, new_scheme: RelationScheme, name: str) -> list[HistoricalTuple]:
    """Every tuple re-homed onto an evolved scheme.

    Values outside the new attribute lifespans are clipped; attributes
    new to the scheme start with empty histories.
    """
    if new_scheme.name != name:
        raise EvolutionError(
            f"evolved scheme must keep the relation name {name!r}, "
            f"got {new_scheme.name!r}"
        )
    rehomed = []
    for t in tuples:
        values = {}
        for a in new_scheme.attributes:
            if a in t.scheme:
                values[a] = t.value(a).restrict(t.lifespan & new_scheme.als(a))
            else:
                values[a] = TemporalFunction.empty()
        rehomed.append(HistoricalTuple(new_scheme, t.lifespan, values))
    return rehomed
