"""Prepared queries — parse once, bind and re-plan cheaply per run.

A :class:`PreparedQuery` splits query processing along the boundary of
what depends on the parameter bindings:

* **parse** — done once, at :meth:`HistoricalDatabase.prepare` time;
* **bind + compile + normalize** — per distinct binding; the Section 5
  rewrite fixpoint is the expensive planning phase and its result is
  cached per binding (the rewrite laws are structural, so the same
  binding always normalizes the same way);
* **translate + cost** — per execution when the catalog has changed
  since the plan was cached (statistics move, and a bound key value
  can switch the access path between scan and key lookup); done via
  :meth:`repro.planner.planner.Planner.plan_normalized`, which skips
  the rewrite.

Plans are cached keyed on (binding, catalog version, optimize flag),
so the hot path of a repeated parameterized query — same binding, no
intervening writes — is a dictionary hit plus execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional, Tuple

from repro.algebra.rewriter import rewrite
from repro.core.errors import QueryError
from repro.database.result import QueryResult
from repro.planner.executor import execute
from repro.planner.explain import PlanExplanation
from repro.planner.plan import Plan
from repro.planner.planner import Planner
from repro.query import ast_nodes as ast
from repro.query.compiler import Compiled, WhenQuery, compile_query
from repro.query.parser import parse as parse_hrql

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database.database import HistoricalDatabase


class PreparedQuery:
    """One parsed HRQL query, executable repeatedly with fresh bindings."""

    def __init__(self, db: "HistoricalDatabase", source: str):
        self._db = db
        self.source = source
        self._ast = parse_hrql(source)
        if isinstance(self._ast, ast.ExplainNode):
            raise QueryError(
                "prepare the plain query and call .explain() on it instead "
                "of preparing an EXPLAIN statement"
            )
        #: The ``:name`` parameters the query expects, in first-use order.
        self.param_names: Tuple[str, ...] = ast.parameters(self._ast)
        # binding key -> (compiled, normalized child expr, when-flag)
        self._compiled: dict = {}
        # (binding key, optimize) -> plan, valid at _plan_version only
        self._plans: dict = {}
        self._plan_version = -1

    # -- execution ---------------------------------------------------------

    def query(self, params: Optional[Mapping[str, Any]] = None, *,
              optimize: bool = True) -> QueryResult:
        """Bind, plan (or reuse a cached plan), execute; typed result."""
        plan, _ = self._plan(params, optimize)
        result = plan.execute_stream(self._db._env())
        return QueryResult(result, plan)

    def explain(self, params: Optional[Mapping[str, Any]] = None, *,
                analyze: bool = False,
                optimize: bool = True) -> PlanExplanation:
        """The plan this binding would run (optionally executed)."""
        plan, _ = self._plan(params, optimize)
        result = None
        if analyze:
            result = execute(plan.root, self._db._env(), record=True)
        return PlanExplanation(plan, analyze, result)

    # -- internals ---------------------------------------------------------

    def _binding_key(self, params: Optional[Mapping[str, Any]]):
        try:
            key = tuple(sorted((params or {}).items()))
            hash(key)
            return key
        except TypeError:  # unorderable / unhashable values: don't cache
            return None

    def _plan(self, params: Optional[Mapping[str, Any]],
              optimize: bool) -> tuple[Plan, bool]:
        key = self._binding_key(params)
        version = self._db._version
        if version != self._plan_version:
            self._plans.clear()
            self._plan_version = version
        if key is not None and (key, optimize) in self._plans:
            plan, when = self._plans[(key, optimize)]
            return plan, when
        logical, normalized, when = self._normalized(key, params, optimize)
        planner = Planner(normalize=False)
        plan = planner.plan_normalized(normalized, self._db._env(),
                                       when=when, logical=logical)
        if key is not None:
            self._plans[(key, optimize)] = (plan, when)
        return plan, when

    def _normalized(self, key, params: Optional[Mapping[str, Any]],
                    optimize: bool):
        """The bound query's (logical, normalized) expressions (cached)."""
        if key is not None and (key, optimize) in self._compiled:
            return self._compiled[(key, optimize)]
        compiled: Compiled = compile_query(self._ast, params)
        if isinstance(compiled, WhenQuery):
            logical, when = compiled.child, True
        else:
            logical, when = compiled, False
        normalized = rewrite(logical) if optimize else logical
        if key is not None:
            self._compiled[(key, optimize)] = (logical, normalized, when)
        return logical, normalized, when

    def __repr__(self) -> str:
        names = ", ".join(f":{n}" for n in self.param_names) or "no parameters"
        return f"PreparedQuery({self.source!r}, {names})"
