"""Database layer: catalog, updates, schema evolution, and integrity.

Builds the paper's instance hierarchy (Figure 1) on top of the core
structures: a named catalog of historical relations with
lifespan-phrased updates (birth / death / reincarnation), schema
evolution via attribute lifespans (Figure 6), temporal integrity
constraints (referential integrity, temporal FDs, dynamic constraints),
and the Section 2 granularity-tradeoff model.
"""

from repro.database.database import HistoricalDatabase
from repro.database.dependencies import (
    FD,
    bcnf_violations,
    candidate_keys,
    closure,
    equivalent,
    implies,
    is_bcnf,
    is_superkey,
    minimal_cover,
    satisfies,
)
from repro.database.evolution import (
    add_attribute,
    attribute_history,
    drop_attribute,
    evolve,
    readd_attribute,
    remove_attribute,
)
from repro.database.granularity import (
    DatabaseShape,
    GranularityLevel,
    ValueCell,
    coarsen,
    lifespan_overhead,
    representable,
    representation_error,
    tradeoff_row,
)
from repro.database.integrity import (
    ChangeBounded,
    Constraint,
    LifespanWithin,
    NonDecreasing,
    NonIncreasing,
    TemporalFD,
    TemporalForeignKey,
)

__all__ = [
    "ChangeBounded",
    "FD",
    "bcnf_violations",
    "candidate_keys",
    "closure",
    "equivalent",
    "implies",
    "is_bcnf",
    "is_superkey",
    "minimal_cover",
    "satisfies",
    "Constraint",
    "DatabaseShape",
    "GranularityLevel",
    "HistoricalDatabase",
    "LifespanWithin",
    "NonDecreasing",
    "NonIncreasing",
    "TemporalFD",
    "TemporalForeignKey",
    "ValueCell",
    "add_attribute",
    "attribute_history",
    "coarsen",
    "drop_attribute",
    "evolve",
    "lifespan_overhead",
    "readd_attribute",
    "remove_attribute",
    "representable",
    "representation_error",
    "tradeoff_row",
]
