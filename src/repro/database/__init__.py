"""Database layer: catalog, sessions, evolution, and integrity.

Builds the paper's instance hierarchy (Figure 1) on top of the core
structures: a named catalog of historical relations (in memory or on
the Figure 9 storage engine, chosen per relation) with lifespan-phrased
updates (birth / death / reincarnation), transactional sessions with
deferred constraint checking, typed query results with ``:name``
parameter binding and prepared statements, schema evolution via
attribute lifespans (Figure 6), temporal integrity constraints
(referential integrity, temporal FDs, dynamic constraints), the
Section 2 granularity-tradeoff model, and durability
(``HistoricalDatabase(path=...)``: write-ahead-logged commits,
checkpoints, crash recovery — see :mod:`repro.database.durability`).
"""

from repro.database.backends import DiskBackend, MemoryBackend
from repro.database.database import HistoricalDatabase
from repro.database.durability import DurabilityManager
from repro.database.prepared import PreparedQuery
from repro.database.result import QueryResult
from repro.database.session import Transaction
from repro.database.dependencies import (
    FD,
    bcnf_violations,
    candidate_keys,
    closure,
    equivalent,
    implies,
    is_bcnf,
    is_superkey,
    minimal_cover,
    satisfies,
)
from repro.database.evolution import (
    add_attribute,
    attribute_history,
    drop_attribute,
    evolve,
    readd_attribute,
    remove_attribute,
)
from repro.database.granularity import (
    DatabaseShape,
    GranularityLevel,
    ValueCell,
    coarsen,
    lifespan_overhead,
    representable,
    representation_error,
    tradeoff_row,
)
from repro.database.integrity import (
    ChangeBounded,
    Constraint,
    LifespanWithin,
    NonDecreasing,
    NonIncreasing,
    TemporalFD,
    TemporalForeignKey,
)

__all__ = [
    "ChangeBounded",
    "FD",
    "bcnf_violations",
    "candidate_keys",
    "closure",
    "equivalent",
    "implies",
    "is_bcnf",
    "is_superkey",
    "minimal_cover",
    "satisfies",
    "Constraint",
    "DatabaseShape",
    "DiskBackend",
    "DurabilityManager",
    "GranularityLevel",
    "HistoricalDatabase",
    "LifespanWithin",
    "MemoryBackend",
    "NonDecreasing",
    "NonIncreasing",
    "PreparedQuery",
    "QueryResult",
    "TemporalFD",
    "TemporalForeignKey",
    "Transaction",
    "ValueCell",
    "add_attribute",
    "attribute_history",
    "coarsen",
    "drop_attribute",
    "evolve",
    "lifespan_overhead",
    "readd_attribute",
    "remove_attribute",
    "representable",
    "representation_error",
    "tradeoff_row",
]
