"""Temporal integrity constraints (Sections 1 and 5).

Three families the paper calls for:

* **Temporal referential integrity** (Section 1): "a student can only
  take a course at time t if both the student and the course exist in
  the database at time t" — :class:`TemporalForeignKey` requires, for
  every referencing tuple and chronon, a referenced tuple alive at that
  chronon whose key matches the referencing value there.

* **Temporal functional dependencies** (Section 5): the classical
  ``X -> A`` read pointwise — at every single chronon, tuples agreeing
  on ``X`` agree on ``A`` (:class:`TemporalFD` with
  ``scope="pointwise"``); or the stronger *intension* reading — two
  tuples agreeing on ``X`` at any times agree on ``A`` across all
  times (``scope="global"``), the paper's "hold not only at each single
  point in time, but also ... over all points in time".

* **Dynamic (transition) constraints** (Section 5): "the familiar
  'salary must never decrease' example" — :class:`NonDecreasing` /
  :class:`NonIncreasing` / :class:`ChangeBounded` constrain how a
  value may evolve along a tuple's lifespan.

Every constraint exposes ``check(db)`` raising
:class:`~repro.core.errors.IntegrityError` (or a subclass) on
violation; :class:`HistoricalDatabase` re-checks registered constraints
after each mutation and rolls back on failure.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.attribute import attr_names
from repro.core.errors import DependencyError, IntegrityError, ReferentialIntegrityError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation


class Constraint:
    """Base class: a named, checkable database-level constraint."""

    name: str = "constraint"

    def check(self, db) -> None:
        """Raise :class:`IntegrityError` if the database violates this."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class TemporalForeignKey(Constraint):
    """Referential integrity with respect to the temporal dimension.

    For every tuple ``t`` of *source* and chronon ``s`` where the
    *source_attrs* values are defined, there must exist a tuple of
    *target* alive at ``s`` whose key equals those values.

    >>> fk = TemporalForeignKey("ENROLLMENT", ["STUDENT"], "STUDENT")
    """

    def __init__(self, source: str, source_attrs: Iterable[str], target: str,
                 name: Optional[str] = None):
        self.source = source
        self.source_attrs = attr_names(source_attrs)
        self.target = target
        self.name = name or f"fk_{source}_{target}"

    def check(self, db) -> None:
        source = db.relation(self.source)
        target = db.relation(self.target)
        for t in source:
            self._check_tuple(t, target)

    def _check_tuple(self, t, target: HistoricalRelation) -> None:
        # The chronons where the reference is asserted: everywhere all
        # referencing attributes have values.
        asserted = Lifespan.intersect_all(
            [t.value(a).domain for a in self.source_attrs]
        )
        if asserted.is_empty:
            return
        # Group asserted chronons by the referenced key value.
        for s in asserted:
            ref_key = tuple(t.value(a)(s) for a in self.source_attrs)
            referenced = target.get(*ref_key)
            if referenced is None or s not in referenced.lifespan:
                raise ReferentialIntegrityError(
                    f"{self.name}: tuple {t.key_value()!r} references "
                    f"{ref_key!r} at time {s}, but no such object is alive then"
                )


class TemporalFD(Constraint):
    """A temporal functional dependency ``X -> A``.

    scope="pointwise"
        At every chronon ``s``, any two tuples alive and defined on
        ``X`` with equal ``X`` values have equal ``A`` values at ``s``.
    scope="global"
        Stronger: tuples that *ever* agree on ``X`` (at possibly
        different times) must realise identical functions for ``A``
        wherever both are defined.
    """

    def __init__(self, relation: str, lhs: Iterable[str], rhs: Iterable[str],
                 scope: str = "pointwise", name: Optional[str] = None):
        if scope not in ("pointwise", "global"):
            raise IntegrityError(f"unknown TemporalFD scope {scope!r}")
        self.relation = relation
        self.lhs = attr_names(lhs)
        self.rhs = attr_names(rhs)
        self.scope = scope
        self.name = name or f"fd_{relation}_{'_'.join(self.lhs)}"

    def check(self, db) -> None:
        relation = db.relation(self.relation)
        tuples = list(relation)
        for i, t1 in enumerate(tuples):
            for t2 in tuples[i:]:
                if self.scope == "pointwise":
                    self._check_pointwise(t1, t2)
                else:
                    self._check_global(t1, t2)

    def _check_pointwise(self, t1, t2) -> None:
        shared = t1.lifespan & t2.lifespan
        if t1 is t2:
            return  # a single tuple cannot disagree with itself pointwise
        for s in shared:
            lhs1 = [t1.value(a).get(s, _MISSING) for a in self.lhs]
            lhs2 = [t2.value(a).get(s, _MISSING) for a in self.lhs]
            if _MISSING in lhs1 or _MISSING in lhs2 or lhs1 != lhs2:
                continue
            for a in self.rhs:
                v1 = t1.value(a).get(s, _MISSING)
                v2 = t2.value(a).get(s, _MISSING)
                if v1 is not _MISSING and v2 is not _MISSING and v1 != v2:
                    raise DependencyError(
                        f"{self.name}: tuples {t1.key_value()!r} and "
                        f"{t2.key_value()!r} agree on {self.lhs} but differ on "
                        f"{a!r} at time {s}"
                    )

    def _check_global(self, t1, t2) -> None:
        if t1 is t2:
            return
        if not self._ever_agree(t1, t2):
            return
        for a in self.rhs:
            f1, f2 = t1.value(a), t2.value(a)
            overlap = f1.domain & f2.domain
            if overlap and f1.restrict(overlap) != f2.restrict(overlap):
                raise DependencyError(
                    f"{self.name} (global): tuples {t1.key_value()!r} and "
                    f"{t2.key_value()!r} agree on {self.lhs} but realise "
                    f"different {a!r} histories"
                )

    def _ever_agree(self, t1, t2) -> bool:
        values1 = set()
        for s in t1.lifespan:
            key = tuple(t1.value(a).get(s, _MISSING) for a in self.lhs)
            if _MISSING not in key:
                values1.add(key)
        for s in t2.lifespan:
            key = tuple(t2.value(a).get(s, _MISSING) for a in self.lhs)
            if _MISSING not in key and key in values1:
                return True
        return False


class NonDecreasing(Constraint):
    """The paper's "salary must never decrease" dynamic constraint.

    Along each tuple's lifespan, successive defined values of
    *attribute* must be non-decreasing. Gaps (death/reincarnation) do
    not reset the comparison by default; pass ``reset_on_gap=True`` to
    compare only within contiguous incarnations.
    """

    comparator = staticmethod(lambda prev, cur: cur >= prev)
    direction = "decrease"

    def __init__(self, relation: str, attribute: str,
                 reset_on_gap: bool = False, name: Optional[str] = None):
        self.relation = relation
        self.attribute = attribute
        self.reset_on_gap = reset_on_gap
        self.name = name or f"{type(self).__name__.lower()}_{relation}_{attribute}"

    def check(self, db) -> None:
        relation = db.relation(self.relation)
        for t in relation:
            self._check_tuple(t)

    def _check_tuple(self, t) -> None:
        fn = t.value(self.attribute)
        previous = None
        previous_end = None
        for (lo, hi), value in fn.items():
            if previous is not None:
                in_same_incarnation = (
                    previous_end is not None and lo == previous_end + 1
                )
                if (in_same_incarnation or not self.reset_on_gap) and not self.comparator(
                    previous, value
                ):
                    raise IntegrityError(
                        f"{self.name}: {self.attribute!r} of {t.key_value()!r} "
                        f"may never {self.direction}, but goes {previous!r} -> "
                        f"{value!r} at time {lo}"
                    )
            previous = value
            previous_end = hi


class NonIncreasing(NonDecreasing):
    """Successive values of the attribute must be non-increasing."""

    comparator = staticmethod(lambda prev, cur: cur <= prev)
    direction = "increase"


class ChangeBounded(Constraint):
    """Bound the per-change delta of a numeric attribute.

    Successive values may differ by at most *max_delta* (absolute).
    A demonstration of the paper's "constraints over the way that
    values change over time".
    """

    def __init__(self, relation: str, attribute: str, max_delta: float,
                 name: Optional[str] = None):
        self.relation = relation
        self.attribute = attribute
        self.max_delta = max_delta
        self.name = name or f"bounded_{relation}_{attribute}"

    def check(self, db) -> None:
        relation = db.relation(self.relation)
        for t in relation:
            previous = None
            for _, value in t.value(self.attribute).items():
                if previous is not None and abs(value - previous) > self.max_delta:
                    raise IntegrityError(
                        f"{self.name}: {self.attribute!r} of {t.key_value()!r} "
                        f"jumps {previous!r} -> {value!r} (> {self.max_delta})"
                    )
                previous = value


class LifespanWithin(Constraint):
    """Every tuple lifespan must stay inside a bounding lifespan.

    Useful for pinning relations to the database's time domain or to a
    regulatory retention window.
    """

    def __init__(self, relation: str, bound: Lifespan, name: Optional[str] = None):
        self.relation = relation
        self.bound = bound
        self.name = name or f"within_{relation}"

    def check(self, db) -> None:
        relation = db.relation(self.relation)
        for t in relation:
            if not t.lifespan.issubset(self.bound):
                raise IntegrityError(
                    f"{self.name}: tuple {t.key_value()!r} lives outside the "
                    f"bounding lifespan"
                )


_MISSING = object()
