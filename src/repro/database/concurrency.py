"""Concurrency control — snapshot reads, optimistic multi-writer commits.

The paper describes a *database system*; a system has many callers.
:class:`ConcurrencyManager` is the piece that lets one
:class:`~repro.database.database.HistoricalDatabase` serve concurrent
readers **and concurrent writers** (one worker thread per server
connection, see :mod:`repro.server`) with three guarantees:

**Readers never block and never see half a transaction.** Every
successful commit *publishes* a fresh read environment — a plain dict
of relation name → relation value, built after the commit's changes
(all of them) are applied and logged. Capturing a snapshot is one
attribute read (atomic under the interpreter lock), so queries pay
nothing for isolation: they plan and execute against the published
dict while later commits publish newer ones. The values inside a
published environment are immutable by construction:

* memory relations are immutable
  :class:`~repro.core.relation.HistoricalRelation` values already —
  mutations install a *new* relation object, the published one is
  never touched;
* disk relations are **frozen** at publish time
  (:meth:`~repro.storage.engine.StoredRelation.freeze`); the next
  commit's batch goes through a page-level copy-on-write clone
  (:meth:`~repro.storage.engine.StoredRelation.cow_clone`), so a
  reader mid-scan keeps a consistent heap no matter how many commits
  land meanwhile. Mutating a frozen snapshot directly is a loud
  :class:`~repro.core.errors.StorageError`, not a torn read.

**Writers run concurrently and validate at commit** — multi-version
concurrency control with optimistic (first-committer-wins) conflict
resolution. A transactional session captures a :class:`Snapshot` when
it opens, buffers its changes in a private :class:`WriteSet` *without
holding any lock*, and only serializes for the short commit critical
section: :meth:`validate` the write-set against every commit that
published after the session's snapshot, apply the batches, append the
write-ahead-log record, publish. Two sessions conflict when they wrote
an overlapping ``(relation, key)`` pair — the later committer aborts
with a retryable :class:`~repro.core.errors.ConflictError` — or when
either performed a relation-granular write (schema evolution,
``replace``, DDL), which conflicts with *any* concurrent write to that
relation. The error carries the **temporal overlap** of the two
writers' modified lifespan regions, computed from the per-key deltas
each write-set records, so callers can see *when* in the history the
collision happened (an empty overlap means the writers touched the
same object at disjoint times; the stored unit is the whole tuple
version, so first-committer-wins still applies).

**The WAL append is the sole serialization point.** The commit lock is
held only across validate + apply + log + publish — never across a
transaction body — so concurrent committers queue for microseconds,
and the write-ahead log's group commit (``sync="batch"``) absorbs the
resulting commit stream into one fsync per batch window.

Validation history is bounded: committed write-sets are retained while
any live snapshot might still need them (sessions register through
:meth:`begin` / :meth:`end`), with a hard cap so an abandoned session
cannot pin memory forever. A commit whose snapshot predates the
retained window aborts conservatively with :class:`ConflictError`
rather than guess.

The per-relation snapshot identity is the storage engine's existing
mutation-version counters: an unchanged relation keeps its object (and
its decoded-tuple cache) across any number of publishes; only touched
relations are replaced. ``tests/test_concurrency.py`` stress-tests the
reader invariants, ``tests/test_mvcc.py`` the writer ones
(serial-order equivalence, first-committer-wins, temporal overlap).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.errors import ConflictError
from repro.core.lifespan import Lifespan

#: A published read environment: relation name → immutable relation value.
ReadEnv = Dict[str, Any]

#: Committed write-sets retained for validation, no matter how old the
#: oldest registered snapshot is. An abandoned (never committed, never
#: rolled back) session loses the ability to commit rather than pin the
#: log forever.
MAX_COMMIT_LOG = 4096


class Snapshot:
    """One committed cut: the environment plus its commit identity.

    ``commit_id`` is the number of commits published when the cut was
    captured — the validation horizon: a session built on this snapshot
    must be checked against every write-set published *after* it.
    """

    __slots__ = ("commit_id", "env")

    def __init__(self, commit_id: int, env: ReadEnv):
        self.commit_id = commit_id
        self.env = env

    def relation(self, name: str):
        """The snapshot value of *name*, or None if absent from the cut."""
        return self.env.get(name)

    def __repr__(self) -> str:
        return f"Snapshot(commit {self.commit_id}, {len(self.env)} relations)"


class WriteSet:
    """A transaction's write intent, at key and relation granularity.

    ``record`` notes a keyed write together with its **delta lifespan**
    — the temporal region where the new tuple version differs from the
    snapshot base (computed by the ``delta_*`` helpers in
    :mod:`repro.database.mutations`). ``record_relation`` notes a
    relation-granular write (schema evolution, whole-relation replace,
    create, drop) that conflicts with any concurrent write to the same
    relation.
    """

    __slots__ = ("keys", "relations")

    def __init__(self) -> None:
        #: relation → key → delta lifespan (union over repeated writes).
        self.keys: Dict[str, Dict[tuple, Lifespan]] = {}
        #: relations written wholesale (install / create / drop).
        self.relations: set[str] = set()

    def record(self, relation: str, key: tuple, delta: Lifespan) -> None:
        """Note a keyed write with the lifespan region it modifies."""
        deltas = self.keys.setdefault(relation, {})
        previous = deltas.get(key)
        deltas[key] = delta if previous is None else (previous | delta)

    def record_relation(self, relation: str) -> None:
        """Note a relation-granular write (conflicts with everything)."""
        self.relations.add(relation)

    @property
    def empty(self) -> bool:
        return not self.keys and not self.relations

    def touched(self) -> set[str]:
        """Every relation this write-set modifies."""
        return self.relations | set(self.keys)

    def conflict_with(self, earlier: "WriteSet"
                      ) -> Optional[Tuple[str, Optional[tuple],
                                          Optional[Lifespan]]]:
        """The first conflict against an *earlier committed* write-set.

        Returns ``(relation, key, overlap)`` — ``key`` None for a
        relation-granular collision, ``overlap`` the temporal
        intersection of the two delta regions for a keyed one — or
        None when the write-sets are disjoint.
        """
        for relation in self.touched():
            if relation in earlier.relations:
                return relation, None, None
        for relation in self.relations:
            if relation in earlier.keys:
                return relation, None, None
        for relation, deltas in self.keys.items():
            earlier_deltas = earlier.keys.get(relation)
            if not earlier_deltas:
                continue
            for key, delta in deltas.items():
                other = earlier_deltas.get(key)
                if other is not None:
                    return relation, key, delta & other
        return None

    def __repr__(self) -> str:
        keyed = sum(len(d) for d in self.keys.values())
        return (f"WriteSet({keyed} keyed writes, "
                f"{len(self.relations)} relation-granular)")


class ConcurrencyManager:
    """Snapshot publication and optimistic commit validation for one
    database."""

    def __init__(self) -> None:
        self._commit_lock = threading.RLock()
        #: The committed state as one atomic pair: (commit id, read
        #: environment). Replaced (never mutated) by :meth:`publish` /
        #: :meth:`committed`; reading it is one reference load.
        self._state: Tuple[int, ReadEnv] = (0, {})
        #: Committed write-sets newer than the oldest live snapshot:
        #: list of (commit_id, WriteSet), ascending.
        self._log: list[Tuple[int, WriteSet]] = []
        #: Snapshots older than this cannot be validated any more
        #: (their history has been pruned).
        self._floor = 0
        #: Registered live snapshots: commit_id → session count.
        self._active: Dict[int, int] = {}
        self._active_lock = threading.Lock()
        #: Prepared (voted-yes, undecided) two-phase write-sets, pinned
        #: until their coordinator's decision arrives: txn_id → WriteSet.
        #: Guarded by the commit lock.
        self._prepared: Dict[str, WriteSet] = {}

    # -- snapshot side -------------------------------------------------------

    @property
    def published_commits(self) -> int:
        """Commits published so far (also the latest snapshot identity)."""
        return self._state[0]

    def read_env(self) -> ReadEnv:
        """The latest committed read environment (lock-free).

        The returned dict must be treated as immutable; it is shared
        between every reader that captured the same snapshot.
        """
        return self._state[1]

    def snapshot(self) -> Snapshot:
        """Capture the latest committed cut with its identity (lock-free)."""
        commit_id, env = self._state
        return Snapshot(commit_id, env)

    def begin(self, snapshot: Snapshot) -> None:
        """Register *snapshot* as live: its validation history is pinned
        (up to the hard cap) until :meth:`end`."""
        with self._active_lock:
            self._active[snapshot.commit_id] = (
                self._active.get(snapshot.commit_id, 0) + 1)

    def end(self, snapshot: Snapshot) -> None:
        """Deregister a snapshot registered with :meth:`begin`."""
        with self._active_lock:
            count = self._active.get(snapshot.commit_id, 0) - 1
            if count > 0:
                self._active[snapshot.commit_id] = count
            else:
                self._active.pop(snapshot.commit_id, None)

    # -- writer side ---------------------------------------------------------

    def write(self) -> threading.RLock:
        """The commit lock; ``with db._concurrency.write(): ...``.

        Held only for the commit critical section — validate, apply,
        WAL append, publish — never across a transaction body.
        Reentrant, so nested entry points (``evolve_scheme`` installing
        through ``replace``'s path, a commit calling the durability
        layer) need no special casing.
        """
        return self._commit_lock

    def validate(self, write_set: WriteSet, snapshot_id: int) -> None:
        """First-committer-wins: abort if any commit newer than
        *snapshot_id* overlaps *write_set*.

        Must be called under :meth:`write`. Raises
        :class:`~repro.core.errors.ConflictError` on the first
        overlapping ``(relation, key)`` pair (with the temporal overlap
        of the two delta regions), on any relation-granular collision,
        or — conservatively — when *snapshot_id* predates the retained
        validation history.
        """
        if write_set.empty:
            return
        if snapshot_id < self._floor:
            raise ConflictError(
                f"snapshot (commit {snapshot_id}) predates the retained "
                f"validation history (floor {self._floor}); the transaction "
                f"outlived {MAX_COMMIT_LOG}+ concurrent commits — retry "
                f"against a fresh snapshot"
            )
        for commit_id, committed in self._log:
            if commit_id <= snapshot_id:
                continue
            hit = write_set.conflict_with(committed)
            if hit is None:
                continue
            relation, key, overlap = hit
            if key is None:
                raise ConflictError(
                    f"write-write conflict on relation {relation!r}: a "
                    f"relation-granular write (DDL, evolution, or replace) "
                    f"committed first (commit {commit_id}); retry against a "
                    f"fresh snapshot",
                    relation=relation,
                )
            where = (f"overlapping during {overlap}" if not overlap.is_empty
                     else "at temporally disjoint regions of the same object")
            raise ConflictError(
                f"write-write conflict on key {key!r} of {relation!r} "
                f"({where}): commit {commit_id} wrote it first; retry "
                f"against a fresh snapshot",
                relation=relation, key=key, overlap=overlap,
            )
        for txn_id, prepared in self._prepared.items():
            hit = write_set.conflict_with(prepared)
            if hit is None:
                continue
            relation, key, _ = hit
            raise ConflictError(
                f"write-write conflict with in-doubt two-phase transaction "
                f"{txn_id!r} on {relation!r}"
                + (f" key {key!r}" if key is not None else "")
                + ": its prepare holds the write until the coordinator's "
                "decision lands; retry",
                relation=relation, key=key,
            )

    # -- two-phase commit ----------------------------------------------------

    def pin_prepared(self, txn_id: str, write_set: WriteSet) -> None:
        """Pin a voted-yes write-set until its decision resolves it.

        Must be called under :meth:`write`, after :meth:`validate`
        accepted the write-set. Until :meth:`unpin_prepared`, every
        other committer (and every other prepare) conflicts with it —
        the in-doubt transaction's locks, in MVCC terms.
        """
        self._prepared[txn_id] = write_set

    def unpin_prepared(self, txn_id: str) -> Optional[WriteSet]:
        """Release a pinned prepare (decision arrived); returns its
        write-set, or None if *txn_id* was not pinned."""
        return self._prepared.pop(txn_id, None)

    def prepared_ids(self) -> list[str]:
        """The transaction ids currently pinned by a prepare."""
        return list(self._prepared)

    def committed(self, backends: Mapping[str, Any],
                  write_set: WriteSet) -> ReadEnv:
        """Publish a successful commit and retain its write-set.

        Must be called under :meth:`write`, after the WAL append. The
        new read environment reuses every untouched relation's object
        and freezes/replaces only the relations *write_set* names, so
        publish cost is proportional to the commit, not the catalog.
        """
        commit_id, env = self._state
        new_env = dict(env)
        for name in write_set.touched():
            backend = backends.get(name)
            if backend is None:  # dropped from the catalog
                new_env.pop(name, None)
            else:
                backend.freeze()
                new_env[name] = backend.source()
        new_id = commit_id + 1
        self._log.append((new_id, write_set))
        self._prune(new_id)
        self._state = (new_id, new_env)
        return new_env

    def publish(self, backends: Mapping[str, Any]) -> ReadEnv:
        """Publish the whole catalog as the read environment (open time).

        Freezes every disk relation about to be shared and swaps the
        environment in one reference assignment — used when the catalog
        is (re)built wholesale rather than changed by one commit.
        """
        env: ReadEnv = {}
        for name, backend in backends.items():
            backend.freeze()
            env[name] = backend.source()
        commit_id, _ = self._state
        self._state = (commit_id + 1, env)
        return env

    def _prune(self, new_id: int) -> None:
        """Drop validation history no live snapshot can still need."""
        with self._active_lock:
            horizon = min(self._active, default=new_id)
        keep_from = 0
        n = len(self._log)
        if n > MAX_COMMIT_LOG:  # hard cap beats even a pinned snapshot
            keep_from = n - MAX_COMMIT_LOG
        while keep_from < n and self._log[keep_from][0] <= horizon:
            keep_from += 1
        if keep_from:
            self._floor = max(self._floor, self._log[keep_from - 1][0])
            del self._log[:keep_from]

    def __repr__(self) -> str:
        commit_id, env = self._state
        return (f"ConcurrencyManager({len(env)} relations published, "
                f"{commit_id} commits, {len(self._log)} retained write-sets)")
