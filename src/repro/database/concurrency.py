"""Concurrency control — snapshot-isolated reads, single-writer commits.

The paper describes a *database system*; a system has many callers.
:class:`ConcurrencyManager` is the small piece that lets one
:class:`~repro.database.database.HistoricalDatabase` serve concurrent
readers and writers (one worker thread per server connection, see
:mod:`repro.server`) with two guarantees:

**Readers never block and never see half a transaction.** Every
successful commit *publishes* a fresh read environment — a plain dict
of relation name → relation value, built after the commit's changes
(all of them) are applied and logged. Capturing a snapshot is one
attribute read (atomic under the interpreter lock), so queries pay
nothing for isolation: they plan and execute against the published
dict while later commits publish newer ones. The values inside a
published environment are immutable by construction:

* memory relations are immutable
  :class:`~repro.core.relation.HistoricalRelation` values already —
  mutations install a *new* relation object, the published one is
  never touched;
* disk relations are **frozen** at publish time
  (:meth:`~repro.storage.engine.StoredRelation.freeze`); the writer's
  next batch goes through a page-level copy-on-write clone
  (:meth:`~repro.storage.engine.StoredRelation.cow_clone`), so a
  reader mid-scan keeps a consistent heap no matter how many commits
  land meanwhile. Mutating a frozen snapshot directly is a loud
  :class:`~repro.core.errors.StorageError`, not a torn read.

A snapshot is exactly the state after some acknowledged commit — the
publish happens after the write-ahead-log append, so a state that
could still roll back (constraint violation, log failure) is never
observable.

**Writes serialize on one reentrant lock.** Every mutation entry point
— auto-commit mutations, DDL, transaction commit, checkpoint — runs
under :meth:`write`, making the commit path single-writer: conflict
handling stays trivial (there is never a concurrent writer to conflict
with) and the WAL's group commit (``sync="batch"``) absorbs the
resulting commit stream into one fsync per batch window. Readers never
take this lock.

The per-relation snapshot identity is the storage engine's existing
mutation-version counters: an unchanged relation keeps its object (and
its decoded-tuple cache) across any number of publishes; only touched
relations are replaced. ``tests/test_concurrency.py`` stress-tests the
invariants with reader packs racing a committing writer.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping

#: A published read environment: relation name → immutable relation value.
ReadEnv = Dict[str, Any]


class ConcurrencyManager:
    """Snapshot publication and writer serialization for one database."""

    def __init__(self) -> None:
        self._write_lock = threading.RLock()
        #: The last committed read environment. Replaced (never
        #: mutated) by :meth:`publish`; reading it is atomic.
        self._published: ReadEnv = {}
        #: Commits published (diagnostic; also the snapshot identity a
        #: reader can report).
        self.published_commits = 0

    # -- writer side --------------------------------------------------------

    def write(self) -> threading.RLock:
        """The single-writer lock; ``with db._concurrency.write(): ...``.

        Reentrant, so nested entry points (``evolve_scheme`` installing
        through ``replace``'s path, a transaction commit calling the
        durability layer) need no special casing.
        """
        return self._write_lock

    def publish(self, backends: Mapping[str, Any]) -> ReadEnv:
        """Publish the current catalog as the new read environment.

        Called by the writer after every successful commit (and once at
        open time). Freezes every disk relation about to be shared and
        swaps the environment in one reference assignment — concurrent
        readers see either the old committed state or the new one,
        never a mix, even for commits spanning several relations.
        """
        env: ReadEnv = {}
        for name, backend in backends.items():
            backend.freeze()
            env[name] = backend.source()
        self._published = env
        self.published_commits += 1
        return env

    # -- reader side --------------------------------------------------------

    def read_env(self) -> ReadEnv:
        """The latest committed read environment (lock-free).

        The returned dict must be treated as immutable; it is shared
        between every reader that captured the same snapshot.
        """
        return self._published

    def __repr__(self) -> str:
        return (f"ConcurrencyManager({len(self._published)} relations "
                f"published, {self.published_commits} publishes)")
