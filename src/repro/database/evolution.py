"""Schema evolution through attribute lifespans (Section 2, Figure 6).

The paper's motivating example: a stock-market database records a
Daily-Trading-Volume attribute over ``[t1, t2]``, drops it ("it became
too expensive to collect"), then re-adds it from ``t3`` through the
present — the attribute's lifespan is the *union* of the periods the
schema carried it. "Assigning a lifespan to each attribute in a
relation scheme allows the user to explicitly indicate the period of
time over which this attribute is defined in that relation, thereby
allowing for the possibility of evolving schemes."

The operations here are *lifespan edits* on a relation's scheme:

* :func:`add_attribute` — a brand-new attribute, alive from a chronon;
* :func:`drop_attribute` — ends the attribute's lifespan at a chronon
  (history *before* the drop is retained — nothing is deleted);
* :func:`readd_attribute` — re-opens a previously dropped attribute,
  growing its lifespan by a new interval (Figure 6's second period);
* :func:`remove_attribute` — physically removes the attribute and its
  entire history (the destructive variant, for completeness).

All return the evolved scheme; :meth:`HistoricalDatabase.evolve_scheme`
installs it and re-homes the stored tuples, clipping values to the new
attribute lifespans.
"""

from __future__ import annotations

from typing import Optional

from repro.core.attribute import AttributeLike, attr_name
from repro.core.domains import HistoricalDomain, ValueDomain, resolve
from repro.core.errors import EvolutionError
from repro.core.lifespan import Lifespan
from repro.core.scheme import RelationScheme
from repro.core.time_domain import T_MAX
from repro.database.database import HistoricalDatabase


def add_attribute(
    scheme: RelationScheme,
    attribute: AttributeLike,
    domain: HistoricalDomain | ValueDomain,
    since: int,
    until: int = T_MAX,
) -> RelationScheme:
    """A scheme extended with a new attribute alive on ``[since, until]``.

    >>> evolved = add_attribute(stock, "VOLUME", domains.td(domains.INTEGER),
    ...                         since=t1)                    # doctest: +SKIP
    """
    name = attr_name(attribute)
    if name in scheme:
        raise EvolutionError(
            f"attribute {name!r} already exists in scheme {scheme.name!r}; "
            "use readd_attribute() to re-open it"
        )
    doms = scheme.domains()
    doms[name] = resolve(domain)
    lifespans = scheme.attribute_lifespans()
    lifespans[name] = Lifespan.interval(since, until)
    scheme_ls = Lifespan.union_all(lifespans.values())
    for k in scheme.key:
        lifespans[k] = scheme_ls
    return RelationScheme(scheme.name, doms, scheme.key, lifespans)


def drop_attribute(
    scheme: RelationScheme,
    attribute: AttributeLike,
    at: int,
) -> RelationScheme:
    """End an attribute's lifespan at chronon *at* (exclusive).

    The attribute remains in the scheme with its historical lifespan
    truncated to times strictly before *at*: queries about the past
    still see it, new times carry no value — exactly the Figure 6 drop
    at ``t2``.
    """
    name = attr_name(attribute)
    if name in scheme.key:
        raise EvolutionError(f"cannot drop key attribute {name!r}")
    current = scheme.als(name)
    truncated = current & Lifespan.until(at - 1)
    if truncated == current:
        raise EvolutionError(
            f"attribute {name!r} has no lifespan at or after {at}; nothing to drop"
        )
    return scheme.with_lifespans({name: truncated})


def readd_attribute(
    scheme: RelationScheme,
    attribute: AttributeLike,
    since: int,
    until: int = T_MAX,
) -> RelationScheme:
    """Re-open a dropped attribute from *since* — Figure 6's ``t3``.

    The attribute's lifespan becomes the union of its old lifespan and
    ``[since, until]``; its domain is unchanged.
    """
    name = attr_name(attribute)
    if name not in scheme:
        raise EvolutionError(
            f"attribute {name!r} was never in scheme {scheme.name!r}; "
            "use add_attribute()"
        )
    addition = Lifespan.interval(since, until)
    current = scheme.als(name)
    if not current.isdisjoint(addition):
        raise EvolutionError(
            f"re-added lifespan overlaps the existing lifespan of {name!r}"
        )
    return scheme.with_lifespans({name: current | addition})


def remove_attribute(scheme: RelationScheme,
                     attribute: AttributeLike) -> RelationScheme:
    """Physically remove an attribute and all its history (destructive)."""
    name = attr_name(attribute)
    if name in scheme.key:
        raise EvolutionError(f"cannot remove key attribute {name!r}")
    remaining = [a for a in scheme.attributes if a != name]
    if not remaining:
        raise EvolutionError("cannot remove the last attribute of a scheme")
    return scheme.project(remaining, name=scheme.name)


def attribute_history(scheme: RelationScheme,
                      attribute: AttributeLike) -> Lifespan:
    """The periods during which the schema carried *attribute* (``ALS``)."""
    return scheme.als(attribute)


def evolve(
    db: HistoricalDatabase,
    relation_name: str,
    *,
    add: Optional[dict] = None,
    drop_at: Optional[dict] = None,
    readd: Optional[dict] = None,
) -> RelationScheme:
    """Apply a batch of evolution steps to a stored relation.

    Parameters
    ----------
    add:
        ``{attr: (domain, since)}`` or ``{attr: (domain, since, until)}``.
    drop_at:
        ``{attr: at}`` — truncate the attribute lifespan before ``at``.
    readd:
        ``{attr: since}`` or ``{attr: (since, until)}``.

    Returns the evolved scheme after installing it in *db*.
    """
    scheme = db.scheme(relation_name)
    for attr, spec in (add or {}).items():
        domain, since, *rest = spec
        until = rest[0] if rest else T_MAX
        scheme = add_attribute(scheme, attr, domain, since, until)
    for attr, at in (drop_at or {}).items():
        scheme = drop_attribute(scheme, attr, at)
    for attr, spec in (readd or {}).items():
        if isinstance(spec, tuple):
            since, until = spec
        else:
            since, until = spec, T_MAX
        scheme = readd_attribute(scheme, attr, since, until)
    db.evolve_scheme(relation_name, scheme)
    return scheme
