"""Transactional sessions — snapshot reads, private write-sets,
optimistic commit.

:class:`Transaction` gives :class:`HistoricalDatabase` its bulk *and*
its concurrent-writer path. A session captures a
:class:`~repro.database.concurrency.Snapshot` when it opens and runs
its whole body against that committed cut **without holding any
lock** — many sessions build their changes at once:

* **reads** go through the snapshot plus the session's private overlay
  (a transaction sees its own buffered writes, and nothing committed
  after it began — repeatable reads by construction);
* **buffered mutations** (inserts / updates / terminates /
  reincarnates / schema evolutions) land in a per-relation overlay and
  are recorded in a :class:`~repro.database.concurrency.WriteSet`
  together with the *delta lifespan* each write modifies;
* at commit the per-relation batches and the write-ahead-log record
  are prepared **outside** the commit lock; the short critical section
  is validate → apply → log → publish. Validation is
  first-committer-wins: if any commit newer than the session's
  snapshot wrote an overlapping ``(relation, key)`` — or touched a
  relation this session evolved / that was evolved under it — the
  commit aborts with a retryable
  :class:`~repro.core.errors.ConflictError` and the catalog is left
  exactly as if the session never existed
  (``HistoricalDatabase.run_transaction`` wraps the retry loop);
* the constraint sweep runs **once**, over the fully applied state,
  and any failure — constraint violation, conflict, log append error —
  calls the backends' undo closures in reverse order.

Usage::

    with db.transaction() as txn:
        for row in feed:
            txn.insert("EMP", row.lifespan, row.values)
    # committed here; or roll back by raising / calling txn.rollback()

A transaction is single-shot: once committed or rolled back it refuses
further operations. Queries through ``db.query`` keep seeing the
committed state until commit (the buffered view is private to the
transaction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.core.errors import RelationError, TransactionError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.database import durability, mutations
from repro.database.concurrency import Snapshot, WriteSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.database.database import HistoricalDatabase


class _PendingRelation:
    """One relation's buffered view inside a transaction.

    ``base`` is the relation's value in the session's snapshot — reads
    never touch the live catalog. ``overlay`` maps keys to their
    pending tuple values; ``replaced`` holds a full replacement
    relation once a schema evolution has been buffered (evolution
    re-homes *every* tuple, so from that point the pending state is a
    whole new relation value plus later overlay entries on the evolved
    scheme).
    """

    def __init__(self, name: str, base) -> None:
        self.name = name
        self.base = base
        self.scheme: RelationScheme = base.scheme
        self.overlay: Dict[tuple, HistoricalTuple] = {}
        self.replaced: Optional[HistoricalRelation] = None

    def get(self, key: tuple) -> Optional[HistoricalTuple]:
        if key in self.overlay:
            return self.overlay[key]
        if self.replaced is not None:
            return self.replaced.get(*key)
        return self.base.get(*key)

    def put(self, t: HistoricalTuple) -> None:
        self.overlay[t.key_value()] = t

    def current_tuples(self) -> list[HistoricalTuple]:
        """Every tuple as the transaction currently sees the relation."""
        merged: Dict[tuple, HistoricalTuple] = {}
        source = self.replaced if self.replaced is not None else self.base
        for t in source:
            merged[t.key_value()] = t
        merged.update(self.overlay)
        return list(merged.values())

    def evolve(self, new_scheme: RelationScheme) -> None:
        rehomed = mutations.rehome(self.current_tuples(), new_scheme,
                                   self.name)
        self.replaced = HistoricalRelation(new_scheme, rehomed)
        self.scheme = new_scheme
        self.overlay.clear()


class Transaction:
    """A snapshot-isolated, optimistically-committed mutation session."""

    def __init__(self, db: "HistoricalDatabase") -> None:
        self._db = db
        self._snapshot: Snapshot = db._concurrency.snapshot()
        self._write_set = WriteSet()
        self._pending: Dict[str, _PendingRelation] = {}
        self._state = "active"
        db._concurrency.begin(self._snapshot)

    # -- lifecycle ---------------------------------------------------------

    @property
    def state(self) -> str:
        """"active", "committed", "prepared", or "rolled-back"."""
        return self._state

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self._state == "active":
                self.rollback()
            return False  # propagate the exception
        if self._state == "active":
            self.commit()
        return False

    def commit(self) -> None:
        """Validate and apply every buffered change atomically.

        The batches (one
        :meth:`~repro.core.relation.HistoricalRelation.with_tuples`
        pass or one storage-engine batch per touched relation) and the
        write-ahead-log record are built first, with no lock held. The
        commit lock then covers only: first-committer-wins
        **validation** of the write-set against every commit since this
        session's snapshot (a loss raises the retryable
        :class:`~repro.core.errors.ConflictError` and rolls back),
        batch application, one constraint sweep over the fully applied
        state, the WAL append — on a durable database the whole
        transaction is **one** log record — and snapshot publication.
        The record's fsync runs *after* the lock is released
        (:meth:`~repro.database.durability.DurabilityManager.ensure_durable`,
        a leader/follower group sync), and the commit only returns
        once it is durable per the sync policy. Any failure restores
        every relation (in reverse application order) and re-raises
        with the catalog untouched.
        """
        self._ensure_active()
        db = self._db
        db._ensure_mutable("commit a transaction")
        durable = db._durability is not None
        try:
            # Prepared outside the commit lock: concurrent sessions
            # build their final relation values and encode their log
            # records in parallel.
            batches: list[tuple] = []
            ops: list[bytes] = []
            for name, pending in self._pending.items():
                if pending.replaced is not None:
                    final = pending.replaced.with_tuples(
                        pending.overlay.values())
                    batches.append((name, final, None))
                    if durable:
                        ops.append(durability.install_op(name, final))
                elif pending.overlay:
                    batches.append((name, None, pending.overlay))
                    if durable:
                        ops.append(durability.apply_op(name, pending.overlay))
            undos = []
            lsn = None
            with db._concurrency.write():
                try:
                    db._concurrency.validate(self._write_set,
                                             self._snapshot.commit_id)
                    for name, final, overlay in batches:
                        backend = db._backend(name)
                        if final is not None:
                            undos.append(backend.install(final))
                        else:
                            undos.append(backend.apply(overlay))
                    db._check_constraints()
                    if durable and ops:
                        lsn = db._durability.log_commit(ops)
                except BaseException:
                    for undo in reversed(undos):
                        undo()
                    raise
                if undos:
                    # One publish for the whole transaction: concurrent
                    # readers see all of its relations change together.
                    db._committed(self._write_set)
            if lsn is not None:
                # Off the commit lock: the group fsync (leader/follower,
                # see the WAL) runs while other sessions commit.
                db._durability.ensure_durable(lsn)
        except BaseException:
            self._finish("rolled-back")
            raise
        self._finish("committed")

    def prepare(self, txn_id: str) -> None:
        """Phase one of a two-phase commit: vote yes and go in doubt.

        Runs everything :meth:`commit` runs — first-committer-wins
        validation, batch application, the single constraint sweep —
        but instead of a commit record it logs a **PREPARE** record
        (force-synced regardless of sync policy: the yes vote must
        survive a crash) and instead of publishing it **pins** the
        write-set: the applied changes stay invisible to readers and
        conflict with every other committer until
        :meth:`HistoricalDatabase.resolve_prepared` applies the
        coordinator's decision. Failure anywhere (validation loss,
        constraint violation, log error) is a **no vote**: the backends
        are restored and the session rolls back, exactly like a failed
        commit.

        The session itself ends here — the decision belongs to the
        database (a coordinator may deliver it on another connection,
        or after a crash-reopen).
        """
        self._ensure_active()
        db = self._db
        db._ensure_mutable("prepare a transaction")
        if not txn_id:
            raise TransactionError("a prepare needs a transaction id")
        durable = db._durability is not None
        try:
            batches: list[tuple] = []
            ops: list[bytes] = []
            for name, pending in self._pending.items():
                if pending.replaced is not None:
                    final = pending.replaced.with_tuples(
                        pending.overlay.values())
                    batches.append((name, final, None))
                    if durable:
                        ops.append(durability.install_op(name, final))
                elif pending.overlay:
                    batches.append((name, None, pending.overlay))
                    if durable:
                        ops.append(durability.apply_op(name, pending.overlay))
            if not batches:
                raise TransactionError(
                    f"transaction {txn_id!r} has nothing to prepare")
            undos = []
            lsn = None
            with db._concurrency.write():
                if txn_id in db._prepared_txns:
                    raise TransactionError(
                        f"transaction id {txn_id!r} is already prepared")
                try:
                    db._concurrency.validate(self._write_set,
                                             self._snapshot.commit_id)
                    for name, final, overlay in batches:
                        backend = db._backend(name)
                        if final is not None:
                            undos.append(backend.install(final))
                        else:
                            undos.append(backend.apply(overlay))
                    db._check_constraints()
                    if durable and ops:
                        lsn = db._durability.log_prepare(ops, txn_id)
                except BaseException:
                    for undo in reversed(undos):
                        undo()
                    raise
                db._register_prepared(txn_id, self._write_set, undos)
            if lsn is not None:
                # Off the commit lock, but *before* the yes vote
                # returns: a prepare that is not on stable storage
                # could be presumed aborted after a crash even though
                # the coordinator went on to decide commit.
                db._durability.force_durable()
        except BaseException:
            self._finish("rolled-back")
            raise
        self._finish("prepared")

    def rollback(self) -> None:
        """Discard every buffered change; the catalog was never touched."""
        self._ensure_active()
        self._finish("rolled-back")

    def _finish(self, state: str) -> None:
        self._pending.clear()
        self._state = state
        self._db._concurrency.end(self._snapshot)

    def _ensure_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction already {self._state}")

    # -- snapshot reads ----------------------------------------------------

    def get(self, name: str, *key: Any) -> Optional[HistoricalTuple]:
        """The tuple with *key* as this transaction sees it: its own
        buffered writes over the begin-time snapshot."""
        self._ensure_active()
        return self._touch(name).get(tuple(key))

    def scheme(self, name: str) -> RelationScheme:
        """The (possibly already evolved) scheme as the transaction sees it."""
        self._ensure_active()
        return self._touch(name).scheme

    # -- buffered mutations ------------------------------------------------

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer an object's *birth* (see ``HistoricalDatabase.insert``)."""
        pending = self._mutable(name)
        t = mutations.build_insert(pending.scheme, lifespan, values,
                                   pending.get, name)
        pending.put(t)
        self._write_set.record(name, t.key_value(), mutations.delta_insert(t))
        return t

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """Buffer an object's *death* (see ``HistoricalDatabase.terminate``)."""
        pending = self._mutable(name)
        before = self._existing(pending, name, key)
        t = mutations.build_terminate(before, at)
        pending.put(t)
        self._write_set.record(name, t.key_value(),
                               mutations.delta_terminate(before, t))
        return t

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a *rebirth* (see ``HistoricalDatabase.reincarnate``)."""
        pending = self._mutable(name)
        merged = mutations.build_reincarnate(
            pending.scheme, self._existing(pending, name, key), lifespan, values
        )
        pending.put(merged)
        self._write_set.record(name, merged.key_value(),
                               mutations.delta_reincarnate(lifespan))
        return merged

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer new values from *at* on (see ``HistoricalDatabase.update``)."""
        pending = self._mutable(name)
        updated = mutations.build_update(
            pending.scheme, self._existing(pending, name, key), at, changes
        )
        pending.put(updated)
        self._write_set.record(name, updated.key_value(),
                               mutations.delta_update(updated, at))
        return updated

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Buffer a schema evolution, re-homing the buffered view.

        Later buffered mutations in the same transaction operate on the
        evolved scheme. An evolution is a **relation-granular** write:
        it conflicts with *any* concurrent commit touching the
        relation, in either direction (the re-homed value is built from
        this session's snapshot, so a concurrent keyed write would
        otherwise be silently lost).
        """
        self._mutable(name).evolve(new_scheme)
        self._write_set.record_relation(name)

    # -- helpers -----------------------------------------------------------

    def _touch(self, name: str) -> _PendingRelation:
        if name not in self._pending:
            base = self._snapshot.relation(name)
            if base is None:
                raise RelationError(f"no relation named {name!r}")
            self._pending[name] = _PendingRelation(name, base)
        return self._pending[name]

    def _mutable(self, name: str) -> _PendingRelation:
        self._ensure_active()
        return self._touch(name)

    def _existing(self, pending: _PendingRelation, name: str,
                  key: tuple) -> HistoricalTuple:
        t = pending.get(tuple(key))
        if t is None:
            raise RelationError(f"no tuple with key {tuple(key)!r} in {name!r}")
        return t

    def __repr__(self) -> str:
        touched = ", ".join(sorted(self._pending)) or "nothing"
        return (f"Transaction({self._state}, snapshot "
                f"{self._snapshot.commit_id}, buffering {touched})")
