"""Transactional sessions — buffered mutations with deferred checking.

:class:`Transaction` gives :class:`HistoricalDatabase` its bulk path.
The direct mutation methods re-check every registered constraint after
every call and rebuild the touched relation per call — correct, but
quadratic for a bulk load. A transaction instead:

* **buffers** inserts / updates / terminates / reincarnates / schema
  evolutions in a per-relation overlay (reads through the transaction
  see their own writes);
* at commit, applies each relation's batch in **one**
  :meth:`~repro.core.relation.HistoricalRelation.with_tuples` pass (or
  one storage-engine batch for disk-backed relations);
* runs the constraint sweep **once**, over the fully applied state;
* on any failure — constraint violation included — calls the
  backends' undo closures in reverse order, leaving the catalog
  exactly as it was when the transaction began.

Usage::

    with db.transaction() as txn:
        for row in feed:
            txn.insert("EMP", row.lifespan, row.values)
    # committed here; or roll back by raising / calling txn.rollback()

A transaction is single-shot: once committed or rolled back it refuses
further operations. Queries through ``db.query`` keep seeing the
committed state until commit (the buffered view is private to the
transaction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.core.errors import RelationError, TransactionError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.database import durability, mutations

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.database.database import HistoricalDatabase


class _PendingRelation:
    """One relation's buffered view inside a transaction.

    ``overlay`` maps keys to their pending tuple values; ``replaced``
    holds a full replacement relation once a schema evolution has been
    buffered (evolution re-homes *every* tuple, so from that point the
    pending state is a whole new relation value plus later overlay
    entries on the evolved scheme).
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        self.scheme: RelationScheme = backend.scheme
        self.overlay: Dict[tuple, HistoricalTuple] = {}
        self.replaced: Optional[HistoricalRelation] = None

    def get(self, key: tuple) -> Optional[HistoricalTuple]:
        if key in self.overlay:
            return self.overlay[key]
        if self.replaced is not None:
            return self.replaced.get(*key)
        return self.backend.get(*key)

    def put(self, t: HistoricalTuple) -> None:
        self.overlay[t.key_value()] = t

    def current_tuples(self) -> list[HistoricalTuple]:
        """Every tuple as the transaction currently sees the relation."""
        merged: Dict[tuple, HistoricalTuple] = {}
        base = self.replaced if self.replaced is not None else self.backend.source()
        for t in base:
            merged[t.key_value()] = t
        merged.update(self.overlay)
        return list(merged.values())

    def evolve(self, new_scheme: RelationScheme, name: str) -> None:
        rehomed = mutations.rehome(self.current_tuples(), new_scheme, name)
        self.replaced = HistoricalRelation(new_scheme, rehomed)
        self.scheme = new_scheme
        self.overlay.clear()


class Transaction:
    """A buffered, atomically-committed mutation session."""

    def __init__(self, db: "HistoricalDatabase") -> None:
        self._db = db
        self._pending: Dict[str, _PendingRelation] = {}
        self._state = "active"

    # -- lifecycle ---------------------------------------------------------

    @property
    def state(self) -> str:
        """"active", "committed", or "rolled-back"."""
        return self._state

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self._state == "active":
                self.rollback()
            return False  # propagate the exception
        if self._state == "active":
            self.commit()
        return False

    def commit(self) -> None:
        """Apply every buffered change atomically.

        Each touched relation gets one batched write; the registered
        constraints run once over the fully applied state. On a
        durable database the whole transaction then becomes **one**
        write-ahead-log record — the commit boundary the log was built
        around. Any error (constraint violation, log append failure)
        restores every relation (in reverse application order) and
        re-raises — the catalog is untouched.
        """
        self._ensure_active()
        db = self._db
        db._ensure_mutable("commit a transaction")
        durable = db._durability is not None
        undos = []
        ops: list[bytes] = []
        with db._concurrency.write():
            try:
                for name, pending in self._pending.items():
                    backend = db._backend(name)
                    if pending.replaced is not None:
                        final = pending.replaced.with_tuples(
                            pending.overlay.values())
                        undos.append(backend.install(final))
                        if durable:
                            ops.append(durability.install_op(name, final))
                    elif pending.overlay:
                        undos.append(backend.apply(pending.overlay))
                        if durable:
                            ops.append(durability.apply_op(name, pending.overlay))
                db._check_constraints()
                if durable and ops:
                    db._durability.log_commit(ops)
            except BaseException:
                for undo in reversed(undos):
                    undo()
                self._pending.clear()
                self._state = "rolled-back"
                raise
            if undos:
                # One publish for the whole transaction: concurrent
                # readers see all of its relations change together.
                db._committed()
        self._pending.clear()
        self._state = "committed"

    def rollback(self) -> None:
        """Discard every buffered change; the catalog was never touched."""
        self._ensure_active()
        self._pending.clear()
        self._state = "rolled-back"

    def _ensure_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction already {self._state}")

    # -- buffered reads ----------------------------------------------------

    def get(self, name: str, *key: Any) -> Optional[HistoricalTuple]:
        """The tuple with *key* as this transaction sees it (reads its
        own buffered writes)."""
        self._ensure_active()
        return self._touch(name).get(tuple(key))

    def scheme(self, name: str) -> RelationScheme:
        """The (possibly already evolved) scheme as the transaction sees it."""
        self._ensure_active()
        return self._touch(name).scheme

    # -- buffered mutations ------------------------------------------------

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer an object's *birth* (see ``HistoricalDatabase.insert``)."""
        pending = self._mutable(name)
        t = mutations.build_insert(pending.scheme, lifespan, values,
                                   pending.get, name)
        pending.put(t)
        return t

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """Buffer an object's *death* (see ``HistoricalDatabase.terminate``)."""
        pending = self._mutable(name)
        t = mutations.build_terminate(self._existing(pending, name, key), at)
        pending.put(t)
        return t

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a *rebirth* (see ``HistoricalDatabase.reincarnate``)."""
        pending = self._mutable(name)
        merged = mutations.build_reincarnate(
            pending.scheme, self._existing(pending, name, key), lifespan, values
        )
        pending.put(merged)
        return merged

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer new values from *at* on (see ``HistoricalDatabase.update``)."""
        pending = self._mutable(name)
        updated = mutations.build_update(
            pending.scheme, self._existing(pending, name, key), at, changes
        )
        pending.put(updated)
        return updated

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Buffer a schema evolution, re-homing the buffered view.

        Later buffered mutations in the same transaction operate on the
        evolved scheme.
        """
        self._mutable(name).evolve(new_scheme, name)

    # -- helpers -----------------------------------------------------------

    def _touch(self, name: str) -> _PendingRelation:
        if name not in self._pending:
            self._pending[name] = _PendingRelation(self._db._backend(name))
        return self._pending[name]

    def _mutable(self, name: str) -> _PendingRelation:
        self._ensure_active()
        return self._touch(name)

    def _existing(self, pending: _PendingRelation, name: str,
                  key: tuple) -> HistoricalTuple:
        t = pending.get(tuple(key))
        if t is None:
            raise RelationError(f"no tuple with key {tuple(key)!r} in {name!r}")
        return t

    def __repr__(self) -> str:
        touched = ", ".join(sorted(self._pending)) or "nothing"
        return f"Transaction({self._state}, buffering {touched})"
