"""The historical database — a named collection of historical relations.

Figure 1 of the paper shows the instance hierarchy: a database is a set
of relations, each a set of tuples. :class:`HistoricalDatabase` is the
mutable top-level object tying together:

* a :class:`~repro.core.time_domain.TimeDomain` giving chronons meaning
  and carrying the movable ``now``;
* a catalog of named relations (schemes + instances);
* update operations phrased in lifespan terms — :meth:`insert` (birth),
  :meth:`terminate` (death), :meth:`reincarnate` (rebirth of the same
  key, Section 1's hire / fire / re-hire cycle);
* schema evolution via attribute lifespans
  (:mod:`repro.database.evolution`);
* registered integrity constraints, checked on every mutation
  (:mod:`repro.database.integrity`);
* HRQL querying routed through the cost-based planner —
  :meth:`HistoricalDatabase.query` and
  :meth:`HistoricalDatabase.explain`.

Relations are stored immutably; every mutation installs a new relation
value, so readers holding a reference are never surprised.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional

from repro.core.errors import EvolutionError, IntegrityError, RelationError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction
from repro.core.time_domain import T_MAX, T_MIN, TimeDomain
from repro.core.tuples import HistoricalTuple
from repro.planner.explain import PlanExplanation, explain as explain_plan
from repro.planner.planner import Planner
from repro.query.compiler import ExplainQuery, WhenQuery, compile_query
from repro.query.parser import parse as parse_hrql


class HistoricalDatabase:
    """A mutable catalog of historical relations sharing one time domain."""

    def __init__(self, name: str, time_domain: Optional[TimeDomain] = None):
        if not name:
            raise RelationError("database needs a non-empty name")
        self.name = name
        self.time_domain = time_domain or TimeDomain(T_MIN, T_MAX)
        self._relations: Dict[str, HistoricalRelation] = {}
        self._constraints: list = []

    # -- catalog -----------------------------------------------------------

    def create_relation(self, scheme: RelationScheme,
                        tuples: Iterable[HistoricalTuple] = ()) -> HistoricalRelation:
        """Create (and return) an empty or pre-populated relation."""
        if scheme.name in self._relations:
            raise RelationError(f"relation {scheme.name!r} already exists")
        relation = HistoricalRelation(scheme, tuples)
        self._relations[scheme.name] = relation
        self._check_constraints()
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog."""
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        del self._relations[name]

    def relation(self, name: str) -> HistoricalRelation:
        """The current value of the named relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def __getitem__(self, name: str) -> HistoricalRelation:
        return self.relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def relations(self) -> dict[str, HistoricalRelation]:
        """A snapshot copy of the whole catalog."""
        return dict(self._relations)

    def scheme(self, name: str) -> RelationScheme:
        """The scheme of the named relation."""
        return self.relation(name).scheme

    def replace(self, name: str, relation: HistoricalRelation) -> None:
        """Install a new relation value under an existing name.

        The algebra returns fresh relations; ``replace`` is how a
        computed result becomes the new stored state. Constraints are
        re-checked.
        """
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        self._relations[name] = relation
        self._check_constraints()

    # -- lifespan-phrased updates -----------------------------------------------

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Insert a new object (tuple) — its database *birth*.

        ``values`` follows :meth:`HistoricalTuple.build` conventions
        (scalars become constant functions over the value lifespan).
        """
        relation = self.relation(name)
        t = HistoricalTuple.build(relation.scheme, lifespan, values)
        key = t.key_value()
        if relation.get(*key) is not None:
            raise RelationError(
                f"key {key!r} already exists in {name!r}; use reincarnate() or update()"
            )
        self._install(name, relation.with_tuple(t))
        return t

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """End an object's current incarnation — its *death* at chronon *at*.

        The tuple's lifespan (and all values) are truncated to times
        strictly before *at*.
        """
        relation = self.relation(name)
        t = self._existing(relation, key)
        remaining = t.lifespan & Lifespan.until(at - 1)
        if remaining.is_empty:
            raise RelationError(
                f"terminating at {at} would erase the whole history of {key!r}; "
                "drop the tuple explicitly instead"
            )
        truncated = t.restrict(remaining)
        assert truncated is not None
        self._install(name, relation.with_tuple(truncated))
        return truncated

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Re-open an object's history — Section 1's *reincarnation*.

        The new *lifespan* must be disjoint from the existing one; the
        new values extend the object's temporal functions.
        """
        relation = self.relation(name)
        t = self._existing(relation, key)
        if not t.lifespan.isdisjoint(lifespan):
            raise RelationError(
                f"reincarnation lifespan overlaps the existing lifespan of {key!r}"
            )
        addition = HistoricalTuple.build(relation.scheme, lifespan, values)
        if addition.key_value() != t.key_value():
            raise RelationError("reincarnation must preserve the key value")
        merged_ls = t.lifespan | lifespan
        merged_values = {
            a: t.value(a).merge(addition.value(a))
            for a in relation.scheme.attributes
        }
        merged = HistoricalTuple(relation.scheme, merged_ls, merged_values)
        self._install(name, relation.with_tuple(merged))
        return merged

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Record new attribute values from chronon *at* onwards.

        For each attribute in *changes*, the stored function keeps its
        history before *at* and takes the new constant value on the
        remainder of the tuple's (and attribute's) lifespan.
        """
        relation = self.relation(name)
        t = self._existing(relation, key)
        values = {a: t.value(a) for a in relation.scheme.attributes}
        future = Lifespan.since(at)
        for attr, new_value in changes.items():
            vls = t.vls(attr)
            window = vls & future
            if window.is_empty:
                raise RelationError(
                    f"attribute {attr!r} of {key!r} has no lifespan at or after {at}"
                )
            kept = values[attr].restrict(t.lifespan - future)
            values[attr] = kept.merge(TemporalFunction.constant(new_value, window))
        updated = HistoricalTuple(relation.scheme, t.lifespan, values)
        self._install(name, relation.with_tuple(updated))
        return updated

    def _existing(self, relation: HistoricalRelation, key: tuple) -> HistoricalTuple:
        t = relation.get(*key)
        if t is None:
            raise RelationError(f"no tuple with key {key!r} in {relation.scheme.name!r}")
        return t

    def _install(self, name: str, relation: HistoricalRelation) -> None:
        previous = self._relations[name]
        self._relations[name] = relation
        try:
            self._check_constraints()
        except IntegrityError:
            self._relations[name] = previous
            raise

    # -- schema evolution (delegates) ---------------------------------------------

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Install an evolved scheme, re-homing every tuple.

        Values outside the new attribute lifespans are clipped; this is
        the low-level hook used by :mod:`repro.database.evolution`.
        """
        relation = self.relation(name)
        rehomed = []
        for t in relation:
            values = {}
            for a in new_scheme.attributes:
                if a in t.scheme:
                    values[a] = t.value(a).restrict(t.lifespan & new_scheme.als(a))
                else:
                    values[a] = TemporalFunction.empty()
            rehomed.append(HistoricalTuple(new_scheme, t.lifespan, values))
        if new_scheme.name != name:
            raise EvolutionError(
                f"evolved scheme must keep the relation name {name!r}, "
                f"got {new_scheme.name!r}"
            )
        self._relations[name] = HistoricalRelation(new_scheme, rehomed)
        self._check_constraints()

    # -- constraints ------------------------------------------------------------------

    def add_constraint(self, constraint) -> None:
        """Register a constraint (see :mod:`repro.database.integrity`).

        The constraint is checked immediately and then after every
        mutation.
        """
        self._constraints.append(constraint)
        try:
            self._check_constraints()
        except IntegrityError:
            self._constraints.pop()
            raise

    def constraints(self) -> tuple:
        """The registered constraints."""
        return tuple(self._constraints)

    def _check_constraints(self) -> None:
        for constraint in self._constraints:
            constraint.check(self)

    # -- querying ----------------------------------------------------------------------

    def query(self, source: str, optimize: bool = True
              ) -> HistoricalRelation | Lifespan | PlanExplanation:
        """Run an HRQL statement against the catalog, via the planner.

        Every query is planned: normalized with the Section 5 rewrite
        laws (unless ``optimize=False``), translated to a physical
        plan with cost-chosen access paths, and executed.
        ``EXPLAIN [ANALYZE]`` statements return the plan explanation
        instead of the answer; top-level ``WHEN`` returns a lifespan.

        >>> db.query("SELECT WHEN SALARY >= 30000 IN EMP")  # doctest: +SKIP
        """
        compiled = compile_query(parse_hrql(source))
        if isinstance(compiled, ExplainQuery):
            return compiled.evaluate(self._relations, normalize=optimize)
        planner = Planner(normalize=optimize)
        if isinstance(compiled, WhenQuery):
            plan = planner.plan(compiled.child, self._relations, when=True)
        else:
            plan = planner.plan(compiled, self._relations)
        return plan.execute(self._relations)

    def explain(self, source: str, analyze: bool = False,
                optimize: bool = True) -> PlanExplanation:
        """EXPLAIN an HRQL query against the catalog.

        Equivalent to :meth:`query` on ``EXPLAIN [ANALYZE] <source>``,
        as a programmatic API. *source* may itself be an
        ``EXPLAIN [ANALYZE]`` statement; its ``ANALYZE`` flag is
        honored alongside the *analyze* argument.
        """
        compiled = compile_query(parse_hrql(source))
        if isinstance(compiled, ExplainQuery):
            analyze = analyze or compiled.analyze
            compiled = compiled.child
        planner = Planner(normalize=optimize)
        if isinstance(compiled, WhenQuery):
            return explain_plan(compiled.child, self._relations,
                                when=True, analyze=analyze, planner=planner)
        return explain_plan(compiled, self._relations,
                            analyze=analyze, planner=planner)

    # -- convenience -------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The database's current time."""
        return self.time_domain.now

    def snapshot(self, time: Optional[int] = None) -> dict[str, list[dict]]:
        """The classical view of the whole database at one chronon."""
        at = self.now if time is None else time
        return {name: rel.snapshot(at) for name, rel in self._relations.items()}

    def __repr__(self) -> str:
        return f"HistoricalDatabase({self.name!r}, {len(self)} relations)"
