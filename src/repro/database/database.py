"""The historical database — a named catalog of historical relations.

Figure 1 of the paper shows the instance hierarchy: a database is a set
of relations, each a set of tuples. :class:`HistoricalDatabase` is the
mutable top-level object tying together:

* a :class:`~repro.core.time_domain.TimeDomain` giving chronons meaning
  and carrying the movable ``now``;
* a catalog of named relations, each behind a storage backend — held
  in memory (:class:`~repro.core.relation.HistoricalRelation`) or on
  the Figure 9 storage engine
  (:class:`~repro.storage.engine.StoredRelation`), chosen per relation
  with ``create_relation(..., storage="memory" | "disk")``; both
  satisfy the :class:`~repro.core.protocols.Relation` protocol and
  answer the same queries;
* update operations phrased in lifespan terms — :meth:`insert` (birth),
  :meth:`terminate` (death), :meth:`reincarnate` (rebirth of the same
  key, Section 1's hire / fire / re-hire cycle) — checked against the
  registered integrity constraints after every call, with atomic
  rollback on violation;
* transactional sessions (:meth:`transaction`) that buffer mutations,
  apply them per relation in one batch, and defer the constraint sweep
  to commit — the bulk path;
* schema evolution via attribute lifespans
  (:mod:`repro.database.evolution`);
* HRQL querying through the cost-based planner — :meth:`query` returns
  a typed :class:`~repro.database.result.QueryResult`, ``:name``
  parameters bind at plan time, and :meth:`prepare` caches the parsed
  statement for cheap re-planning;
* durability (``path=...``) — the catalog lives in a directory, every
  commit appends a checksummed write-ahead-log record
  (:mod:`repro.database.durability`), :meth:`checkpoint` writes a
  consistent snapshot, and reopening after a crash replays the log to
  the last committed state;
* concurrency (:mod:`repro.database.concurrency`) — multi-version
  concurrency control: queries read published committed snapshots
  without blocking, transactional sessions build private write-sets
  concurrently against their begin-time snapshot and validate at
  commit (first-committer-wins, retryable
  :class:`~repro.core.errors.ConflictError` on a lost race —
  :meth:`run_transaction` wraps the retry loop), so one catalog safely
  serves many threads (and, through :mod:`repro.server`, many network
  clients).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Union

from repro.core.domains import ValueDomain
from repro.core.errors import (ConflictError, HRDMError, IntegrityError,
                               RelationError, StorageError, TransactionError)
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.time_domain import T_MAX, T_MIN, TimeDomain
from repro.core.tuples import HistoricalTuple
from repro.database import durability, mutations
from repro.database.backends import BACKENDS, DiskBackend, MemoryBackend
from repro.database.concurrency import ConcurrencyManager, WriteSet
from repro.database.durability import DurabilityManager
from repro.database.prepared import PreparedQuery
from repro.database.result import QueryResult
from repro.database.session import Transaction
from repro.planner.explain import PlanExplanation, explain as explain_plan
from repro.planner.planner import Planner
from repro.query.compiler import ExplainQuery, WhenQuery, compile_query
from repro.query.parser import parse as parse_hrql

#: A catalog entry's storage backend.
Backend = Union[MemoryBackend, DiskBackend]


def _relation_write_set(name: str) -> WriteSet:
    """The write-set of a relation-granular commit (DDL, replace,
    evolution): conflicts with any concurrent write to *name*."""
    write_set = WriteSet()
    write_set.record_relation(name)
    return write_set


class _PreparedTxn:
    """One voted-yes, undecided two-phase transaction on this database.

    A **live** prepare (this process ran the transaction body) carries
    the apply-time *undos* so an abort decision can roll the backends
    back; a **recovered** prepare (found in the WAL at reopen) carries
    the PREPARE *record* instead — its ops were stashed, not applied,
    so a commit decision replays them.
    """

    __slots__ = ("write_set", "undos", "record")

    def __init__(self, write_set, undos=None, record=None):
        self.write_set = write_set
        self.undos = undos
        self.record = record


class HistoricalDatabase:
    """A mutable catalog of historical relations sharing one time domain.

    Without *path* the database is ephemeral — it dies with the
    process. With *path* it is **durable**: the catalog lives under
    that directory, every committed mutation appends a write-ahead-log
    record (the commit's durability point, see
    :mod:`repro.storage.wal`), :meth:`checkpoint` writes a consistent
    snapshot and truncates the log, and constructing the database
    against an existing directory recovers the last committed state —
    including after a crash (torn log tails are detected by checksum
    and discarded).

    Parameters
    ----------
    name:
        The database name. Required for ephemeral databases; optional
        for durable ones (a fresh directory defaults to its basename,
        an existing one supplies its own — passing a *different* name
        is an error).
    time_domain:
        The shared :class:`~repro.core.time_domain.TimeDomain`. For an
        existing durable database the persisted domain wins.
    path:
        Directory of a durable database (created if missing).
    sync:
        WAL fsync policy: ``"always"`` (fsync per commit),
        ``"batch"`` (group commit: fsync every *wal_batch_size*
        commits and on :meth:`flush` / :meth:`close`), or ``"never"``.
    wal_batch_size:
        Group-commit window for ``sync="batch"``.
    domains:
        Custom :class:`~repro.core.domains.ValueDomain` objects by
        name, to restore membership enforcement for schemes that use
        them (built-in domains round-trip automatically).
    """

    def __init__(self, name: Optional[str] = None,
                 time_domain: Optional[TimeDomain] = None, *,
                 path: Optional[str] = None,
                 sync: str = "batch",
                 wal_batch_size: int = 64,
                 domains: Optional[Mapping[str, ValueDomain]] = None):
        if path is None and not name:
            raise RelationError("database needs a non-empty name")
        self.name = name or ""
        self.time_domain = time_domain or TimeDomain(T_MIN, T_MAX)
        self._backends: Dict[str, Backend] = {}
        self._constraints: list = []
        #: Bumped on every successful catalog change; prepared queries
        #: key their plan caches on it.
        self._version = 0
        #: MVCC machinery (see :mod:`repro.database.concurrency`).
        #: Queries read the last published environment; transactional
        #: sessions snapshot at begin and validate at commit; the
        #: commit lock serializes only the validate/apply/log/publish
        #: critical section.
        self._concurrency = ConcurrencyManager()
        #: Prepared-but-undecided two-phase transactions: txn_id →
        #: :class:`_PreparedTxn`. Guarded by the commit lock.
        self._prepared_txns: Dict[str, _PreparedTxn] = {}
        self._durability: Optional[DurabilityManager] = None
        if path is not None:
            manager = DurabilityManager(path, sync, wal_batch_size, domains)
            manager.open(self, name)
            self._durability = manager
            for record in manager.recovered_in_doubt.values():
                self._stash_prepare_record(record)
        self._concurrency.publish(self._backends)

    # -- catalog -----------------------------------------------------------

    def create_relation(self, scheme: RelationScheme,
                        tuples: Any = (), *,
                        storage: str = "memory", **backend_options):
        """Create a relation and return its catalog value.

        *storage* selects the physical home: ``"memory"`` (an immutable
        :class:`~repro.core.relation.HistoricalRelation`) or ``"disk"``
        (a :class:`~repro.storage.engine.StoredRelation` on heap pages
        with key and interval indexes; accepts ``page_size=``). Both
        satisfy the :class:`~repro.core.protocols.Relation` protocol
        and behave identically under queries and mutations.
        """
        self._ensure_mutable("create a relation")
        lsn = None
        with self._concurrency.write():
            if scheme.name in self._backends:
                raise RelationError(f"relation {scheme.name!r} already exists")
            try:
                factory = BACKENDS[storage]
            except KeyError:
                options = ", ".join(sorted(BACKENDS))
                raise RelationError(
                    f"unknown storage {storage!r}; expected one of: {options}"
                ) from None
            backend = factory(scheme, tuples, **backend_options)
            self._backends[scheme.name] = backend
            try:
                self._check_constraints()
                if self._durability is not None:
                    lsn = self._durability.log_commit([durability.create_op(
                        scheme.name, backend.kind, backend.options(),
                        scheme, backend.source(),
                    )])
            except BaseException:
                del self._backends[scheme.name]
                raise
            self._committed(_relation_write_set(scheme.name))
        if lsn is not None:
            self._durability.ensure_durable(lsn)
        return backend.source()

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog.

        Registered constraints are re-checked against the shrunken
        catalog: a constraint that still references the dropped
        relation would silently go stale, so the drop is refused (and
        rolled back) until the constraint is removed.
        """
        self._ensure_mutable("drop a relation")
        lsn = None
        with self._concurrency.write():
            backend = self._backend(name)
            del self._backends[name]
            try:
                self._check_constraints()
            except HRDMError as exc:
                self._backends[name] = backend
                raise RelationError(
                    f"cannot drop relation {name!r}: a registered constraint "
                    f"still references it ({exc}); remove the constraint first"
                ) from exc
            try:
                if self._durability is not None:
                    lsn = self._durability.log_commit([durability.drop_op(name)])
            except BaseException:
                self._backends[name] = backend
                raise
            self._committed(_relation_write_set(name))
        if lsn is not None:
            self._durability.ensure_durable(lsn)

    def relation(self, name: str):
        """The current value of the named relation.

        Returns the catalog object itself — a
        :class:`~repro.core.relation.HistoricalRelation` or a
        :class:`~repro.storage.engine.StoredRelation` — both satisfying
        the :class:`~repro.core.protocols.Relation` protocol.
        """
        return self._backend(name).source()

    def storage(self, name: str) -> str:
        """The storage kind of the named relation: "memory" or "disk"."""
        return self._backend(name).kind

    def __getitem__(self, name: str):
        return self.relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._backends

    def __iter__(self) -> Iterator[str]:
        return iter(self._backends)

    def __len__(self) -> int:
        return len(self._backends)

    def relations(self) -> dict[str, Any]:
        """A snapshot copy of the whole catalog (name → relation).

        The copy is the last *published* (committed) environment — an
        atomic cut across all relations, safe to read while other
        threads commit (see :mod:`repro.database.concurrency`).
        """
        return dict(self._concurrency.read_env())

    def scheme(self, name: str) -> RelationScheme:
        """The scheme of the named relation."""
        return self._backend(name).scheme

    def replace(self, name: str, relation: HistoricalRelation) -> None:
        """Install a new relation value under an existing name.

        The algebra returns fresh relations; ``replace`` is how a
        computed result becomes the new stored state (re-encoded onto
        the storage engine for disk-backed entries). Constraints are
        re-checked, and the prior value restored on violation.
        """
        self._ensure_mutable("replace a relation")
        self._install_relation(name, relation)

    # -- lifespan-phrased updates -------------------------------------------

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Insert a new object (tuple) — its database *birth*.

        ``values`` follows :meth:`HistoricalTuple.build` conventions
        (scalars become constant functions over the value lifespan).
        """
        self._ensure_mutable("insert")

        def build(base):
            t = mutations.build_insert(
                base.scheme, lifespan, values,
                lambda key: base.get(*key), name,
            )
            return t, mutations.delta_insert(t)

        return self._autocommit(name, build)

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """End an object's current incarnation — its *death* at chronon *at*.

        The tuple's lifespan (and all values) are truncated to times
        strictly before *at*.
        """
        self._ensure_mutable("terminate")

        def build(base):
            before = self._existing_in(base, name, key)
            t = mutations.build_terminate(before, at)
            return t, mutations.delta_terminate(before, t)

        return self._autocommit(name, build)

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Re-open an object's history — Section 1's *reincarnation*.

        The new *lifespan* must be disjoint from the existing one; the
        new values extend the object's temporal functions.
        """
        self._ensure_mutable("reincarnate")

        def build(base):
            merged = mutations.build_reincarnate(
                base.scheme, self._existing_in(base, name, key),
                lifespan, values,
            )
            return merged, mutations.delta_reincarnate(lifespan)

        return self._autocommit(name, build)

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Record new attribute values from chronon *at* onwards.

        For each attribute in *changes*, the stored function keeps its
        history before *at* and takes the new constant value on the
        remainder of the tuple's (and attribute's) lifespan.
        """
        self._ensure_mutable("update")

        def build(base):
            updated = mutations.build_update(
                base.scheme, self._existing_in(base, name, key), at, changes
            )
            return updated, mutations.delta_update(updated, at)

        return self._autocommit(name, build)

    # -- transactions -------------------------------------------------------

    def transaction(self) -> Transaction:
        """Open a transactional session buffering mutations until commit.

        ::

            with db.transaction() as txn:
                txn.insert("EMP", lifespan, values)
                txn.update("EMP", key, at=50, changes={...})

        All buffered changes apply atomically at the end of the
        ``with`` block: one batched pass per touched relation and a
        single constraint sweep, instead of one full sweep per
        mutation — the bulk-load fast path. On any error (including a
        constraint violation at commit) the catalog is left exactly as
        it was when the transaction began.

        Sessions are **snapshot-isolated and optimistic**: the body
        runs against the committed cut captured here, with no lock
        held, and commit validates first-committer-wins — a lost race
        raises the retryable
        :class:`~repro.core.errors.ConflictError` (see
        :meth:`run_transaction` for the canonical retry loop).
        """
        self._ensure_mutable("open a transaction")
        return Transaction(self)

    def run_transaction(self, body, *, attempts: int = 5):
        """Run *body* in a transaction, retrying on commit conflicts.

        *body* receives the open :class:`Transaction` and its return
        value is returned on success. Each attempt runs against a fresh
        snapshot; a commit that loses its first-committer-wins race
        (:class:`~repro.core.errors.ConflictError`) is retried up to
        *attempts* times, then the final conflict propagates. Any other
        exception rolls back and propagates immediately. *body* may
        commit or roll back explicitly; it must be safe to re-run.

        ::

            def give_raise(txn):
                return txn.update("EMP", ("Ada",), at=50,
                                  changes={"SALARY": 60_000})

            updated = db.run_transaction(give_raise)
        """
        for attempt in range(max(1, attempts)):
            txn = self.transaction()
            try:
                result = body(txn)
            except BaseException:
                if txn.state == "active":
                    txn.rollback()
                raise
            if txn.state != "active":  # body committed / rolled back itself
                return result
            try:
                txn.commit()
            except ConflictError:
                if attempt == max(1, attempts) - 1:
                    raise
                continue
            return result

    # -- two-phase commit -----------------------------------------------------

    def in_doubt_transactions(self) -> list[str]:
        """The ids of prepared (voted-yes, undecided) transactions.

        Non-empty only while this database is a two-phase-commit
        participant between a PREPARE and its coordinator's decision —
        including just after a crash-reopen that recovered PREPARE
        records without decisions (presumed abort: the shard worker
        resolves each against the coordinator's decision log, see
        :mod:`repro.sharding`).
        """
        with self._concurrency.write():
            return list(self._prepared_txns)

    def _register_prepared(self, txn_id: str, write_set: WriteSet,
                           undos: list) -> None:
        """Pin a live prepare (caller holds the commit lock)."""
        self._prepared_txns[txn_id] = _PreparedTxn(write_set, undos=undos)
        self._concurrency.pin_prepared(txn_id, write_set)

    def _stash_prepare_record(self, record) -> None:
        """Pin a PREPARE record whose ops were *not* applied — the
        recovery path and the replica stream path. Pinned conservatively
        at relation granularity: the WAL record does not carry per-key
        delta lifespans, and an in-doubt window should be short anyway.
        Caller holds the commit lock (or is still single-threaded in
        ``__init__``)."""
        write_set = WriteSet()
        for op in record.decoded():
            write_set.record_relation(op[1])
        self._prepared_txns[record.txn_id] = _PreparedTxn(write_set,
                                                          record=record)
        self._concurrency.pin_prepared(record.txn_id, write_set)

    def _take_prepared(self, txn_id: str) -> Optional[_PreparedTxn]:
        """Unpin and return a prepared transaction's state, or None.
        Caller holds the commit lock and applies the decision itself
        (the replica stream path, which must not mint its own decision
        record — the primary's is already in its log)."""
        state = self._prepared_txns.pop(txn_id, None)
        if state is not None:
            self._concurrency.unpin_prepared(txn_id)
        return state

    def resolve_prepared(self, txn_id: str, commit: bool) -> None:
        """Apply the coordinator's decision to a prepared transaction.

        ``commit=True`` makes the prepared ops visible (publishing the
        write-set exactly as an ordinary commit would — constraints are
        **not** re-checked; they passed at prepare time, which is what
        the yes vote promised). ``commit=False`` rolls the backends
        back (live prepare) or drops the stashed ops (recovered
        prepare). Either way the decision is logged so a later reopen
        replays deterministically, and the pinned write-set is
        released.
        """
        self._ensure_mutable("resolve a prepared transaction")
        lsn = None
        with self._concurrency.write():
            state = self._prepared_txns.pop(txn_id, None)
            if state is None:
                raise TransactionError(
                    f"no prepared transaction {txn_id!r} on {self.name!r}")
            try:
                if commit and state.record is not None:
                    # Recovered prepare: the ops were stashed at replay,
                    # apply them now.
                    self._durability.replay(self, state.record)
            except BaseException:
                self._prepared_txns[txn_id] = state
                raise
            if self._durability is not None:
                lsn = self._durability.log_decision(txn_id, commit)
            self._concurrency.unpin_prepared(txn_id)
            if commit:
                self._committed(state.write_set)
            elif state.undos:
                for undo in reversed(state.undos):
                    undo()
        if lsn is not None:
            self._durability.ensure_durable(lsn)

    # -- durability ----------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True when the database is backed by a directory on disk."""
        return self._durability is not None

    @property
    def path(self) -> Optional[str]:
        """The durable database directory, or None for ephemeral ones."""
        return None if self._durability is None else self._durability.path

    def checkpoint(self) -> int:
        """Write a consistent snapshot and truncate the write-ahead log.

        Every relation's heap pages and indexes are written at a new
        generation, the manifest flips atomically, and the WAL resets —
        so reopening costs a snapshot load instead of a long replay.
        The protocol is crash-safe at every boundary (see
        :meth:`repro.database.durability.DurabilityManager.checkpoint`).
        Returns the new checkpoint generation.
        """
        self._require_durable("checkpoint")
        with self._concurrency.write():
            return self._durability.checkpoint(self)

    def flush(self) -> None:
        """Force every acknowledged commit to stable storage.

        A no-op under ``sync="always"``; under ``"batch"`` / ``"never"``
        this is the group-commit boundary callers can invoke by hand.
        """
        self._require_durable("flush")
        self._durability.flush()

    @property
    def closed(self) -> bool:
        """True once a durable database has been :meth:`close`\\ d.

        Ephemeral databases are never closed (their ``close()`` is a
        no-op).
        """
        return self._durability is not None and self._durability.closed

    def close(self) -> None:
        """Flush and release the durable database's files (idempotent).

        Ephemeral databases accept ``close()`` as a no-op so callers
        can treat both kinds uniformly. A closed database refuses
        further mutations (``StorageError``); reopen it by
        constructing a new :class:`HistoricalDatabase` on the path.
        """
        if self._durability is not None:
            with self._concurrency.write():
                self._durability.close()

    def __enter__(self) -> "HistoricalDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _require_durable(self, action: str) -> None:
        if self._durability is None:
            raise RelationError(
                f"cannot {action}: {self.name!r} is not a durable database "
                f"(construct it with path=...)"
            )

    def _ensure_mutable(self, action: str) -> None:
        """Fail fast — with one consistent error — on a closed database.

        Every mutation entry point (insert / update / terminate /
        reincarnate / evolve / DDL / replace / transaction) calls this
        first, so mutation-after-``close()`` raises the same
        :class:`~repro.core.errors.StorageError` regardless of which
        path would otherwise have hit the durability layer first (or
        not at all, for paths that fail later).
        """
        if self.closed:
            raise StorageError(
                f"the database has been closed; cannot {action} "
                f"(reopen it with HistoricalDatabase(path=...))"
            )

    # -- internal apply/restore machinery -----------------------------------

    def _backend(self, name: str) -> Backend:
        try:
            return self._backends[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def _existing_in(self, base, name: str, key: tuple) -> HistoricalTuple:
        t = base.get(*tuple(key))
        if t is None:
            raise RelationError(f"no tuple with key {tuple(key)!r} in {name!r}")
        return t

    def _committed(self, write_set: WriteSet) -> None:
        """Acknowledge a successful commit: bump the catalog version
        (prepared-statement plan caches key on it) and publish the new
        read environment for concurrent snapshot readers. *write_set*
        names what changed — publication replaces only those relations,
        and the write-set is retained so later optimistic commits can
        validate against it."""
        self._version += 1
        self._concurrency.committed(self._backends, write_set)

    def _autocommit(self, name: str,
                    build: Callable[[Any], tuple]) -> HistoricalTuple:
        """Run one keyed mutation as an optimistic micro-transaction.

        *build* computes ``(tuple, delta_lifespan)`` from the
        relation's snapshot value — with **no lock held**, so
        concurrent callers build in parallel. The commit lock then
        covers only validate / apply / log / publish. When a concurrent
        commit won the key in between, the operation retries against a
        fresh snapshot, so the caller sees the same outcomes a serial
        schedule would (a duplicate birth fails with
        :class:`~repro.core.errors.RelationError`, a disjoint-key write
        simply lands). Only a pathological stream of relation-granular
        commits (DDL, evolution) can exhaust the retries and surface
        the final :class:`~repro.core.errors.ConflictError`.
        """
        conflict: Optional[ConflictError] = None
        for _ in range(8):
            snapshot = self._concurrency.snapshot()
            base = snapshot.relation(name)
            if base is None:
                # Not yet published (or dropped): fall back to the live
                # catalog lookup for the canonical error / fresh value.
                base = self._backend(name).source()
            t, delta = build(base)
            write_set = WriteSet()
            write_set.record(name, t.key_value(), delta)
            changes = {t.key_value(): t}
            # Encoded outside the lock, like the build: the critical
            # section below is validate / apply / buffered log append.
            ops = (None if self._durability is None
                   else [durability.apply_op(name, changes)])
            with self._concurrency.write():
                try:
                    self._concurrency.validate(write_set,
                                               snapshot.commit_id)
                except ConflictError as exc:
                    conflict = exc
                    continue
                lsn = self._apply(name, changes, write_set, ops)
            if lsn is not None:
                self._durability.ensure_durable(lsn)
            return t
        assert conflict is not None
        raise conflict

    def _apply(self, name: str, changes: Mapping[tuple, HistoricalTuple],
               write_set: WriteSet,
               ops: Optional[list] = None) -> Optional[int]:
        """Apply a keyed batch to one relation, check, log, roll back on failure.

        Returns the WAL LSN of the (deferred-sync) commit record, or
        None on a non-durable catalog — the caller acknowledges only
        after :meth:`DurabilityManager.ensure_durable`, *off* the
        commit lock.
        """
        with self._concurrency.write():
            undo = self._backend(name).apply(changes)
            lsn = None
            try:
                self._check_constraints()
                if self._durability is not None:
                    if ops is None:
                        ops = [durability.apply_op(name, changes)]
                    lsn = self._durability.log_commit(ops)
            except BaseException:
                undo()
                raise
            self._committed(write_set)
            return lsn

    def _install_relation(self, name: str,
                          relation: HistoricalRelation) -> None:
        """Replace a whole relation value, check, log, roll back on failure.

        A relation-granular write: its write-set conflicts with any
        concurrent optimistic commit touching the relation.
        """
        lsn = None
        with self._concurrency.write():
            undo = self._backend(name).install(relation)
            try:
                self._check_constraints()
                if self._durability is not None:
                    lsn = self._durability.log_commit(
                        [durability.install_op(name, relation)])
            except BaseException:
                undo()
                raise
            self._committed(_relation_write_set(name))
        if lsn is not None:
            self._durability.ensure_durable(lsn)

    def _env(self) -> dict[str, Any]:
        """The planner / executor environment: name → tuple source.

        This is the last *published* environment — an immutable,
        committed snapshot (see :mod:`repro.database.concurrency`), so
        a query executes against one consistent state even while other
        threads commit.
        """
        return self._concurrency.read_env()

    # -- schema evolution (delegates) ----------------------------------------

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Install an evolved scheme, re-homing every tuple.

        Values outside the new attribute lifespans are clipped; this is
        the low-level hook used by :mod:`repro.database.evolution`.
        Constraints are re-checked through the same install / restore
        path as every other mutation, so a violating evolution leaves
        the catalog untouched.
        """
        self._ensure_mutable("evolve a scheme")
        with self._concurrency.write():
            backend = self._backend(name)
            rehomed = mutations.rehome(backend.source(), new_scheme, name)
            self._install_relation(
                name, HistoricalRelation(new_scheme, rehomed))

    # -- constraints ---------------------------------------------------------

    def add_constraint(self, constraint) -> None:
        """Register a constraint (see :mod:`repro.database.integrity`).

        The constraint is checked immediately and then after every
        mutation (at commit, for transactional sessions).
        """
        with self._concurrency.write():
            self._constraints.append(constraint)
            try:
                self._check_constraints()
            except IntegrityError:
                self._constraints.pop()
                raise

    def constraints(self) -> tuple:
        """The registered constraints."""
        return tuple(self._constraints)

    def _check_constraints(self) -> None:
        for constraint in self._constraints:
            constraint.check(self)

    # -- querying ------------------------------------------------------------

    def query(self, source,
              params: Optional[Mapping[str, Any]] = None, *,
              optimize: bool = True) -> QueryResult:
        """Run an HRQL statement against the catalog, via the planner.

        Every query is planned: normalized with the Section 5 rewrite
        laws (unless ``optimize=False``), translated to a physical
        plan with cost-chosen access paths, and executed against the
        catalog's mix of in-memory and stored relations. *params*
        binds ``:name`` parameters in the statement at plan time.
        *source* is HRQL text, or an already-parsed statement AST for
        callers that inspected it first (the shell does, to pick
        session bindings).

        Returns a typed :class:`~repro.database.result.QueryResult`:
        ``.relation`` for relation answers, ``.lifespan`` for top-level
        ``WHEN``, ``.explanation`` for ``EXPLAIN [ANALYZE]``, and
        ``.plan`` for the physical plan behind any of them.

        >>> db.query("SELECT WHEN SALARY >= :min IN EMP",
        ...          {"min": 30_000}).relation             # doctest: +SKIP
        """
        statement = parse_hrql(source) if isinstance(source, str) else source
        compiled = compile_query(statement, params)
        env = self._env()
        if isinstance(compiled, ExplainQuery):
            return QueryResult(compiled.evaluate(env, normalize=optimize))
        planner = Planner(normalize=optimize)
        if isinstance(compiled, WhenQuery):
            plan = planner.plan(compiled.child, env, when=True)
        else:
            plan = planner.plan(compiled, env)
        # The stream materializes inside QueryResult — the result
        # object is the pipeline's final breaker.
        return QueryResult(plan.execute_stream(env), plan)

    def explain(self, source,
                params: Optional[Mapping[str, Any]] = None, *,
                analyze: bool = False,
                optimize: bool = True) -> PlanExplanation:
        """EXPLAIN an HRQL query against the catalog.

        Equivalent to :meth:`query` on ``EXPLAIN [ANALYZE] <source>``,
        as a programmatic API. *source* may itself be an
        ``EXPLAIN [ANALYZE]`` statement (its ``ANALYZE`` flag is
        honored alongside the *analyze* argument) or an already-parsed
        statement AST. *params* binds ``:name`` parameters.
        """
        statement = parse_hrql(source) if isinstance(source, str) else source
        compiled = compile_query(statement, params)
        if isinstance(compiled, ExplainQuery):
            analyze = analyze or compiled.analyze
            compiled = compiled.child
        planner = Planner(normalize=optimize)
        env = self._env()
        if isinstance(compiled, WhenQuery):
            return explain_plan(compiled.child, env,
                                when=True, analyze=analyze, planner=planner)
        return explain_plan(compiled, env,
                            analyze=analyze, planner=planner)

    def prepare(self, source: str) -> PreparedQuery:
        """Parse an HRQL query once, for repeated parameterized runs.

        The returned :class:`~repro.database.prepared.PreparedQuery`
        caches the parsed statement and its normalized algebra form per
        binding, so each execution only re-translates and re-costs —
        see :meth:`PreparedQuery.query`.

        >>> ready = db.prepare("SELECT IF SALARY >= :min IN EMP")  # doctest: +SKIP
        >>> ready.query({"min": 30_000}).rows()                    # doctest: +SKIP
        """
        return PreparedQuery(self, source)

    # -- convenience ---------------------------------------------------------

    @property
    def now(self) -> int:
        """The database's current time."""
        return self.time_domain.now

    def snapshot(self, time: Optional[int] = None) -> dict[str, list[dict]]:
        """The classical view of the whole database at one chronon.

        Computed over the published read environment, so the view is a
        committed cut even under concurrent commits.
        """
        at = self.now if time is None else time
        return {name: relation.snapshot(at)
                for name, relation in self._env().items()}

    def __repr__(self) -> str:
        return f"HistoricalDatabase({self.name!r}, {len(self)} relations)"
