"""Tuple placement — which shard owns which history.

Placement is decided per **relation**, recorded durably in the
coordinator's :class:`ShardCatalog`, and never consulted by the shard
workers themselves (a worker is an ordinary
:class:`~repro.server.DatabaseServer` that happens to hold a slice of
the data):

* ``hashed`` — each tuple lives on exactly one shard, chosen by
  :func:`shard_of` over the tuple's *shard key*: a subset of the
  relation's (constant) key attributes, defaulting to the full key.
  Because shard-key attributes are constant-valued, a tuple's home
  shard never changes over its lifespan — updates, terminations, and
  reincarnations route by the same hash as the original insert.
* ``broadcast`` — the relation is fully replicated on every shard.
  The mode for small dimension relations sitting on the referenced
  side of a temporal foreign key: each shard can sweep the constraint
  locally against its complete copy, and multi-relation reads that
  join a hashed fact against a broadcast dimension still push down.

The hash is :func:`zlib.crc32` over a canonical, type-tagged rendering
of the shard-key values — stable across processes, platforms, and
``PYTHONHASHSEED``, which is what lets a restarted coordinator (or an
offline tool) recompute every tuple's home from the catalog alone.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.errors import ShardingError

__all__ = ["Placement", "ShardCatalog", "shard_of"]

_PLACEMENTS = ("hashed", "broadcast")


def _canonical(value: Any) -> str:
    """A type-tagged stable rendering of one shard-key value.

    Tagged so ``1`` and ``"1"`` hash apart, and ``repr`` for floats so
    the rendering round-trips exactly.
    """
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{value}"
    raise ShardingError(
        f"shard-key values must be scalars, got {type(value).__name__}: "
        f"{value!r}")


def shard_of(values: Sequence[Any], n_shards: int) -> int:
    """The home shard for a tuple with these shard-key *values*.

    Deterministic across processes (crc32 of a canonical rendering),
    so every coordinator instance — and every test — agrees where a
    key lives.

    >>> shard_of(["st0001"], 4) == shard_of(["st0001"], 4)
    True
    """
    if n_shards < 1:
        raise ShardingError(f"need at least one shard, got {n_shards}")
    data = "\x1f".join(_canonical(v) for v in values).encode("utf-8")
    return zlib.crc32(data) % n_shards


class Placement:
    """One relation's durable placement row in the shard catalog."""

    __slots__ = ("name", "placement", "key", "shard_by", "scheme", "storage")

    def __init__(self, name: str, placement: str, key: Sequence[str],
                 shard_by: Sequence[str], scheme: dict, storage: str):
        if placement not in _PLACEMENTS:
            raise ShardingError(
                f"unknown placement {placement!r} for {name!r}; "
                f"expected one of {', '.join(_PLACEMENTS)}")
        missing = [a for a in shard_by if a not in key]
        if missing:
            raise ShardingError(
                f"shard_by attributes of {name!r} must be key attributes "
                f"(the key is constant, so routing never depends on time); "
                f"{', '.join(missing)} not in key ({', '.join(key)})")
        if placement == "hashed" and not shard_by:
            raise ShardingError(
                f"hashed relation {name!r} needs at least one shard_by "
                f"attribute")
        self.name = name
        self.placement = placement
        self.key = tuple(key)
        self.shard_by = tuple(shard_by)
        self.scheme = scheme
        self.storage = storage

    @property
    def hashed(self) -> bool:
        return self.placement == "hashed"

    @property
    def broadcast(self) -> bool:
        return self.placement == "broadcast"

    def shard_key_of(self, key_values: Sequence[Any]) -> List[Any]:
        """Project the shard-key values out of a full key tuple."""
        by_attr = dict(zip(self.key, key_values))
        return [by_attr[a] for a in self.shard_by]

    def to_json(self) -> dict:
        return {
            "placement": self.placement,
            "key": list(self.key),
            "shard_by": list(self.shard_by),
            "scheme": self.scheme,
            "storage": self.storage,
        }

    @classmethod
    def from_json(cls, name: str, raw: dict) -> "Placement":
        return cls(name, raw["placement"], raw["key"], raw["shard_by"],
                   raw["scheme"], raw.get("storage", "memory"))

    def __repr__(self) -> str:
        detail = (f"by {','.join(self.shard_by)}" if self.hashed
                  else "broadcast")
        return f"Placement({self.name!r}, {detail})"


class ShardCatalog:
    """The coordinator's durable relation → placement map.

    Persisted as one JSON file in the coordinator directory and
    rewritten atomically (tmp + rename) on every DDL change, so a
    restarted coordinator recovers exactly the routing metadata its
    acknowledged DDL established. The shard count is pinned at first
    write: reopening a catalog with a different ``--shard`` list is
    refused rather than silently rehashing every key to the wrong
    home.
    """

    def __init__(self, path: str, n_shards: int):
        self.path = path
        self.n_shards = int(n_shards)
        self._lock = threading.Lock()
        self._relations: Dict[str, Placement] = {}
        if os.path.exists(path):
            self._load()
        else:
            self._save()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        stored = int(raw.get("n_shards", self.n_shards))
        if stored != self.n_shards:
            raise ShardingError(
                f"catalog at {self.path} was built for {stored} shard(s) "
                f"but the coordinator was started with {self.n_shards}; "
                f"re-sharding needs an explicit data migration, not a "
                f"restart")
        self._relations = {
            name: Placement.from_json(name, entry)
            for name, entry in raw.get("relations", {}).items()
        }

    def _save(self) -> None:
        payload = {
            "version": 1,
            "n_shards": self.n_shards,
            "relations": {name: p.to_json()
                          for name, p in sorted(self._relations.items())},
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def add(self, placement: Placement) -> None:
        with self._lock:
            self._relations[placement.name] = placement
            self._save()

    def remove(self, name: str) -> None:
        with self._lock:
            self._relations.pop(name, None)
            self._save()

    def get(self, name: str) -> Optional[Placement]:
        with self._lock:
            return self._relations.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._relations)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._relations

    def __len__(self) -> int:
        with self._lock:
            return len(self._relations)

    def __repr__(self) -> str:
        return (f"ShardCatalog({len(self)} relation(s) over "
                f"{self.n_shards} shard(s))")
