"""The shard coordinator — one wire endpoint over N shard workers.

The coordinator speaks the ordinary server protocol
(:mod:`repro.server.protocol`), so :func:`repro.client.connect` and the
HRQL shell talk to a sharded catalog exactly as they talk to a single
server — same frames, same typed results, same retryable error
semantics. Behind that endpoint it owns three things:

* the **shard catalog** (:class:`~repro.sharding.placement.ShardCatalog`)
  — durable relation → placement metadata, updated by DDL frames and
  consulted on every routed statement;
* the **router** (:mod:`repro.sharding.router`) — forward / fanout /
  gather classification for reads, shard-key hashing for mutations;
* the **decision log** (:class:`~repro.sharding.decision.DecisionLog`)
  — the presumed-abort source of truth for cross-shard two-phase
  commits.

A transaction begun on a coordinator connection opens worker-side
transactions lazily, on the first mutation routed to each shard. At
COMMIT, one enrolled shard is a plain forwarded commit (the one-phase
fast path — a single participant's WAL append *is* the atomic commit);
two or more run 2PC over the workers' WALs: TXN_PREPARE on every
participant (each force-syncs a PREPARE record before voting yes), one
fsynced entry in the decision log, then TXN_DECIDE everywhere. A
decide the coordinator cannot deliver (worker down) is not retried
inline — the decision is durable, and the in-doubt participant is
resolved on its next STATUS probe, at coordinator startup, or by the
worker's own RESOLVE poll (:class:`~repro.sharding.worker.ShardWorker`).

Shard leadership reuses the replication layer's epoch fencing: each
shard may be configured with several addresses (leader plus replicas),
and a :class:`_ShardLink` answers a
:class:`~repro.core.errors.FencedError` by re-probing the address set
and re-routing to the writable server with the highest fencing epoch —
the same election rule as :meth:`repro.client.RoutedClient.rediscover`.
"""

from __future__ import annotations

import os
import socketserver
import threading
import uuid
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.client import Client
from repro.core.errors import (FencedError, HRDMError, RelationError,
                               ShardingError, TransactionError)
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.database.result import QueryResult
from repro.planner.planner import Planner
from repro.query.compiler import ExplainQuery, WhenQuery, compile_query
from repro.query.parser import parse as parse_hrql
from repro.query import ast_nodes as ast
from repro.server import protocol
from repro.sharding.decision import DecisionLog
from repro.sharding.placement import Placement, ShardCatalog, shard_of
from repro.sharding.router import Route, route_statement
from repro.storage import pager as pager_mod

__all__ = ["Coordinator"]

#: How often a blocked coordinator connection polls the shutdown flag.
_POLL_SECONDS = 0.2

#: Bound on a leader-election probe round trip — a shard address that
#: connects but never answers must not stall rediscovery.
_PROBE_TIMEOUT = 2.0

#: An address in any accepted spelling: "host:port", (host, port), or a
#: sequence of those (leader first, then its replicas).
AddressSpec = Any


def _parse_address(spec) -> Tuple[str, int]:
    if isinstance(spec, (tuple, list)):
        host, port = spec
        return str(host), int(port)
    host, _, port = str(spec).rpartition(":")
    if not host:
        raise ShardingError(f"shard address needs HOST:PORT, got {spec!r}")
    return host, int(port)


def _parse_shard(spec: AddressSpec) -> List[Tuple[str, int]]:
    """One shard's address set: leader first, then standby replicas."""
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        return [_parse_address(p) for p in parts]
    if isinstance(spec, (tuple, list)):
        if len(spec) == 2 and isinstance(spec[1], int):
            return [_parse_address(spec)]  # a bare (host, port)
        return [_parse_address(p) for p in spec]
    raise ShardingError(f"unreadable shard address spec {spec!r}")


class _ShardLink:
    """One connection's session with one shard, failover-aware.

    Lazily dialed, re-dialed after drops by the underlying
    :class:`~repro.client.Client`, and re-routed across the shard's
    address set when the current target is fenced — the coordinator's
    reuse of the replication layer's epoch machinery.
    """

    def __init__(self, shard_id: int, addresses: Sequence[Tuple[str, int]],
                 timeout: Optional[float] = None):
        self.shard_id = shard_id
        self.addresses = list(addresses)
        self._current = self.addresses[0]
        self._timeout = timeout
        self._client: Optional[Client] = None

    @property
    def client(self) -> Client:
        if self._client is None or self._client._closed:
            self._client = Client(*self._current, timeout=self._timeout)
        return self._client

    def request(self, payload: Mapping[str, Any]) -> dict:
        """One frame to the shard's current leader.

        A :class:`~repro.core.errors.FencedError` proves the write was
        refused — rediscover the leader among the configured addresses
        and re-send once. Connection loss stays the caller's problem
        (the frame's fate is unknown), exactly as for a direct client.
        """
        try:
            return self.client.request(payload)
        except FencedError:
            if not self.rediscover():
                raise
            return self.client.request(payload)

    def rediscover(self) -> bool:
        """Re-elect the shard leader: writable, highest fencing epoch."""
        best: Optional[Tuple[int, Tuple[str, int]]] = None
        for address in self.addresses:
            try:
                probe = Client(*address, timeout=_PROBE_TIMEOUT)
            except (OSError, HRDMError):
                continue
            try:
                status = probe.status()
            except (OSError, HRDMError):
                continue
            finally:
                probe.close()
            writable = (status.get("role") != "replica"
                        and not status.get("read_only")
                        and not status.get("fenced"))
            epoch = int(status.get("epoch", 0))
            if writable and (best is None or epoch > best[0]):
                best = (epoch, address)
        if best is None:
            return False
        if best[1] != self._current:
            self.close()
            self._current = best[1]
        return True

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __repr__(self) -> str:
        host, port = self._current
        return f"_ShardLink(shard {self.shard_id} at {host}:{port})"


class _CoordWireServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    block_on_close = True

    def __init__(self, address, owner: "Coordinator"):
        super().__init__(address, _CoordConnection)
        self.owner = owner


class _CoordConnection(socketserver.BaseRequestHandler):
    """One client session against the sharded catalog.

    Holds its own per-shard links (a connection is single-threaded on
    both ends, so links need no locking), its open distributed
    transaction (shard id → enrolled link), and its prepared-statement
    cache (id → HRQL source, re-routed per execution)."""

    def setup(self) -> None:
        self.request.settimeout(_POLL_SECONDS)
        self.buffer = bytearray()
        self.owner: "Coordinator" = self.server.owner
        self._links: Dict[int, _ShardLink] = {}
        self._txn: Optional[Dict[int, _ShardLink]] = None
        self._prepared: Dict[int, str] = {}
        self._next_prepared = 0
        self._rr = 0

    def handle(self) -> None:
        owner = self.owner
        while not owner.stopping:
            try:
                request = protocol.recv_frame(
                    self.request, self.buffer,
                    keep_waiting=lambda: not owner.stopping)
            except (protocol.ProtocolError, OSError):
                break
            if request is None:
                break
            try:
                response = self.dispatch(request)
            except HRDMError as exc:
                response = protocol.error_to_wire(exc)
            except Exception as exc:  # never let one request kill the worker
                response = protocol.error_to_wire(exc)
            try:
                protocol.send_frame(self.request, response)
            except protocol.ProtocolError as exc:
                try:
                    protocol.send_frame(self.request,
                                        protocol.error_to_wire(exc))
                except OSError:
                    break
            except OSError:
                break

    def finish(self) -> None:
        if self._txn:
            for link in self._txn.values():
                try:
                    link.request({"op": "rollback"})
                except (HRDMError, OSError):
                    pass  # the worker rolls back with the dead session anyway
        for link in self._links.values():
            link.close()

    def dispatch(self, request: Mapping[str, Any]) -> dict:
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise protocol.ProtocolError(f"unknown op {op!r}")
        return handler(request)

    # -- shard plumbing -----------------------------------------------------

    def _link(self, shard: int) -> _ShardLink:
        link = self._links.get(shard)
        if link is None:
            link = _ShardLink(shard, self.owner.shards[shard],
                              timeout=self.owner.timeout)
            self._links[shard] = link
        return link

    def _any_shard(self) -> int:
        """Round-robin over shards for broadcast-satisfiable reads."""
        shard = self._rr % self.owner.n_shards
        self._rr += 1
        return shard

    def _all_links(self) -> List[_ShardLink]:
        return [self._link(i) for i in range(self.owner.n_shards)]

    # -- session / introspection -------------------------------------------

    def op_hello(self, request: Mapping) -> dict:
        return {
            "ok": True,
            "server": "hrdm",
            "protocol": protocol.PROTOCOL_VERSION,
            "database": self.owner.name,
            "durable": True,
            "role": "coordinator",
            "read_only": False,
            "shards": self.owner.n_shards,
        }

    def op_status(self, request: Mapping) -> dict:
        """Coordinator observability: per-shard position and health.

        Probing a shard doubles as the lazy in-doubt sweep — any
        prepared transaction the shard still holds is decided from the
        decision log on the spot.
        """
        shards = []
        for link in self._all_links():
            host, port = link._current
            row: Dict[str, Any] = {"id": link.shard_id,
                                   "address": f"{host}:{port}"}
            try:
                status = link.request({"op": "status"})
            except (HRDMError, OSError) as exc:
                row.update(ok=False, error=str(exc))
            else:
                row.update(
                    ok=True,
                    generation=status.get("generation"),
                    lsn=status.get("lsn"),
                    epoch=status.get("epoch"),
                    role=status.get("role"),
                    tuples=status.get("tuples"),
                    wal_bytes=status.get("wal_bytes"),
                    in_doubt=status.get("in_doubt", []),
                )
                self.owner.resolve_in_doubt(link, status.get("in_doubt", []))
            shards.append(row)
        return {
            "ok": True,
            "role": "coordinator",
            "database": self.owner.name,
            "read_only": False,
            "fenced": False,
            "n_shards": self.owner.n_shards,
            "relations": {
                name: entry.placement
                for name in self.owner.catalog.names()
                if (entry := self.owner.catalog.get(name)) is not None},
            "shards": shards,
            "replicas": [],
        }

    def op_resolve(self, request: Mapping) -> dict:
        """A participant asks for a transaction's fate (presumed abort)."""
        txn_id = str(request["txn_id"])
        return {"ok": True, "txn_id": txn_id,
                "outcome": self.owner.decisions.resolve(txn_id)}

    def op_relations(self, request: Mapping) -> dict:
        merged: Dict[str, dict] = {}
        order: List[str] = []
        for link in self._all_links():
            for summary in link.request({"op": "relations"})["relations"]:
                name = summary["name"]
                entry = self.owner.catalog.get(name)
                if name not in merged:
                    merged[name] = dict(summary)
                    order.append(name)
                elif entry is None or entry.hashed:
                    merged[name]["n_tuples"] += summary["n_tuples"]
                    merged[name]["lifespan"] = protocol.lifespan_to_wire(
                        protocol.lifespan_from_wire(
                            merged[name]["lifespan"]).union(
                            protocol.lifespan_from_wire(
                                summary["lifespan"])))
        return {"ok": True, "relations": [merged[name] for name in order]}

    def op_relation(self, request: Mapping) -> dict:
        name = request.get("name")
        entry = self.owner.catalog.get(name)
        if entry is None or entry.broadcast:
            return self._link(self._any_shard()).request(
                {"op": "relation", "name": name})
        payload: Optional[dict] = None
        for link in self._all_links():
            part = link.request({"op": "relation", "name": name})
            if payload is None:
                payload = part
            else:
                payload["tuples"].extend(part["tuples"])
        assert payload is not None  # n_shards >= 1
        return payload

    # -- querying -----------------------------------------------------------

    def op_prepare(self, request: Mapping) -> dict:
        source = request.get("q", "")
        statement = parse_hrql(source)  # surface parse errors now
        self._next_prepared += 1
        self._prepared[self._next_prepared] = source
        return {"ok": True, "id": self._next_prepared,
                "params": list(ast.parameters(statement))}

    def op_query(self, request: Mapping) -> dict:
        params = request.get("params") or None
        if "prepared" in request:
            source = self._prepared.get(request["prepared"])
            if source is None:
                raise protocol.ProtocolError(
                    f"no prepared statement #{request['prepared']} "
                    f"on this connection")
        else:
            source = request.get("q", "")
        statement = parse_hrql(source)
        route = route_statement(statement, self.owner.catalog, params)
        frame: Dict[str, Any] = {"op": "query", "q": source}
        if params:
            frame["params"] = dict(params)
        if route.mode == "forward":
            shard = route.shard if route.shard is not None \
                else self._any_shard()
            return self._link(shard).request(frame)
        if route.mode == "fanout":
            return self._fanout(frame, route)
        return self._gather(statement, params)

    def _fanout(self, frame: Mapping[str, Any], route: Route) -> dict:
        """Scatter one per-tuple statement, union the slices."""
        responses = [link.request(dict(frame)) for link in self._all_links()]
        if route.when:
            union = Lifespan.union_all(
                protocol.lifespan_from_wire(r["lifespan"])
                for r in responses)
            return {"ok": True, "kind": "lifespan",
                    "lifespan": protocol.lifespan_to_wire(union)}
        merged = responses[0]
        for part in responses[1:]:
            merged["tuples"].extend(part["tuples"])
        return merged

    def _gather(self, statement: ast.Statement,
                params: Optional[Mapping[str, Any]]) -> dict:
        """Fetch, merge, and run the ordinary planner coordinator-side."""
        from repro.sharding.router import referenced_relations

        env: Dict[str, HistoricalRelation] = {}
        for name in referenced_relations(statement):
            env[name] = self._merged_relation(name)
        compiled = compile_query(statement, params)
        if isinstance(compiled, ExplainQuery):
            return {"ok": True, "kind": "plan",
                    "text": compiled.evaluate(env).text}
        planner = Planner()
        if isinstance(compiled, WhenQuery):
            plan = planner.plan(compiled.child, env, when=True)
        else:
            plan = planner.plan(compiled, env)
        result = QueryResult(plan.execute_stream(env), plan)
        if result.kind == "relation":
            payload = protocol.relation_to_wire(result.relation)
            payload.update(ok=True, kind="relation")
            return payload
        return {"ok": True, "kind": "lifespan",
                "lifespan": protocol.lifespan_to_wire(result.lifespan)}

    def _merged_relation(self, name: str) -> HistoricalRelation:
        entry = self.owner.catalog.get(name)
        if entry is None:
            raise RelationError(f"no relation named {name!r}")
        if entry.broadcast:
            raw = self._link(self._any_shard()).request(
                {"op": "relation", "name": name})
            return protocol.relation_from_wire(raw)
        parts = [link.request({"op": "relation", "name": name})
                 for link in self._all_links()]
        scheme = pager_mod.scheme_from_dict(parts[0]["scheme"])
        return HistoricalRelation(
            scheme,
            (protocol.tuple_from_wire(blob, scheme)
             for part in parts for blob in part["tuples"]))

    # -- mutation routing ---------------------------------------------------

    def _placement_of(self, name: str) -> Placement:
        entry = self.owner.catalog.get(name)
        if entry is None:
            raise RelationError(f"no relation named {name!r}")
        return entry

    def _mutation_shards(self, request: Mapping) -> List[int]:
        """The shards one EXECUTE frame must reach."""
        action = request.get("action")
        if action == "evolve":
            return list(range(self.owner.n_shards))
        entry = self._placement_of(request["relation"])
        if entry.broadcast:
            return list(range(self.owner.n_shards))
        if action == "insert":
            values = protocol.values_from_wire(request["values"])
            try:
                shard_key = [values[a] for a in entry.shard_by]
            except KeyError as exc:
                raise ShardingError(
                    f"insert into hashed relation {entry.name!r} must give "
                    f"its shard key ({', '.join(entry.shard_by)}) as "
                    f"constants; missing {exc.args[0]!r}") from None
        else:
            shard_key = entry.shard_key_of(tuple(request.get("key", ())))
        return [shard_of(shard_key, self.owner.n_shards)]

    def op_execute(self, request: Mapping) -> dict:
        action = request.get("action")
        if action == "create":
            return self._create(request)
        if action == "drop":
            return self._drop(request)
        targets = self._mutation_shards(request)
        if self._txn is not None:
            response: Optional[dict] = None
            for shard in targets:
                link = self._enroll(shard)
                part = link.request(dict(request))
                response = response or part
            return response  # identical tuple frames on every target
        if len(targets) == 1:
            return self._link(targets[0]).request(dict(request))
        # A multi-shard auto-commit mutation (broadcast relation, or a
        # schema evolution): run it as a one-frame distributed
        # transaction so it lands atomically everywhere.
        links = [self._link(shard) for shard in targets]
        begun: List[_ShardLink] = []
        response = None
        try:
            for link in links:
                link.request({"op": "begin"})
                begun.append(link)
            for link in links:
                part = link.request(dict(request))
                response = response or part
        except BaseException:
            for link in begun:
                try:
                    link.request({"op": "rollback"})
                except (HRDMError, OSError):
                    pass
            raise
        self._commit_participants({link.shard_id: link for link in links})
        return response

    # -- DDL ----------------------------------------------------------------

    def _create(self, request: Mapping) -> dict:
        if self._txn is not None:
            raise TransactionError(
                "CREATE is not transactional: finish the open "
                "transaction first")
        scheme_dict = request["scheme"]
        scheme = pager_mod.scheme_from_dict(scheme_dict)
        options = dict(request.get("options") or {})
        placement_name = options.pop("placement", None) or (
            "broadcast" if scheme.name in self.owner.default_broadcast
            else "hashed")
        shard_by = list(options.pop("shard_by", None) or scheme.key)
        storage = request.get("storage", "memory")
        entry = Placement(scheme.name, placement_name, list(scheme.key),
                          shard_by, scheme_dict, storage)
        blobs = list(request.get("tuples", ()))
        if entry.broadcast:
            parts = {i: blobs for i in range(self.owner.n_shards)}
        else:
            parts = {i: [] for i in range(self.owner.n_shards)}
            for blob in blobs:
                t = protocol.tuple_from_wire(blob, scheme)
                shard_key = entry.shard_key_of(t.key_value())
                parts[shard_of(shard_key, self.owner.n_shards)].append(blob)
        created: List[_ShardLink] = []
        try:
            for link in self._all_links():
                link.request({
                    "op": "execute", "action": "create",
                    "scheme": scheme_dict,
                    "tuples": parts[link.shard_id],
                    "storage": storage, "options": options,
                })
                created.append(link)
        except BaseException:
            for link in created:  # best-effort compensation
                try:
                    link.request({"op": "execute", "action": "drop",
                                  "relation": scheme.name})
                except (HRDMError, OSError):
                    pass
            raise
        self.owner.catalog.add(entry)
        return {"ok": True, "placement": entry.placement,
                "shard_by": list(entry.shard_by)}

    def _drop(self, request: Mapping) -> dict:
        if self._txn is not None:
            raise TransactionError(
                "DROP is not transactional: finish the open "
                "transaction first")
        name = request["relation"]
        for link in self._all_links():
            link.request({"op": "execute", "action": "drop",
                          "relation": name})
        self.owner.catalog.remove(name)
        return {"ok": True}

    # -- distributed transactions ------------------------------------------

    def op_begin(self, request: Mapping) -> dict:
        if self._txn is not None:
            raise TransactionError(
                "a transaction is already active on this connection")
        self._txn = {}
        return {"ok": True}

    def _enroll(self, shard: int) -> _ShardLink:
        assert self._txn is not None
        link = self._txn.get(shard)
        if link is None:
            link = self._link(shard)
            link.request({"op": "begin"})
            self._txn[shard] = link
        return link

    def op_commit(self, request: Mapping) -> dict:
        if self._txn is None:
            raise TransactionError(
                "no transaction is active on this connection (send BEGIN)")
        participants, self._txn = self._txn, None
        if not participants:
            return {"ok": True}
        return self._commit_participants(participants)

    def op_rollback(self, request: Mapping) -> dict:
        if self._txn is None:
            raise TransactionError(
                "no transaction is active on this connection (send BEGIN)")
        participants, self._txn = self._txn, None
        for link in participants.values():
            link.request({"op": "rollback"})
        return {"ok": True}

    def _commit_participants(self, participants: Dict[int, _ShardLink]
                             ) -> dict:
        """Commit one distributed write-set: 1PC fast path, else 2PC."""
        ordered = [participants[shard] for shard in sorted(participants)]
        if len(ordered) == 1:
            return ordered[0].request({"op": "commit"})
        txn_id = self.owner.new_txn_id()
        prepared: List[_ShardLink] = []
        for index, link in enumerate(ordered):
            try:
                link.request({"op": "txn_prepare", "txn_id": txn_id})
            except BaseException:
                # No yes-vote from this participant: the transaction
                # aborts. Prepared participants get an explicit abort
                # decision; un-prepared ones still hold plain open
                # transactions and just roll back. A participant whose
                # vote was *lost* (connection dropped mid-prepare) may
                # hold an in-doubt prepare — presumed abort resolves it,
                # since no commit decision will ever be logged.
                for peer in prepared:
                    try:
                        peer.request({"op": "txn_decide",
                                      "txn_id": txn_id, "commit": False})
                    except (HRDMError, OSError):
                        pass
                for peer in ordered[index + 1:]:
                    try:
                        peer.request({"op": "rollback"})
                    except (HRDMError, OSError):
                        pass
                raise
            prepared.append(link)
        # Every participant voted yes and holds a force-synced PREPARE:
        # the fsynced decision-log entry is the commit point.
        self.owner.decisions.record(txn_id, "commit")
        for link in ordered:
            try:
                link.request({"op": "txn_decide",
                              "txn_id": txn_id, "commit": True})
            except (HRDMError, OSError):
                # The decision is durable; this participant resolves on
                # its next STATUS sweep or its own RESOLVE poll.
                pass
        return {"ok": True, "txn_id": txn_id,
                "participants": sorted(participants)}

    # -- durability ---------------------------------------------------------

    def op_checkpoint(self, request: Mapping) -> dict:
        generations = [link.request({"op": "checkpoint"})["generation"]
                       for link in self._all_links()]
        return {"ok": True, "generation": max(generations),
                "generations": generations}

    def op_flush(self, request: Mapping) -> dict:
        for link in self._all_links():
            link.request({"op": "flush"})
        return {"ok": True}


class Coordinator:
    """Serve a sharded catalog: route, scatter-gather, and 2PC.

    *path* is the coordinator's own durable directory (shard catalog +
    decision log). *shards* is one address spec per shard — a
    ``"host:port"`` string, a ``(host, port)`` pair, or a
    comma-separated / sequence form listing the shard leader first and
    its standby replicas after it. *broadcast* names relations that
    default to broadcast placement when created without an explicit
    ``placement=`` option (the usual way a workload marks its dimension
    relations).

    >>> coord = Coordinator("/tmp/coord", ["127.0.0.1:7801",
    ...                                    "127.0.0.1:7802"])   # doctest: +SKIP
    """

    def __init__(self, path: str, shards: Sequence[AddressSpec], *,
                 name: str = "sharded", host: str = "127.0.0.1",
                 port: int = 0, broadcast: Sequence[str] = (),
                 timeout: Optional[float] = None):
        if not shards:
            raise ShardingError("a coordinator needs at least one shard")
        os.makedirs(path, exist_ok=True)
        self.path = path
        self.name = name
        self.shards: List[List[Tuple[str, int]]] = [
            _parse_shard(spec) for spec in shards]
        self.n_shards = len(self.shards)
        self.default_broadcast = frozenset(broadcast)
        self.timeout = timeout
        self.catalog = ShardCatalog(os.path.join(path, "catalog.json"),
                                    self.n_shards)
        self.decisions = DecisionLog(os.path.join(path, "decisions.log"))
        self.stopping = False
        self._txn_lock = threading.Lock()
        self._txn_seq = 0
        self._server = _CoordWireServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    def new_txn_id(self) -> str:
        """A globally unique transaction id.

        Uniqueness across coordinator restarts matters: presumed abort
        reads *absence* from the decision log as abort, so an id must
        never be reused for a different transaction.
        """
        with self._txn_lock:
            self._txn_seq += 1
            return f"txn-{uuid.uuid4().hex[:12]}-{self._txn_seq}"

    def resolve_in_doubt(self, link: _ShardLink,
                         in_doubt: Sequence[str]) -> None:
        """Decide a participant's lingering prepares from the log."""
        for txn_id in in_doubt:
            outcome = self.decisions.resolve(txn_id)
            try:
                link.request({"op": "txn_decide", "txn_id": txn_id,
                              "commit": outcome == "commit"})
            except (HRDMError, OSError):
                pass  # still durable; a later sweep gets another shot

    def recover_shards(self) -> None:
        """One startup sweep: resolve every reachable shard's in-doubt
        transactions against the decision log.

        Covers the coordinator-crashed-mid-decide window. Unreachable
        shards are skipped — they resolve on their next STATUS probe or
        through their own RESOLVE poll."""
        for shard in range(self.n_shards):
            link = _ShardLink(shard, self.shards[shard],
                              timeout=_PROBE_TIMEOUT)
            try:
                status = link.request({"op": "status"})
            except (HRDMError, OSError):
                continue
            else:
                self.resolve_in_doubt(link, status.get("in_doubt", []))
            finally:
                link.close()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> None:
        """Accept loop on a daemon thread + one in-doubt recovery sweep."""
        if self._thread is not None:
            raise ShardingError("the coordinator is already running")
        self.recover_shards()
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"hrdm-coordinator:{self.address[1]}", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Accept loop on the calling thread (the CLI mode)."""
        self.recover_shards()
        self._serving = True
        self._server.serve_forever()

    def stop(self) -> None:
        self.stopping = True
        if self._serving:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._serving = False
        self.decisions.close()

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        host, port = self.address
        return (f"Coordinator({self.name!r} on {host}:{port}, "
                f"{self.n_shards} shard(s))")
