"""The coordinator's commit decision log — 2PC's source of truth.

Presumed abort, straight from the textbook: the **only** durable fact
a two-phase commit needs is "this transaction committed". The
coordinator force-syncs one COMMIT entry here *after* every
participant voted yes and *before* any participant learns the
decision; everything else is derivable:

* an entry present  → the transaction committed — any participant
  still holding a prepared write-set must apply it;
* no entry          → the transaction aborted — either the coordinator
  never reached a decision (crash between the votes and the log) or it
  decided abort, and in both cases no participant can have applied
  anything, so rolling the prepare back is safe.

That asymmetry is why aborts are never logged: :meth:`resolve` answers
``"abort"`` for any transaction id it has no entry for.

The file format mirrors the WAL's framing discipline
(:mod:`repro.storage.wal`): ``length u32 | crc32 u32 | payload``, one
JSON payload per decision, fsynced before :meth:`record` returns. A
torn tail (the coordinator died mid-append) fails its checksum and is
truncated on reopen — exactly like a torn WAL record, it is a decision
that never happened, and presumed abort gives it the right meaning.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Dict

from repro.core.errors import ShardingError

__all__ = ["DecisionLog"]

_FRAME = struct.Struct(">II")  # payload length, crc32(payload)


class DecisionLog:
    """Append-only, checksummed, fsync-per-decision commit log."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._decided: Dict[str, str] = {}
        self._recover()
        # Append mode: recovery may have truncated a torn tail already.
        self._fh = open(self.path, "ab")

    def _recover(self) -> None:
        """Load every intact decision; truncate a torn tail in place."""
        if not os.path.exists(self.path):
            with open(self.path, "wb"):
                pass
            return
        valid_end = 0
        with open(self.path, "rb") as fh:
            data = fh.read()
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            payload = data[start:start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn tail: a decision that never happened
            try:
                entry = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            self._decided[str(entry["txn"])] = str(entry["outcome"])
            offset = start + length
            valid_end = offset
        if valid_end < len(data):
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)

    def record(self, txn_id: str, outcome: str = "commit") -> None:
        """Durably log *outcome* for *txn_id*; fsynced before return.

        This is the transaction's commit point: once this returns, the
        decision survives any crash, and participants may be told.
        Only ``"commit"`` entries matter for recovery (presumed abort),
        but an explicit abort may be recorded too — it makes the
        operator-facing log complete without changing :meth:`resolve`'s
        answer.
        """
        if outcome not in ("commit", "abort"):
            raise ShardingError(f"unknown decision outcome {outcome!r}")
        payload = json.dumps({"txn": txn_id, "outcome": outcome},
                             separators=(",", ":")).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            self._fh.write(frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._decided[txn_id] = outcome

    def resolve(self, txn_id: str) -> str:
        """The fate of *txn_id*: ``"commit"`` iff it was logged so.

        An unknown transaction is an abort — the presumed-abort rule
        that lets the log stay commit-only.
        """
        with self._lock:
            return self._decided.get(txn_id, "abort")

    def decided(self) -> Dict[str, str]:
        """A snapshot of every explicitly recorded decision."""
        with self._lock:
            return dict(self._decided)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __repr__(self) -> str:
        return f"DecisionLog({len(self.decided())} decision(s))"
