"""Statement routing — how one HRQL query maps onto N shards.

The coordinator classifies every statement into one of three
execution strategies, cheapest first:

1. **forward** — the statement touches no hashed relation (all
   broadcast: every shard holds a full copy), or every hashed tuple it
   can mention lives on one *pinned* shard because the statement's
   predicate fixes the whole shard key by equality. One shard computes
   the whole answer; the coordinator relays frames verbatim.
2. **fanout** — the statement is a per-tuple pipeline (selection,
   time-slice, rename) over exactly one hashed relation. Each shard
   answers for its slice and the coordinator takes the union: hashed
   slices are key-disjoint, and per-tuple operators neither merge nor
   compare tuples across the relation, so the union of the parts *is*
   the answer on the whole. A top-level ``WHEN`` fans out the same way
   and unions the per-shard lifespans.
3. **gather** — everything else (projections, joins, set operations,
   multi-relation statements). The coordinator fetches each hashed
   relation from every shard, merges the slices into full relations,
   reads broadcast relations from any one shard, and runs the ordinary
   planner (:mod:`repro.planner`) over the merged environment — the
   same pipeline-breaker operators that serve the embedded engine do
   the cross-shard sort/aggregate work.

Shard-key **pinning** is deliberately conservative: only top-level
conjunctive equality comparisons against literals (or bound
parameters) count, and a ``RENAME`` anywhere in the chain disables it
(the renamed attribute may alias a shard-key attribute). Anything the
pin analysis cannot prove falls back to fanout — correct, just wider.
Soundness rests on shard keys being *constant* key attributes: a tuple
satisfying ``K = v`` under any quantifier or ``DURING`` window has
``K = v`` over its whole lifespan, so every qualifying tuple lives on
``shard_of([v, ...])`` and the other shards would only contribute
empty slices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.query import ast_nodes as ast
from repro.sharding.placement import ShardCatalog, shard_of

__all__ = ["Route", "route_statement", "referenced_relations"]


@dataclass(frozen=True)
class Route:
    """One statement's execution strategy.

    ``mode`` is ``"forward"`` / ``"fanout"`` / ``"gather"``. For
    forward, ``shard`` pins the one shard that can answer — or is None
    when *any* shard can (broadcast-only statements). For fanout,
    ``when`` marks a top-level ``WHEN`` whose per-shard lifespans are
    unioned instead of tuple lists.
    """

    mode: str
    shard: Optional[int] = None
    when: bool = False


def referenced_relations(node: object) -> Tuple[str, ...]:
    """Every base relation the statement mentions, in first-use order."""
    found: List[str] = []

    def visit(value: object) -> None:
        if isinstance(value, ast.RelationRef):
            if value.name not in found:
                found.append(value.name)
        elif isinstance(value, tuple):
            for item in value:
                visit(item)
        elif hasattr(value, "__dataclass_fields__"):
            for field in value.__dataclass_fields__:
                visit(getattr(value, field))

    visit(node)
    return tuple(found)


#: Per-tuple operators: they filter or transform tuples one at a time,
#: never merging or comparing across the relation — the property that
#: makes union-of-slices equal the whole.
_PER_TUPLE = (ast.SelectNode, ast.TimeSliceNode, ast.DynamicTimeSliceNode,
              ast.RenameNode)


def _chain_target(node: ast.QueryNode) -> Optional[str]:
    """The single base relation under a pure per-tuple chain, else None."""
    while True:
        if isinstance(node, ast.RelationRef):
            return node.name
        if isinstance(node, _PER_TUPLE):
            node = node.child
            continue
        return None


def _conjunctive_equalities(predicate: ast.PredicateNode,
                            params: Optional[Mapping[str, Any]],
                            out: Dict[str, Any]) -> None:
    """Collect ``ATTR = literal`` bindings provable at the top level.

    Only descends through AND — an equality under OR or NOT does not
    constrain every qualifying tuple. First binding per attribute wins
    (a contradictory second one would just produce an empty pinned
    answer, which is still correct).
    """
    if isinstance(predicate, ast.Comparison):
        if predicate.theta != "=" or predicate.rhs_is_attribute:
            return
        rhs = predicate.rhs
        if isinstance(rhs, ast.Parameter):
            if not params or rhs.name not in params:
                return
            rhs = params[rhs.name]
        out.setdefault(predicate.attribute, rhs)
    elif isinstance(predicate, ast.BoolOp) and predicate.op == "and":
        for part in predicate.parts:
            _conjunctive_equalities(part, params, out)


def _pin(node: ast.QueryNode, placement, params: Optional[Mapping[str, Any]],
         n_shards: int) -> Optional[int]:
    """The one shard the chain's answer can live on, else None."""
    bindings: Dict[str, Any] = {}
    probe = node
    while not isinstance(probe, ast.RelationRef):
        if isinstance(probe, ast.RenameNode):
            return None  # a rename may alias a shard-key attribute
        if isinstance(probe, ast.SelectNode):
            _conjunctive_equalities(probe.predicate, params, bindings)
        probe = probe.child
    try:
        values = [bindings[a] for a in placement.shard_by]
    except KeyError:
        return None  # the predicate does not fix the whole shard key
    try:
        return shard_of(values, n_shards)
    except Exception:
        return None  # unhashable binding (e.g. attribute-typed): fan out


def route_statement(statement: ast.Statement, catalog: ShardCatalog,
                    params: Optional[Mapping[str, Any]] = None) -> Route:
    """Classify *statement* against the shard *catalog*."""
    if isinstance(statement, ast.ExplainNode):
        # EXPLAIN [ANALYZE] is answered by the coordinator's own
        # planner over the merged environment, so the plan it shows is
        # the plan that would actually run cross-shard.
        return Route("gather")
    when = isinstance(statement, ast.WhenNode)
    refs = referenced_relations(statement)
    hashed = [name for name in refs
              if (entry := catalog.get(name)) is not None and entry.hashed]
    unknown = [name for name in refs if catalog.get(name) is None]
    if unknown:
        # Let one shard raise the canonical RelationError (or answer,
        # if the coordinator's catalog is simply behind a direct DDL).
        return Route("gather")
    if not hashed:
        return Route("forward", shard=None, when=when)
    if len(hashed) == 1:
        inner = statement.child if when else statement
        target = _chain_target(inner)
        if target == hashed[0]:
            placement = catalog.get(target)
            shard = _pin(inner, placement, params, catalog.n_shards)
            if shard is not None:
                return Route("forward", shard=shard, when=when)
            return Route("fanout", when=when)
    return Route("gather")
