"""A shard worker — one ordinary database server holding one slice.

A worker is deliberately boring: it wraps a durable
:class:`~repro.database.HistoricalDatabase` in the stock
:class:`~repro.server.DatabaseServer` and adds only two shard-specific
behaviours:

* **status decoration** — every STATUS frame carries ``shard`` (this
  worker's id), ``tuples`` (committed tuple count across its
  relations), and ``wal_bytes`` (its WAL size), which is what the
  coordinator's STATUS aggregation and the shell's ``\\shards`` table
  render;
* **in-doubt resolution polling** — a worker that recovers PREPARE
  records without decisions (it crashed, or the coordinator's decide
  never arrived) asks the coordinator's RESOLVE op for each lingering
  transaction's fate and applies the answer locally. Presumed abort
  makes the poll safe to repeat: the answer for a given transaction id
  never changes once the coordinator logged (or durably failed to log)
  the commit decision.

The coordinator also pushes decisions — at its own startup sweep and
on every STATUS probe — so the poll here is a belt-and-braces path for
topologies where the coordinator is briefly unreachable or restarted
with a different address.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Tuple

from repro.client import Client
from repro.core.errors import HRDMError
from repro.database import HistoricalDatabase
from repro.server import DatabaseServer

__all__ = ["ShardWorker"]

#: Seconds between in-doubt resolution polls while any prepare lingers.
_RESOLVE_INTERVAL = 1.0


class ShardWorker:
    """One shard: a durable database served over the stock wire protocol."""

    def __init__(self, path: str, *, shard_id: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 coordinator: Optional[Tuple[str, int]] = None,
                 sync: str = "batch", wal_batch_size: int = 64):
        self.shard_id = shard_id
        self.coordinator = coordinator
        self.db = HistoricalDatabase(path=path, sync=sync,
                                     wal_batch_size=wal_batch_size)
        self.server = DatabaseServer(self.db, host, port,
                                     status_extra=self._status_extra)
        self._stop = threading.Event()
        self._resolver: Optional[threading.Thread] = None

    def _status_extra(self) -> dict:
        manager = self.db._durability
        try:
            wal_bytes = (os.path.getsize(manager.wal.path)
                         if manager is not None else 0)
        except OSError:
            wal_bytes = 0
        return {
            "shard": self.shard_id,
            "tuples": sum(len(r) for r in self.db.relations().values()),
            "wal_bytes": wal_bytes,
        }

    # -- in-doubt resolution ------------------------------------------------

    def resolve_in_doubt(self) -> int:
        """One resolution pass: ask the coordinator about every lingering
        prepare and apply the answers. Returns how many were resolved."""
        if self.coordinator is None:
            return 0
        pending = self.db.in_doubt_transactions()
        if not pending:
            return 0
        resolved = 0
        try:
            with Client(*self.coordinator, timeout=5.0) as client:
                for txn_id in pending:
                    answer = client.request({"op": "resolve",
                                             "txn_id": txn_id})
                    self.db.resolve_prepared(
                        txn_id, answer.get("outcome") == "commit")
                    resolved += 1
        except (HRDMError, OSError):
            pass  # coordinator unreachable (or raced us); try again later
        return resolved

    def _resolve_loop(self) -> None:
        while not self._stop.wait(_RESOLVE_INTERVAL):
            try:
                if not self.db.in_doubt_transactions():
                    continue
                self.resolve_in_doubt()
            except Exception:
                continue  # the poll must outlive any transient failure

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def start(self) -> None:
        self.server.start()
        self._start_resolver()

    def serve_forever(self) -> None:
        self._start_resolver()
        self.server.serve_forever()

    def _start_resolver(self) -> None:
        if self.coordinator is not None and self._resolver is None:
            self._resolver = threading.Thread(
                target=self._resolve_loop,
                name=f"hrdm-shard{self.shard_id}-resolver", daemon=True)
            self._resolver.start()

    def stop(self) -> None:
        self._stop.set()
        if self._resolver is not None:
            self._resolver.join()
            self._resolver = None
        self.server.stop()
        self.db.close()

    def __enter__(self) -> "ShardWorker":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        host, port = self.address
        return f"ShardWorker(shard {self.shard_id} on {host}:{port})"
