"""Hash-sharded write scaling for the HRDM reproduction.

A sharded deployment is N ordinary shard **workers** — each a full
:class:`~repro.server.DatabaseServer` over its own durable directory —
behind one **coordinator** that speaks the same wire protocol to
clients, so :func:`repro.client.connect` and the HRQL shell need no
new vocabulary to talk to it:

* **placement** (:mod:`repro.sharding.placement`) — per-relation,
  durable: ``hashed`` tuples live on ``shard_of(shard_key) % N``
  (the shard key is a subset of the constant key attributes, default
  the whole key); ``broadcast`` relations are fully copied to every
  shard so foreign keys sweep locally and dimension joins push down;
* **routing** (:mod:`repro.sharding.router`) — each statement is
  forwarded to one shard (pinned by conjunctive shard-key equality, or
  any shard for broadcast-only reads), fanned out and unioned
  (per-tuple pipelines over one hashed relation), or gathered —
  slices merged coordinator-side and the ordinary planner's
  pipeline-breaker operators do the cross-shard sort/aggregate work;
* **two-phase commit** (:mod:`repro.sharding.decision`,
  :mod:`repro.sharding.coordinator`) — a transaction touching one
  shard commits one-phase; across shards every participant force-syncs
  a PREPARE record into its own WAL before voting, the coordinator
  fsyncs the commit decision into its presumed-abort decision log, and
  in-doubt participants resolve from that log after any crash;
* **failover** — a shard may list replica addresses; the coordinator
  answers :class:`~repro.core.errors.FencedError` by re-electing the
  writable server with the highest fencing epoch, reusing the
  replication layer's epoch machinery end to end.

Run it from the command line (one coordinator, N workers)::

    python -m repro.sharding worker  /data/shard0 --port 7801 --shard-id 0
    python -m repro.sharding worker  /data/shard1 --port 7802 --shard-id 1
    python -m repro.sharding coordinator /data/coord \\
        --shard 127.0.0.1:7801 --shard 127.0.0.1:7802 --port 7800

or in-process::

    >>> from repro.sharding import Coordinator, ShardWorker   # doctest: +SKIP
    >>> workers = [ShardWorker(f"/data/shard{i}", shard_id=i)
    ...            for i in range(2)]                         # doctest: +SKIP
"""

from repro.sharding.coordinator import Coordinator
from repro.sharding.decision import DecisionLog
from repro.sharding.placement import Placement, ShardCatalog, shard_of
from repro.sharding.router import Route, referenced_relations, route_statement
from repro.sharding.worker import ShardWorker

__all__ = [
    "Coordinator",
    "DecisionLog",
    "Placement",
    "Route",
    "ShardCatalog",
    "ShardWorker",
    "referenced_relations",
    "route_statement",
    "shard_of",
]
