"""Run a sharded HRDM deployment: ``python -m repro.sharding``.

Usage::

    python -m repro.sharding worker PATH [--host H] [--port P]
                                         [--shard-id N]
                                         [--coordinator HOST:PORT]
                                         [--sync always|batch|never]
                                         [--wal-batch-size N]
    python -m repro.sharding coordinator PATH
                                         --shard HOST:PORT[,REPLICA...]
                                         [--shard ...]
                                         [--host H] [--port P]
                                         [--broadcast NAME ...]
                                         [--name NAME]

Start the workers first (each over its own durable directory), then
the coordinator with one ``--shard`` per worker — the shard list's
*order* defines shard ids, and reopening an existing coordinator
directory with a different shard count is refused (the durable catalog
pins it). Each ``--shard`` may list failover replicas after the leader,
comma-separated. Both subcommands print one ``listening on HOST:PORT``
line once they accept connections (drivers parse the real port from it
under ``--port 0``) and shut down gracefully on SIGINT / SIGTERM.

Clients connect to the coordinator exactly as to a plain server::

    python -m repro.query --connect HOST:PORT
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.errors import HRDMError
from repro.storage.wal import SYNC_POLICIES


def _parse_hostport(raw: str) -> tuple[str, int]:
    host, _, port = raw.rpartition(":")
    if not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {raw!r}")
    return host, int(port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding",
        description="Run a shard worker or the shard coordinator.")
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser(
        "worker", help="serve one shard (a durable database directory)")
    worker.add_argument("path",
                        help="this shard's durable directory "
                             "(created if missing)")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (default: ephemeral)")
    worker.add_argument("--shard-id", type=int, default=0,
                        help="this shard's id (its index in the "
                             "coordinator's --shard list)")
    worker.add_argument("--coordinator", type=_parse_hostport, default=None,
                        metavar="HOST:PORT",
                        help="coordinator address to poll for in-doubt "
                             "2PC resolution")
    worker.add_argument("--sync", default="batch", choices=SYNC_POLICIES,
                        help="WAL fsync policy")
    worker.add_argument("--wal-batch-size", type=int, default=64,
                        help="group-commit window under --sync batch")

    coord = sub.add_parser(
        "coordinator", help="route clients across the shard workers")
    coord.add_argument("path",
                       help="coordinator directory for the shard catalog "
                            "and 2PC decision log (created if missing)")
    coord.add_argument("--shard", action="append", default=[],
                       metavar="HOST:PORT[,REPLICA...]",
                       help="one shard's address set, leader first; "
                            "repeat per shard — order defines shard ids")
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=7700,
                       help="TCP port (0 binds an ephemeral port)")
    coord.add_argument("--broadcast", action="append", default=[],
                       metavar="RELATION",
                       help="relation created without an explicit "
                            "placement that should default to broadcast")
    coord.add_argument("--name", default="sharded",
                       help="catalog name reported to clients")
    args = parser.parse_args(argv)

    def shut_down(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, shut_down)
    signal.signal(signal.SIGTERM, shut_down)

    if args.command == "worker":
        from repro.sharding.worker import ShardWorker

        try:
            node = ShardWorker(args.path, shard_id=args.shard_id,
                               host=args.host, port=args.port,
                               coordinator=args.coordinator,
                               sync=args.sync,
                               wal_batch_size=args.wal_batch_size)
        except HRDMError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        host, port = node.address
        print(f"shard {node.shard_id} serving {args.path!r} — "
              f"listening on {host}:{port}", flush=True)
        try:
            node.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            node.stop()
            print("shard worker stopped", flush=True)
        return 0

    if not args.shard:
        coord.error("give at least one --shard HOST:PORT")
    from repro.sharding.coordinator import Coordinator

    try:
        node = Coordinator(args.path, args.shard, name=args.name,
                           host=args.host, port=args.port,
                           broadcast=args.broadcast)
    except HRDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = node.address
    print(f"coordinating {node.n_shards} shard(s) as {node.name!r} — "
          f"listening on {host}:{port}", flush=True)
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        node.stop()
        print("coordinator stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
