"""Plain-text rendering of historical relations.

The paper communicates its model through timeline diagrams (Figures 2–8,
11): boxes spanning the periods during which tuples and attribute values
exist. This module renders the same pictures from live data:

* :func:`timeline` — one lifespan as a ``──███──███──`` strip;
* :func:`relation_timelines` — Figure 4-style per-tuple strips;
* :func:`value_matrix` — Figure 7/8-style tuple × attribute matrix of
  value lifespans;
* :func:`relation_table` — a tabular dump with one row per maximal
  constant segment, the common way to eyeball a historical relation.

Everything returns strings (no terminal dependencies), so the renderers
are usable in doctests, logs, and notebooks alike.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.tuples import HistoricalTuple

#: Glyphs for timeline strips.
FULL, EMPTY = "█", "·"


def _window_of(relation_or_lifespans: Iterable[Lifespan],
               window: Optional[tuple[int, int]]) -> tuple[int, int]:
    if window is not None:
        return window
    spans = [ls for ls in relation_or_lifespans if not ls.is_empty]
    if not spans:
        return (0, 0)
    return (min(ls.start for ls in spans), max(ls.end for ls in spans))


def timeline(lifespan: Lifespan, window: Optional[tuple[int, int]] = None,
             width: int = 60) -> str:
    """Render one lifespan as a fixed-width strip.

    >>> timeline(Lifespan((0, 3), (8, 9)), window=(0, 9), width=10)
    '████····██'
    """
    lo, hi = _window_of([lifespan], window)
    span = hi - lo + 1
    if span <= 0:
        return EMPTY * width
    cells = []
    for i in range(width):
        # Each cell covers chronons [c_lo, c_hi] of the window.
        c_lo = lo + (i * span) // width
        c_hi = lo + ((i + 1) * span - 1) // width
        covered = lifespan.overlaps(Lifespan.interval(c_lo, min(c_hi, hi)))
        cells.append(FULL if covered else EMPTY)
    return "".join(cells)


def relation_timelines(relation: HistoricalRelation,
                       window: Optional[tuple[int, int]] = None,
                       width: int = 60) -> str:
    """Figure 4-style per-tuple lifespan strips with a time axis."""
    lifespans = [t.lifespan for t in relation]
    lo, hi = _window_of(lifespans, window)
    label_width = max((len(_key_label(t)) for t in relation), default=4)
    lines = [f"{'time'.ljust(label_width)}  {lo} .. {hi}"]
    for t in relation:
        strip = timeline(t.lifespan, (lo, hi), width)
        lines.append(f"{_key_label(t).ljust(label_width)}  {strip}")
    return "\n".join(lines)


def value_matrix(t: HistoricalTuple, window: Optional[tuple[int, int]] = None,
                 width: int = 40) -> str:
    """Figure 7/8-style matrix: one strip per attribute's value lifespan."""
    lifespans = [t.lifespan] + [t.value(a).domain for a in t.scheme.attributes]
    lo, hi = _window_of(lifespans, window)
    label_width = max(len("(tuple)"),
                      max(len(a) for a in t.scheme.attributes))
    lines = [f"{_key_label(t)}: window {lo} .. {hi}"]
    lines.append(f"{'(tuple)'.ljust(label_width)}  {timeline(t.lifespan, (lo, hi), width)}")
    for a in t.scheme.attributes:
        strip = timeline(t.value(a).domain, (lo, hi), width)
        lines.append(f"{a.ljust(label_width)}  {strip}")
    return "\n".join(lines)


def relation_table(relation: HistoricalRelation,
                   attributes: Optional[Sequence[str]] = None) -> str:
    """A tabular dump: one row per (tuple, maximal constant period).

    Rows show the period during which *all* displayed attributes were
    simultaneously constant — the representation a tuple-timestamped
    system would store, which makes it a familiar reading aid.
    """
    attrs = list(attributes or relation.scheme.attributes)
    headers = ["FROM", "TO", *attrs]
    rows: list[list[str]] = []
    for t in relation:
        for lo, hi in _constancy_periods(t, attrs):
            row = [str(lo), str(hi)]
            for a in attrs:
                value = t.value(a).get(lo, "—")
                row.append(str(value))
            rows.append(row)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _constancy_periods(t: HistoricalTuple, attrs: Sequence[str]):
    """Maximal intervals of t.l where every listed attribute is constant."""
    boundaries: set[int] = set()
    for lo, hi in t.lifespan.intervals:
        boundaries.add(lo)
        boundaries.add(hi + 1)
    for a in attrs:
        for (lo, hi), _ in t.value(a).items():
            boundaries.add(lo)
            boundaries.add(hi + 1)
    cuts = sorted(boundaries)
    for i in range(len(cuts) - 1):
        lo, hi = cuts[i], cuts[i + 1] - 1
        if lo in t.lifespan:
            yield lo, hi


def _key_label(t: HistoricalTuple) -> str:
    return ",".join(str(v) for v in t.key_value())
