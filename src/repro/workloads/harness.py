"""The evaluation harness: run any scenario, measure it, verify it.

YCSB-shaped driver over the workload foundry
(:mod:`repro.workloads.scenarios`): each persona gets its own session
and replays its scripted op mix either **closed-loop** (next op as
soon as the last returns) or **open-loop** (ops dispatched on a fixed
arrival schedule, so latency includes queueing delay — the
coordinated-omission-free number). The same driver runs a scenario

* *embedded* — persona threads share one
  :class:`~repro.database.HistoricalDatabase` (memory or disk
  backend), or
* *server* — the database is served by
  :class:`repro.server.DatabaseServer` and every persona connects its
  own :func:`repro.client.connect` session, so ops cross the wire.

Every run is checked, not just timed: mutations report to the
snapshot-isolation :class:`~repro.workloads.oracle.HistoryOracle`
(begin/commit/abort, plus periodic key-cut observations from each
persona), and the final catalog must pass the scenario's semantic
invariants (:mod:`repro.workloads.invariants`). A run that breaks
either raises — benchmark numbers from an incorrect run never exist.

:func:`replay` is the deterministic little sibling: a single-session,
sequential replay of all persona scripts that returns query-result and
catalog digests, which is what the memory/disk/server differential
twin tests compare.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import faults as faults_mod
from repro.core.errors import ConflictError, HRDMError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.database import HistoricalDatabase
from repro.database.evolution import drop_attribute, readd_attribute
from repro.workloads.chaos import ChaosPlan
from repro.workloads.oracle import HistoryOracle
from repro.workloads.personas import (BurstOp, EvolveOp, Knobs, MutationOp,
                                      QueryOp, fingerprint)
from repro.workloads.scenarios import Scenario, get_scenario

__all__ = ["PersonaStats", "RunResult", "run_scenario", "replay",
           "catalog_digest", "result_digest"]

#: Generous join bound — a deadlocked persona fails the run, never hangs it.
JOIN_TIMEOUT = 180.0
#: A persona reports an oracle key-cut observation every N ops.
OBSERVE_EVERY = 8
#: Commit attempts for a bulk-loader burst before giving up.
BURST_ATTEMPTS = 10
#: How long a chaos-run persona rides out retryable infrastructure
#: errors (the fenced window between a primary kill and the promotion)
#: before giving up and failing the run.
RETRY_DEADLINE = 30.0


# ---------------------------------------------------------------------------
# Op interpretation — one declarative Op against one session (a
# HistoricalDatabase, a network Client, or an open Transaction).
# ---------------------------------------------------------------------------

def _fetch_relation(session, rel: str) -> HistoricalRelation:
    """The named relation as a HistoricalRelation, whatever the backend
    (disk catalogs hand back StoredRelation pages)."""
    relation = session.relation(rel)
    if not hasattr(relation, "tuples"):
        relation = relation.to_relation()
    return relation


def _scheme_of(session, relation: str):
    getter = getattr(session, "scheme", None)
    if getter is not None:
        return getter(relation)
    return session.relation(relation).scheme  # network client


def _apply_mutation(target, op: MutationOp) -> None:
    values = dict(op.values)
    if op.op == "insert":
        target.insert(op.relation, op.lifespan, values)
    elif op.op == "update":
        target.update(op.relation, op.key, op.at, values)
    elif op.op == "terminate":
        target.terminate(op.relation, op.key, op.at)
    elif op.op == "reincarnate":
        target.reincarnate(op.relation, op.key, op.lifespan, values)
    else:
        raise ValueError(f"unknown mutation op {op.op!r}")


def _apply_evolution(session, op: EvolveOp) -> None:
    scheme = _scheme_of(session, op.relation)
    if op.action == "drop":
        evolved = drop_attribute(scheme, op.attribute, op.at)
    elif op.action == "readd":
        if op.until is None:
            evolved = readd_attribute(scheme, op.attribute, op.at)
        else:
            evolved = readd_attribute(scheme, op.attribute, op.at,
                                      until=op.until)
    else:
        raise ValueError(f"unknown evolution action {op.action!r}")
    session.evolve_scheme(op.relation, evolved)


# ---------------------------------------------------------------------------
# Measured, oracle-instrumented execution.
# ---------------------------------------------------------------------------

@dataclass
class PersonaStats:
    """What one persona did and how fast the engine answered."""

    persona: str
    latencies_ms: List[float] = field(default_factory=list)
    ops: int = 0
    queries: int = 0
    mutations: int = 0
    #: Commit attempts that lost first-committer-wins and were retried.
    conflicts: int = 0
    #: Ops abandoned after exhausting their retry budget.
    failures: int = 0
    elapsed_s: float = 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_json(self) -> dict:
        return {
            "ops": self.ops,
            "queries": self.queries,
            "mutations": self.mutations,
            "conflicts": self.conflicts,
            "failures": self.failures,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_ops_s": round(self.ops / self.elapsed_s, 2)
            if self.elapsed_s > 0 else 0.0,
            "latency_ms": {"p50": round(self.percentile(0.50), 3),
                           "p95": round(self.percentile(0.95), 3),
                           "p99": round(self.percentile(0.99), 3)},
        }


def _retrying(action, resilient: bool):
    """Run *action*, riding out retryable infrastructure errors.

    Chaos runs make :class:`~repro.core.errors.FencedError`,
    :class:`~repro.core.errors.ConnectionLostError`, and
    :class:`~repro.core.errors.ReplicaLagError` part of normal life —
    the fenced window between a primary kill and the promotion refuses
    every write by design, and the persona's job is to wait it out (the
    routed client rediscovers the new primary underneath the retry).
    Re-sending is sound because the harness's failover is fenced-first
    (:func:`repro.workloads.chaos.fail_over`): a write the old primary
    refused never committed anywhere.
    :class:`~repro.core.errors.ConflictError` stays the caller's
    business — its abort is an oracle event, not an infrastructure
    hiccup. Outside chaos runs (*resilient* False) this is a plain
    call.
    """
    if not resilient:
        return action()
    deadline = time.monotonic() + RETRY_DEADLINE
    pause = 0.02
    while True:
        try:
            return action()
        except ConflictError:
            raise
        except HRDMError as exc:
            if not exc.retryable or time.monotonic() >= deadline:
                raise
        time.sleep(pause)
        pause = min(pause * 2, 0.5)


def _execute(session, op, oracle: Optional[HistoryOracle], oracle_id: str,
             stats: PersonaStats, resilient: bool = False) -> None:
    if op.kind == "query":
        _retrying(lambda: session.query(op.hrql, dict(op.params)), resilient)
        stats.queries += 1
    elif op.kind == "mutation":
        if oracle is not None:
            oracle.begin_commit(oracle_id, {op.relation: {op.key}})
        try:
            _retrying(lambda: _apply_mutation(session, op), resilient)
        except ConflictError:
            # The engine already retried internally; a surviving
            # conflict means the op lost every race.
            if oracle is not None:
                oracle.aborted(oracle_id)
            stats.conflicts += 1
            stats.failures += 1
        else:
            if oracle is not None:
                oracle.committed(oracle_id)
            stats.mutations += 1
    elif op.kind == "evolve":
        # Evolution rewrites schemes, not key sets — nothing for the
        # key-cut oracle to track.
        _retrying(lambda: _apply_evolution(session, op), resilient)
        stats.mutations += 1
    elif op.kind == "burst":
        writes: Dict[str, set] = {}
        for m in op.ops:
            writes.setdefault(m.relation, set()).add(m.key)

        def _burst() -> None:
            with session.transaction() as txn:
                for m in op.ops:
                    _apply_mutation(txn, m)

        for _attempt in range(BURST_ATTEMPTS):
            if oracle is not None:
                oracle.begin_commit(oracle_id, writes)
            try:
                _retrying(_burst, resilient)
            except ConflictError:
                if oracle is not None:
                    oracle.aborted(oracle_id)
                stats.conflicts += 1
            else:
                if oracle is not None:
                    oracle.committed(oracle_id)
                stats.mutations += len(op.ops)
                return
        stats.failures += 1
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")


def _persona_worker(scenario: Scenario, persona: str, script, session,
                    oracle: Optional[HistoryOracle], mode: str,
                    rate: Optional[float], stats: PersonaStats,
                    errors: list, resilient: bool = False) -> None:
    oracle_id = f"{scenario.name}:{persona}"
    started = time.perf_counter()
    try:
        for i, op in enumerate(script):
            if mode == "open" and rate:
                scheduled = started + i / rate
                now = time.perf_counter()
                if now < scheduled:
                    time.sleep(scheduled - now)
                op_start = scheduled  # queueing delay counts
            else:
                op_start = time.perf_counter()
            _execute(session, op, oracle, oracle_id, stats, resilient)
            stats.latencies_ms.append(
                (time.perf_counter() - op_start) * 1000.0)
            stats.ops += 1
            if oracle is not None and (i + 1) % OBSERVE_EVERY == 0:
                # One observation stream per (persona, relation): each
                # relation fetch is its own snapshot, so mixing them
                # into one observer would trip the monotone check.
                # Routed sessions observe through their *current
                # primary*: a round-robined replica read can lag
                # another persona's commit and show a smaller cut than
                # the previous observation — a false monotonicity
                # violation. The primary (old before failover, the
                # caught-up promoted one after) always holds every
                # acknowledged commit.
                obs_session = getattr(session, "primary", session)
                try:
                    for rel in scenario.relations:
                        keys = {t.key_value()
                                for t in _fetch_relation(obs_session,
                                                         rel).tuples}
                        oracle.observed(f"{oracle_id}:{rel}", {rel: keys})
                except HRDMError as exc:
                    # Mid-failover the primary session may be dead or
                    # fenced out from under the observation; sampling
                    # is best-effort, so skip this round.
                    if not (resilient and exc.retryable):
                        raise
    except Exception as exc:  # surfaced after join — runs fail loudly
        errors.append((persona, exc))
    finally:
        stats.elapsed_s = time.perf_counter() - started


@dataclass
class RunResult:
    """One verified harness run: measurements plus its provenance."""

    scenario: str
    seed: int
    engine: str
    storage: str
    mode: str
    knobs: Knobs
    personas: Dict[str, PersonaStats]
    oracle_events: int
    verified: bool
    elapsed_s: float
    #: The chaos experiment's record (timeline, fault trace, final
    #: epoch) when the run had a ``faults=`` plan; None otherwise.
    chaos: Optional[dict] = None

    @property
    def total_ops(self) -> int:
        return sum(s.ops for s in self.personas.values())

    @property
    def total_conflicts(self) -> int:
        return sum(s.conflicts for s in self.personas.values())

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine,
            "storage": self.storage,
            "mode": self.mode,
            "knobs": self.knobs.to_json(),
            "personas": {p: s.to_json()
                         for p, s in sorted(self.personas.items())},
            "total_ops": self.total_ops,
            "total_conflicts": self.total_conflicts,
            "oracle_events": self.oracle_events,
            "verified": self.verified,
            "elapsed_s": round(self.elapsed_s, 4),
            **({"chaos": self.chaos} if self.chaos is not None else {}),
        }


def run_scenario(scenario: Union[str, Scenario],
                 knobs: Optional[Knobs] = None, *,
                 engine: str = "embedded",
                 storage: str = "memory",
                 path=None,
                 mode: str = "closed",
                 rate: Optional[float] = None,
                 verify: bool = True,
                 faults=None,
                 shards: int = 2) -> RunResult:
    """Run *scenario* with concurrent persona sessions and verify it.

    *engine* is ``"embedded"`` (threads share the database object),
    ``"server"`` (an in-process :class:`~repro.server.DatabaseServer`
    with one network client per persona), ``"cluster"`` (a durable
    primary server **plus a live read replica** in ``<path>-replica``;
    personas connect :class:`~repro.client.RoutedClient` sessions, so
    reads fan out and writes survive a failover — requires *path*), or
    ``"sharded"`` (*shards* durable shard workers in
    ``<path>-shard{i}`` behind a :class:`~repro.sharding.Coordinator`
    in ``<path>-coordinator``; hashed relations split by shard key,
    relations named in the scenario's ``broadcast`` tuple are copied
    everywhere, and transactions spanning shards commit through the
    WAL-backed two-phase protocol — requires *path*).
    *mode* is ``"closed"`` or ``"open"`` (with *rate* ops/s per
    persona). With *verify* (the default) the run must pass the
    snapshot-isolation oracle **and** the scenario's semantic
    invariants, or this raises.

    *faults* arms the chaos layer: a
    :class:`~repro.workloads.chaos.ChaosPlan` (or a bare
    :class:`~repro.faults.FaultSchedule`, wrapped in one) is installed
    for the run's duration, personas ride out retryable infrastructure
    errors instead of failing, and — on the ``cluster`` engine with
    ``kill_after_ops`` set — a controller kills the primary mid-run
    via the fenced :func:`~repro.workloads.chaos.fail_over`, promotes
    the replica, and lets the workload finish against it. The oracle
    and the invariants then judge the *surviving* timeline: a chaos
    run that loses an acknowledged write or shows a torn cut raises
    exactly like any other bad run.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    knobs = knobs or Knobs()
    plan: Optional[ChaosPlan] = None
    if faults is not None:
        plan = (faults if isinstance(faults, ChaosPlan)
                else ChaosPlan(seed=getattr(faults, "seed", 0),
                               schedule=faults))
        if plan.kill_after_ops is not None and engine != "cluster":
            raise ValueError(
                "a ChaosPlan with kill_after_ops needs engine='cluster' "
                "(there is no replica to promote otherwise)")
    if engine in ("cluster", "sharded") and path is None:
        raise ValueError(f"engine={engine!r} needs a durable path=")
    resilient = plan is not None
    if engine == "sharded":
        db = None  # the shard workers own the durable state
    else:
        if path is not None:
            db = HistoricalDatabase(scenario.name, path=path)
        else:
            db = HistoricalDatabase(scenario.name)
        scenario.bootstrap(db, knobs, storage=storage)
    oracle = HistoryOracle() if verify else None
    scripts = scenario.scripts(knobs)
    stats = {p: PersonaStats(p) for p in scenario.personas}
    errors: list = []
    final_db = db
    cleanup = None

    started = time.perf_counter()
    if plan is not None:
        faults_mod.install(plan.schedule)
    try:
        if engine == "embedded":
            _drive(scenario, scripts, {p: db for p in scenario.personas},
                   oracle, mode, rate, stats, errors, resilient)
        elif engine == "server":
            from repro.client import connect
            from repro.server import DatabaseServer
            with DatabaseServer(db) as server:
                sessions = {p: connect(*server.address)
                            for p in scenario.personas}
                try:
                    _drive(scenario, scripts, sessions, oracle, mode, rate,
                           stats, errors, resilient)
                finally:
                    for session in sessions.values():
                        session.close()
        elif engine == "cluster":
            final_db, cleanup = _drive_cluster(
                scenario, scripts, db, path, knobs, oracle, mode, rate,
                stats, errors, plan, resilient)
        elif engine == "sharded":
            final_db, cleanup = _drive_sharded(
                scenario, scripts, path, knobs, storage, oracle, mode,
                rate, stats, errors, resilient, shards)
        else:
            raise ValueError(f"unknown engine {engine!r}")
    finally:
        if plan is not None:
            faults_mod.uninstall()
    elapsed = time.perf_counter() - started

    try:
        if errors:
            persona, exc = errors[0]
            raise RuntimeError(
                f"scenario {scenario.name!r} persona {persona!r} failed: "
                f"{exc!r}") from exc

        verified = False
        if verify:
            oracle.verify(initial=scenario.initial_keys(knobs),
                          monotone=True)
            catalog = {rel: _fetch_relation(final_db, rel)
                       for rel in scenario.relations}
            scenario.verify(catalog, knobs)
            verified = True
    finally:
        if cleanup is not None:
            cleanup()

    return RunResult(
        scenario=scenario.name, seed=knobs.seed, engine=engine,
        storage=storage, mode=mode, knobs=knobs, personas=stats,
        oracle_events=oracle._seq if oracle is not None else 0,
        verified=verified, elapsed_s=elapsed,
        chaos=plan.to_json() if plan is not None else None)


def _await_replica(replica, db, timeout: float = 30.0) -> None:
    """Block until the replica has applied the bootstrap commits."""
    target = db._durability.position[1]
    deadline = time.monotonic() + timeout
    while replica.applied[1] < target:
        if time.monotonic() >= deadline:
            raise RuntimeError(
                f"replica stuck at LSN {replica.applied[1]}, short of "
                f"the bootstrap position {target} after {timeout:.3g}s")
        time.sleep(0.01)


def _chaos_controller(plan: ChaosPlan, server, db, replica, stats,
                      stop: threading.Event,
                      failed_over: threading.Event) -> None:
    """Arm the kill: once the personas pass the op threshold, fail over."""
    from repro.workloads.chaos import fail_over

    while not stop.is_set():
        if sum(s.ops for s in stats.values()) >= plan.kill_after_ops:
            break
        time.sleep(0.005)
    else:
        return  # the workload finished before the kill threshold
    try:
        fail_over(server, db, replica, plan=plan,
                  timeout=plan.catch_up_timeout)
        failed_over.set()
    except Exception as exc:
        # Leave the cluster as-is; the fenced personas will exhaust
        # their retry budget and fail the run loudly, with this note
        # in the chaos record explaining why.
        plan.note("failover_failed", error=f"{type(exc).__name__}: {exc}")


def _drive_cluster(scenario, scripts, db, path, knobs, oracle, mode, rate,
                   stats, errors, plan, resilient):
    """The ``cluster`` engine: primary + replica + routed personas.

    Returns ``(surviving_db, cleanup)`` — verification must read the
    final catalog from whichever node owns the surviving timeline, and
    only *cleanup* (run after verification) tears that node down.
    """
    from repro.client import connect
    from repro.replication import ReplicaServer
    from repro.server import DatabaseServer

    server = DatabaseServer(db)
    server.start()
    replica = ReplicaServer(
        f"{path}-replica", server.address,
        replica_id=f"{scenario.name}-replica", backoff_seed=knobs.seed)
    controller = None
    stop_controller = threading.Event()
    failed_over = threading.Event()
    sessions = {}
    try:
        replica.start()
        _await_replica(replica, db)
        sessions = {p: connect(server.address, replicas=[replica.address])
                    for p in scenario.personas}
        if plan is not None and plan.kill_after_ops is not None:
            controller = threading.Thread(
                target=_chaos_controller,
                args=(plan, server, db, replica, stats, stop_controller,
                      failed_over),
                name=f"{scenario.name}-chaos", daemon=True)
            controller.start()
        _drive(scenario, scripts, sessions, oracle, mode, rate, stats,
               errors, resilient)
    finally:
        stop_controller.set()
        if controller is not None:
            controller.join(JOIN_TIMEOUT)
        for session in sessions.values():
            session.close()
        if not failed_over.is_set():
            server.stop()

    def cleanup() -> None:
        replica.stop()  # closes the promoted database too
        if not failed_over.is_set() and not db.closed:
            db.close()

    return (replica.db if failed_over.is_set() else db), cleanup


def _drive_sharded(scenario, scripts, path, knobs, storage, oracle, mode,
                   rate, stats, errors, resilient, shards: int):
    """The ``sharded`` engine: N shard workers behind a coordinator.

    Bootstraps *through the coordinator* (so DDL records the catalog's
    placements and the initial load is hash-partitioned exactly like
    live traffic), registers the scenario's integrity constraints
    directly on every worker database (each shard sweeps its slice
    against its full broadcast copies), and gives every persona its
    own coordinator connection. Returns ``(final_session, cleanup)``
    like :func:`_drive_cluster` — verification reads the merged
    catalog back through the coordinator.
    """
    from repro.client import connect
    from repro.server import DatabaseServer
    from repro.sharding import Coordinator

    if shards < 1:
        raise ValueError(f"engine='sharded' needs shards >= 1, got {shards}")
    worker_dbs = [
        HistoricalDatabase(f"{scenario.name}-shard{i}",
                           path=f"{path}-shard{i}")
        for i in range(shards)
    ]
    servers = [DatabaseServer(wdb) for wdb in worker_dbs]
    coordinator = None
    sessions = {}
    final = None
    try:
        for server in servers:
            server.start()
        coordinator = Coordinator(
            f"{path}-coordinator", [s.address for s in servers],
            name=scenario.name,
            broadcast=getattr(scenario, "broadcast", ()))
        coordinator.start()
        final = connect(*coordinator.address)
        scenario.bootstrap(final, knobs, storage=storage, constraints=False)
        for wdb in worker_dbs:
            for constraint in scenario.constraints(knobs):
                wdb.add_constraint(constraint)
        sessions = {p: connect(*coordinator.address)
                    for p in scenario.personas}
        _drive(scenario, scripts, sessions, oracle, mode, rate, stats,
               errors, resilient)
    except BaseException:
        for session in sessions.values():
            session.close()
        if final is not None:
            final.close()
        if coordinator is not None:
            coordinator.stop()
        for server in servers:
            server.stop()
        for wdb in worker_dbs:
            if not wdb.closed:
                wdb.close()
        raise
    else:
        for session in sessions.values():
            session.close()

    def cleanup() -> None:
        final.close()
        coordinator.stop()
        for server in servers:
            server.stop()
        for wdb in worker_dbs:
            if not wdb.closed:
                wdb.close()

    return final, cleanup


def _drive(scenario, scripts, sessions, oracle, mode, rate, stats,
           errors, resilient: bool = False) -> None:
    threads = [
        threading.Thread(
            target=_persona_worker,
            args=(scenario, persona, scripts[persona], sessions[persona],
                  oracle, mode, rate, stats[persona], errors, resilient),
            name=f"{scenario.name}-{persona}", daemon=True)
        for persona in scenario.personas
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
        if thread.is_alive():
            raise RuntimeError(
                f"persona thread {thread.name} did not finish within "
                f"{JOIN_TIMEOUT}s")


# ---------------------------------------------------------------------------
# Deterministic sequential replay + digests — the differential-twin
# surface (memory vs disk vs over-the-wire must agree byte-for-byte).
# ---------------------------------------------------------------------------

def _relation_rows(relation: HistoricalRelation) -> list:
    rows = []
    for t in sorted(relation.tuples, key=lambda t: str(t.key_value())):
        attrs = {a: t.value(a) for a in relation.scheme.attributes}
        rows.append((t.key_value(), t.lifespan, attrs))
    return rows


def result_digest(result) -> str:
    """A stable digest of one query result (relation or lifespan)."""
    value = result.value
    if isinstance(value, HistoricalRelation):
        return fingerprint(_relation_rows(value))
    return fingerprint(value)


def catalog_digest(session, relations) -> str:
    """A stable digest of the named relations' full contents."""
    parts = [(rel, _relation_rows(_fetch_relation(session, rel)))
             for rel in sorted(relations)]
    return fingerprint(parts)


def replay(session, scenario: Union[str, Scenario],
           knobs: Optional[Knobs] = None) -> List[Tuple[Tuple[str, int], str]]:
    """Sequentially replay every persona script on one *session*.

    Personas run one after another in registry order, so the history is
    fully deterministic. Returns ``((persona, op_index), digest)`` for
    every query op; compare lists (and a :func:`catalog_digest`) across
    backends for differential testing. The session must already hold
    the scenario's relations (see :meth:`Scenario.bootstrap`).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    knobs = knobs or Knobs()
    digests: List[Tuple[Tuple[str, int], str]] = []
    for persona in scenario.personas:
        for i, op in enumerate(scenario.script(persona, knobs)):
            if op.kind == "query":
                result = session.query(op.hrql, dict(op.params))
                digests.append(((persona, i), result_digest(result)))
            elif op.kind == "mutation":
                _apply_mutation(session, op)
            elif op.kind == "evolve":
                _apply_evolution(session, op)
            elif op.kind == "burst":
                with session.transaction() as txn:
                    for m in op.ops:
                        _apply_mutation(txn, m)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")
    return digests
