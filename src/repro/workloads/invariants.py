"""Per-scenario semantic invariants the harness checks after every run.

The history oracle (:mod:`repro.workloads.oracle`) knows nothing about
what the data *means* — it checks snapshot isolation over key cuts.
These checks close the gap: each scenario in
:mod:`repro.workloads.scenarios` pairs its traffic with a semantic
predicate over the final catalog (salary histories stay continuous and
non-decreasing across rehires, dropped attributes stay invisible
outside the evolved lifespans, audit trails stay contiguous with one
open version, enrollments never outlive their students), and
:meth:`Scenario.verify` calls into this module.

All checks accept a :class:`~repro.core.relation.HistoricalRelation` —
an embedded catalog's relation or one fetched over the wire — so the
same predicate gates embedded runs, server runs, and the differential
twin tests.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation

__all__ = [
    "InvariantViolation",
    "check_battery_levels",
    "check_evolution_visibility",
    "check_lifespans_within",
    "check_positive",
    "check_referential_integrity",
    "check_salary_continuity",
    "check_scd_versions",
    "check_total_on_lifespan",
]


class InvariantViolation(AssertionError):
    """A final catalog broke a scenario's semantic invariant."""


def _segments(tuple_, attr):
    """The attribute's value segments, sorted by start chronon."""
    return sorted(tuple_.value(attr).items(), key=lambda item: item[0])


def check_lifespans_within(relation: HistoricalRelation,
                           window: Lifespan) -> None:
    """Every tuple's lifespan stays inside the scenario *window*."""
    for t in relation.tuples:
        if not t.lifespan.issubset(window):
            raise InvariantViolation(
                f"{relation.scheme.name}{t.key_value()}: lifespan "
                f"{t.lifespan} escapes the scenario window {window}")


def check_total_on_lifespan(relation: HistoricalRelation,
                            attr: str) -> None:
    """*attr* has a value at every chronon of every tuple's lifespan."""
    for t in relation.tuples:
        domain = t.value(attr).domain
        if not t.lifespan.issubset(domain):
            raise InvariantViolation(
                f"{relation.scheme.name}{t.key_value()}: {attr} undefined "
                f"on part of the lifespan (domain {domain}, "
                f"lifespan {t.lifespan})")


def check_salary_continuity(relation: HistoricalRelation) -> None:
    """Salary histories are continuous and non-decreasing across rehires.

    Continuity: SALARY is defined on every employment chronon, gaps
    included-out — a rehire resumes the history, it doesn't hole it.
    Monotonicity: read in time order, salaries never drop (the paper's
    Section 1 payroll rule, also enforced live by the ``NonDecreasing``
    constraint; checking it again on the final catalog catches any
    write path that slipped past the constraint machinery).
    """
    check_total_on_lifespan(relation, "SALARY")
    for t in relation.tuples:
        previous = None
        for (lo, hi), value in _segments(t, "SALARY"):
            if previous is not None and value < previous:
                raise InvariantViolation(
                    f"{relation.scheme.name}{t.key_value()}: salary drops "
                    f"to {value} at chronon {lo} (was {previous})")
            previous = value


def check_evolution_visibility(relation: HistoricalRelation, attr: str,
                               expected: Lifespan) -> None:
    """Figure 6 visibility: *attr* exists exactly on the evolved lifespan.

    The scheme's attribute lifespan must equal the replayed evolution
    schedule, and no tuple may carry a value outside it — a dropped
    era's values must stay invisible even after the attribute returns.
    """
    actual = relation.scheme.als(attr)
    if actual != expected:
        raise InvariantViolation(
            f"{relation.scheme.name}.{attr}: attribute lifespan {actual} "
            f"!= the replayed evolution schedule {expected}")
    for t in relation.tuples:
        domain = t.value(attr).domain
        if not domain.issubset(expected):
            raise InvariantViolation(
                f"{relation.scheme.name}{t.key_value()}: {attr} has values "
                f"on {domain}, outside the evolved lifespan {expected}")


def check_positive(relation: HistoricalRelation, attr: str) -> None:
    """Every recorded value of *attr* is strictly positive."""
    for t in relation.tuples:
        for (lo, hi), value in _segments(t, attr):
            if not value > 0:
                raise InvariantViolation(
                    f"{relation.scheme.name}{t.key_value()}: {attr} is "
                    f"{value!r} at chronon {lo}")


def check_battery_levels(relation: HistoricalRelation) -> None:
    """Battery levels stay in [0, 100] and drain within an incarnation.

    Non-increasing is checked per maximal employment interval (a
    re-provisioned sensor ships with a fresh battery — the live
    constraint uses ``reset_on_gap=True`` for the same reason).
    """
    for t in relation.tuples:
        segments = _segments(t, "BATTERY")
        for (lo, hi), value in segments:
            if not 0 <= value <= 100:
                raise InvariantViolation(
                    f"{relation.scheme.name}{t.key_value()}: battery "
                    f"{value!r} out of [0, 100] at chronon {lo}")
        for span_lo, span_hi in t.lifespan.intervals:
            previous = None
            for (lo, hi), value in segments:
                if lo < span_lo or lo > span_hi:
                    continue
                if previous is not None and value > previous:
                    raise InvariantViolation(
                        f"{relation.scheme.name}{t.key_value()}: battery "
                        f"climbs to {value} at chronon {lo} (was "
                        f"{previous}) inside incarnation "
                        f"[{span_lo}, {span_hi}]")
                previous = value


def check_scd_versions(relation: HistoricalRelation, *,
                       horizon: int) -> None:
    """Type-2 SCD shape: per entity, versions form one contiguous,
    disjoint chain with exactly one open (current) version.

    * every version's validity is a single interval;
    * version starts strictly increase with the version number;
    * consecutive versions meet without gap or overlap;
    * the chain covers ``[first start, horizon]`` and only the last
      version is open (ends at *horizon*).
    """
    by_entity: dict = {}
    for t in relation.tuples:
        entity, ver = t.key_value()
        by_entity.setdefault(entity, []).append((ver, t.lifespan))
    for entity, versions in sorted(by_entity.items()):
        versions.sort(key=lambda pair: pair[0])
        previous_end = None
        for ver, lifespan in versions:
            if len(lifespan.intervals) != 1:
                raise InvariantViolation(
                    f"AUDIT({entity!r}, {ver!r}): validity {lifespan} "
                    f"is not a single interval")
            lo, hi = lifespan.intervals[0]
            if previous_end is not None and lo != previous_end + 1:
                raise InvariantViolation(
                    f"AUDIT({entity!r}, {ver!r}): starts at {lo}, but the "
                    f"previous version ended at {previous_end} — the "
                    f"audit trail has a gap or overlap")
            previous_end = hi
        if previous_end != horizon:
            raise InvariantViolation(
                f"AUDIT {entity!r}: no open version — the trail ends at "
                f"{previous_end}, horizon is {horizon}")
        open_versions = [v for v, ls in versions
                         if ls.intervals[-1][1] == horizon]
        if len(open_versions) != 1:
            raise InvariantViolation(
                f"AUDIT {entity!r}: {len(open_versions)} open versions "
                f"({open_versions}); a type-2 dimension keeps exactly one")


def check_referential_integrity(
        relation: HistoricalRelation,
        targets: Mapping[str, HistoricalRelation]) -> None:
    """Temporal referential integrity (the paper's Section 1 example).

    For each foreign-key attribute → target relation in *targets*,
    every referencing tuple's lifespan must be covered by the lifespan
    of the referenced tuple: no enrollment outlives its student or its
    course, even across re-enrollments.
    """
    key_attrs = list(relation.scheme.key)
    target_index: dict = {}
    for attr, target in targets.items():
        target_index[attr] = {t.key_value(): t.lifespan
                              for t in target.tuples}
    for t in relation.tuples:
        key = t.key_value()
        for attr, index in target_index.items():
            value = key[key_attrs.index(attr)]
            target_lifespan = index.get((value,))
            if target_lifespan is None:
                raise InvariantViolation(
                    f"{relation.scheme.name}{key}: references "
                    f"{attr}={value!r}, which does not exist")
            if not t.lifespan.issubset(target_lifespan):
                raise InvariantViolation(
                    f"{relation.scheme.name}{key}: alive on {t.lifespan}, "
                    f"but {attr}={value!r} only lives on "
                    f"{target_lifespan}")
