"""Seeded synthetic history generators.

The paper's motivating domains — personnel records (hire / fire /
re-hire, salary and department changes), stock-market data (the
Figure 6 Daily-Trading-Volume schema evolution), and student/course
enrollment (the Section 1 referential-integrity example) — as
deterministic generators. Every generator takes an explicit seed, so
tests, examples, and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core import domains
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction

#: Department names for the personnel workload.
DEPARTMENTS = ("Toys", "Shoes", "Books", "Tools", "Foods", "Music", "Games")

_FIRST = (
    "Ada", "Alan", "Barbara", "Edgar", "Grace", "John", "Mary", "Niklaus",
    "Raymond", "Ted", "Tony", "Vera",
)
_LAST = (
    "Codd", "Turing", "Liskov", "Dijkstra", "Hopper", "Backus", "Shaw",
    "Wirth", "Boyce", "Chen", "Hoare", "Date",
)


@dataclass
class PersonnelConfig:
    """Shape parameters for the personnel history generator."""

    n_employees: int = 50
    horizon: int = 120  # chronons (months)
    rehire_probability: float = 0.25
    mean_tenure: int = 30
    mean_gap: int = 10
    salary_lo: int = 20_000
    salary_hi: int = 90_000
    raise_every: int = 12
    seed: int = 7
    max_incarnations: int = 3
    departments: tuple = field(default=DEPARTMENTS)


def personnel_scheme(horizon: int = 120) -> RelationScheme:
    """The EMP scheme: NAME (key), SALARY, DEPT over ``[0, horizon]``."""
    window = Lifespan.interval(0, horizon)
    return RelationScheme(
        "EMP",
        {
            "NAME": domains.cd(domains.STRING),
            "SALARY": domains.td(domains.INTEGER),
            "DEPT": domains.enumerated("dept", DEPARTMENTS),
        },
        key=["NAME"],
        lifespans={"NAME": window, "SALARY": window, "DEPT": window},
    )


def _employee_lifespan(rng: random.Random, cfg: PersonnelConfig) -> Lifespan:
    """One employee's (possibly interrupted) employment lifespan."""
    spans = []
    cursor = rng.randrange(0, max(1, cfg.horizon // 2))
    for _ in range(cfg.max_incarnations):
        tenure = max(1, int(rng.expovariate(1.0 / cfg.mean_tenure)))
        end = min(cursor + tenure, cfg.horizon)
        if cursor > cfg.horizon:
            break
        spans.append((cursor, end))
        if end >= cfg.horizon or rng.random() >= cfg.rehire_probability:
            break
        gap = max(1, int(rng.expovariate(1.0 / cfg.mean_gap)))
        cursor = end + 1 + gap
    if not spans:
        spans = [(0, min(cfg.mean_tenure, cfg.horizon))]
    return Lifespan(*spans)


def _salary_history(rng: random.Random, cfg: PersonnelConfig,
                    lifespan: Lifespan) -> TemporalFunction:
    """A never-decreasing step salary over *lifespan*."""
    salary = rng.randrange(cfg.salary_lo, cfg.salary_hi, 1000)
    segments = []
    for lo, hi in lifespan.intervals:
        cursor = lo
        while cursor <= hi:
            stop = min(cursor + cfg.raise_every - 1, hi)
            segments.append(((cursor, stop), salary))
            salary += rng.randrange(0, 5000, 500)
            cursor = stop + 1
    return TemporalFunction(segments)


def _dept_history(rng: random.Random, cfg: PersonnelConfig,
                  lifespan: Lifespan) -> TemporalFunction:
    """A department step function with occasional transfers."""
    segments = []
    dept = rng.choice(cfg.departments)
    for lo, hi in lifespan.intervals:
        cursor = lo
        while cursor <= hi:
            stay = max(6, int(rng.expovariate(1.0 / 24)))
            stop = min(cursor + stay - 1, hi)
            segments.append(((cursor, stop), dept))
            dept = rng.choice(cfg.departments)
            cursor = stop + 1
    return TemporalFunction(segments)


def generate_personnel(cfg: Optional[PersonnelConfig] = None) -> HistoricalRelation:
    """A deterministic personnel relation with reincarnated employees.

    >>> emp = generate_personnel(PersonnelConfig(n_employees=10, seed=1))
    >>> len(emp)
    10
    """
    cfg = cfg or PersonnelConfig()
    rng = random.Random(cfg.seed)
    scheme = personnel_scheme(cfg.horizon)
    tuples = []
    names = set()
    while len(names) < cfg.n_employees:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)} #{len(names)}"
        names.add(name)
    for name in sorted(names):
        lifespan = _employee_lifespan(rng, cfg)
        rows = {
            "NAME": name,
            "SALARY": _salary_history(rng, cfg, lifespan),
            "DEPT": _dept_history(rng, cfg, lifespan),
        }
        tuples.append((lifespan, rows))
    return HistoricalRelation.from_rows(scheme, tuples)


@dataclass
class StockConfig:
    """Shape parameters for the stock-market workload (Figure 6)."""

    n_stocks: int = 20
    horizon: int = 250  # trading days
    volume_dropped_at: int = 100  # the paper's t2
    volume_readded_at: int = 180  # the paper's t3
    price_lo: float = 5.0
    price_hi: float = 500.0
    seed: int = 11


def stock_scheme(cfg: Optional[StockConfig] = None) -> RelationScheme:
    """The STOCK scheme with the Figure 6 VOLUME attribute lifespan.

    PRICE is recorded over the whole horizon; VOLUME only over
    ``[0, t2) ∪ [t3, horizon]`` — the attribute was dropped when "too
    expensive to collect" and re-added when "a cheap outside source"
    appeared.
    """
    cfg = cfg or StockConfig()
    window = Lifespan.interval(0, cfg.horizon)
    volume_ls = (
        Lifespan.interval(0, cfg.volume_dropped_at - 1)
        | Lifespan.interval(cfg.volume_readded_at, cfg.horizon)
    )
    return RelationScheme(
        "STOCK",
        {
            "TICKER": domains.cd(domains.STRING),
            "PRICE": domains.td(domains.NUMBER),
            "VOLUME": domains.td(domains.INTEGER),
        },
        key=["TICKER"],
        lifespans={"TICKER": window, "PRICE": window, "VOLUME": volume_ls},
    )


def generate_stocks(cfg: Optional[StockConfig] = None) -> HistoricalRelation:
    """A deterministic stock relation exercising attribute lifespans."""
    cfg = cfg or StockConfig()
    rng = random.Random(cfg.seed)
    scheme = stock_scheme(cfg)
    tuples = []
    for i in range(cfg.n_stocks):
        ticker = f"S{i:03d}"
        listed_at = rng.randrange(0, cfg.horizon // 3)
        lifespan = Lifespan.interval(listed_at, cfg.horizon)
        price = rng.uniform(cfg.price_lo, cfg.price_hi)
        price_segments = []
        for day in range(listed_at, cfg.horizon + 1):
            price = max(cfg.price_lo, price * rng.uniform(0.97, 1.035))
            price_segments.append(((day, day), round(price, 2)))
        volume_window = lifespan & scheme.als("VOLUME")
        volume_segments = [
            ((day, day), rng.randrange(1_000, 1_000_000))
            for day in volume_window
        ]
        tuples.append((
            lifespan,
            {
                "TICKER": ticker,
                "PRICE": TemporalFunction(price_segments),
                "VOLUME": TemporalFunction(volume_segments),
            },
        ))
    return HistoricalRelation.from_rows(scheme, tuples)


@dataclass
class EnrollmentConfig:
    """Shape parameters for the student / course / enrollment workload."""

    n_students: int = 40
    n_courses: int = 12
    n_enrollments: int = 80
    horizon: int = 48  # chronons (months over several school years)
    dropout_probability: float = 0.2
    seed: int = 23


def student_scheme(horizon: int = 48) -> RelationScheme:
    window = Lifespan.interval(0, horizon)
    return RelationScheme(
        "STUDENT",
        {
            "SID": domains.cd(domains.STRING),
            "MAJOR": domains.td(domains.STRING),
        },
        key=["SID"],
        lifespans={"SID": window, "MAJOR": window},
    )


def course_scheme(horizon: int = 48) -> RelationScheme:
    window = Lifespan.interval(0, horizon)
    return RelationScheme(
        "COURSE",
        {
            "CID": domains.cd(domains.STRING),
            "TITLE": domains.td(domains.STRING),
        },
        key=["CID"],
        lifespans={"CID": window, "TITLE": window},
    )


def enrollment_scheme(horizon: int = 48) -> RelationScheme:
    """The relationship relation — composite key (SID, CID)."""
    window = Lifespan.interval(0, horizon)
    return RelationScheme(
        "ENROLLMENT",
        {
            "SID": domains.cd(domains.STRING),
            "CID": domains.cd(domains.STRING),
            "GRADE": domains.td(domains.STRING),
        },
        key=["SID", "CID"],
        lifespans={"SID": window, "CID": window, "GRADE": window},
    )


_MAJORS = ("IS", "CS", "Math", "Econ", "Bio")
_GRADES = ("A", "B", "C", "D")


def generate_enrollment_db(cfg: Optional[EnrollmentConfig] = None):
    """Students, courses, and enrollments with temporal referential integrity.

    Returns ``(students, courses, enrollments)`` — three historical
    relations such that every enrollment chronon lies inside both the
    student's and the course's lifespan (the Section 1 constraint), with
    some students dropping out and re-enrolling (reincarnation).
    """
    cfg = cfg or EnrollmentConfig()
    rng = random.Random(cfg.seed)

    students = []
    for i in range(cfg.n_students):
        sid = f"st{i:03d}"
        start = rng.randrange(0, cfg.horizon // 2)
        end = min(start + rng.randrange(12, 36), cfg.horizon)
        if rng.random() < cfg.dropout_probability and end - start > 10:
            mid = start + (end - start) // 2
            lifespan = Lifespan((start, mid), (min(mid + 4, end), end))
        else:
            lifespan = Lifespan.interval(start, end)
        major = TemporalFunction.constant(rng.choice(_MAJORS), lifespan)
        students.append((lifespan, {"SID": sid, "MAJOR": major}))
    student_rel = HistoricalRelation.from_rows(student_scheme(cfg.horizon), students)

    courses = []
    for i in range(cfg.n_courses):
        cid = f"c{i:02d}"
        start = rng.randrange(0, cfg.horizon // 3)
        lifespan = Lifespan.interval(start, cfg.horizon)
        title = TemporalFunction.constant(f"Course {i}", lifespan)
        courses.append((lifespan, {"CID": cid, "TITLE": title}))
    course_rel = HistoricalRelation.from_rows(course_scheme(cfg.horizon), courses)

    enrollments = []
    seen_pairs = set()
    attempts = 0
    while len(enrollments) < cfg.n_enrollments and attempts < cfg.n_enrollments * 20:
        attempts += 1
        student = rng.choice(student_rel.tuples)
        course = rng.choice(course_rel.tuples)
        pair = (student.key_value()[0], course.key_value()[0])
        if pair in seen_pairs:
            continue
        window = student.lifespan & course.lifespan
        if len(window) < 4:
            continue
        start = rng.choice(window.to_points()[: max(1, len(window) - 3)])
        span = Lifespan.interval(start, start + 3) & window
        if span.is_empty:
            continue
        seen_pairs.add(pair)
        grade = TemporalFunction.constant(rng.choice(_GRADES), span)
        enrollments.append((span, {"SID": pair[0], "CID": pair[1], "GRADE": grade}))
    enrollment_rel = HistoricalRelation.from_rows(
        enrollment_scheme(cfg.horizon), enrollments
    )
    return student_rel, course_rel, enrollment_rel
