"""Personas and difficulty knobs for the workload foundry.

A *persona* is a named client archetype with a fixed operation mix —
the "clerk-as-character" design from the agentic-data-analysis
exemplar: personas are persistent characters with locked habits, not
sampling functions. Every scenario in :mod:`repro.workloads.scenarios`
scripts the same three personas against its own schema:

``analyst``
    Temporal slices: ``SELECT ... DURING [lo, hi]`` windows and
    ``TIMESLICE`` queries, concentrated on the scenario's temporal
    hotspot (dashboards look at *now*; analysts look at the busy
    quarter).
``dashboard``
    Point lookups on skewed keys — a Zipf-ish popularity distribution
    controlled by :attr:`Knobs.skew`, so a few hot entities absorb
    most reads (and, under ``key_overlap``, most write conflicts).
``bulk_loader``
    Bursts of inserts/updates batched into transactions — the
    ingestion path that loads new entities and churns existing ones.

Scripts are **data, not behavior**: a persona's script is a tuple of
declarative :class:`Op` values produced deterministically from
``(scenario, persona, knobs)``. The harness replays scripts against
any engine — embedded catalog, disk catalog, or a network client —
which is what makes differential (twin) testing and byte-identical
reproducibility possible.

The difficulty knobs (:class:`Knobs`) are the levers every benchmark
and stress test shares: ``scale`` grows the entity population
(monotonically — a larger scale is a superset of a smaller one),
``skew`` sharpens key popularity, ``key_overlap`` raises the chance
two writer personas touch the same key in the same run (conflict
pressure for the MVCC validator), and ``evolution_events`` fires
schema evolutions mid-run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.core.lifespan import Lifespan
from repro.core.tfunc import TemporalFunction

#: The persona names every scenario scripts, in a fixed order.
PERSONAS = ("analyst", "dashboard", "bulk_loader")


@dataclass(frozen=True)
class Knobs:
    """Difficulty knobs shared by every scenario.

    >>> Knobs(scale=2.0).entity_count(10)
    20
    >>> Knobs().derive(skew=3.0).skew
    3.0
    """

    #: Entity-population multiplier. Scale-monotone: the entities at
    #: ``scale=s`` are a subset of the entities at any ``scale >= s``.
    scale: float = 1.0
    #: Zipf-ish exponent for key popularity (0 = uniform).
    skew: float = 1.2
    #: Probability a writer op targets the shared hot-key range
    #: instead of the persona's private range — conflict pressure.
    key_overlap: float = 0.05
    #: Schema-evolution events fired mid-run (Figure 6 drop/re-add).
    evolution_events: int = 1
    #: Master seed: same seed ⇒ byte-identical datasets and scripts.
    seed: int = 7
    #: Ops per persona script.
    ops_per_persona: int = 90

    def entity_count(self, base: int) -> int:
        """The scaled entity population for a scenario's *base* count."""
        return max(2, int(base * self.scale))

    def derive(self, **changes: Any) -> "Knobs":
        """A copy with *changes* applied (frozen-dataclass ``replace``)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return Knobs(**current)

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# ---------------------------------------------------------------------------
# The declarative op model. Scripts are tuples of these; the harness
# interprets them against an engine.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryOp:
    """One HRQL query with bound parameters (sorted pairs, canonical)."""
    hrql: str
    params: Tuple[Tuple[str, Any], ...] = ()

    kind = "query"


@dataclass(frozen=True)
class MutationOp:
    """One keyed mutation: insert / update / terminate / reincarnate."""
    op: str
    relation: str
    key: tuple
    lifespan: Optional[Lifespan] = None
    at: Optional[int] = None
    #: Attribute values as sorted ``(name, value)`` pairs.
    values: Tuple[Tuple[str, Any], ...] = ()

    kind = "mutation"


@dataclass(frozen=True)
class EvolveOp:
    """A schema-evolution event — Figure 6's drop / re-add cycle."""
    relation: str
    action: str  # "drop" | "readd"
    attribute: str
    at: int
    #: Re-add window end (bounded, so histories stay finite).
    until: Optional[int] = None

    kind = "evolve"


@dataclass(frozen=True)
class BurstOp:
    """A bulk-loader burst: mutations applied in one transaction."""
    ops: Tuple[MutationOp, ...]

    kind = "burst"


#: Anything a persona script may contain.
Op = Any


def pairs(mapping: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """A mapping as canonically ordered (attr, value) pairs."""
    return tuple(sorted(mapping.items()))


# ---------------------------------------------------------------------------
# Deterministic randomness helpers. ``random.Random(str)`` seeds from
# the string's *bytes* (not ``hash()``), so every draw is identical
# across processes and ``PYTHONHASHSEED`` values.
# ---------------------------------------------------------------------------

def rng_for(*parts: Any) -> random.Random:
    """A process-stable RNG derived from the joined *parts*.

    >>> rng_for(7, "hr", "analyst").random() == rng_for(7, "hr", "analyst").random()
    True
    """
    return random.Random(":".join(str(p) for p in parts))


def zipf_index(rng: random.Random, n: int, skew: float) -> int:
    """Draw an index in ``[0, n)`` with Zipf-ish popularity.

    Rank 0 is the hottest; ``skew=0`` degenerates to uniform.

    >>> r = rng_for(1, "zipf")
    >>> all(0 <= zipf_index(r, 10, 2.0) < 10 for _ in range(100))
    True
    """
    if n <= 1:
        return 0
    if skew <= 0:
        return rng.randrange(n)
    weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for rank, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return rank
    return n - 1


# ---------------------------------------------------------------------------
# Canonical serialization — the byte-identity surface. Fingerprints of
# datasets and scripts are how the property tests assert cross-process
# determinism, so the encoding must itself be order- and
# hash-seed-stable.
# ---------------------------------------------------------------------------

def canonical(value: Any) -> str:
    """A canonical, hash-seed-independent text encoding of *value*."""
    if isinstance(value, Lifespan):
        return "L" + repr(tuple(value.intervals))
    if isinstance(value, TemporalFunction):
        return "F[" + ",".join(
            f"({lo},{hi})={canonical(v)}" for (lo, hi), v in value.items()) + "]"
    if isinstance(value, dict):
        inner = ",".join(f"{canonical(k)}:{canonical(v)}"
                         for k, v in sorted(value.items(), key=lambda kv: str(kv[0])))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(canonical(v) for v in value) + ")"
    if isinstance(value, (QueryOp, MutationOp, EvolveOp, BurstOp)):
        parts = [type(value).__name__]
        for f in fields(value):
            parts.append(f"{f.name}={canonical(getattr(value, f.name))}")
        return "<" + ";".join(parts) + ">"
    if isinstance(value, float):
        return repr(round(value, 9))
    return repr(value)


def fingerprint(*values: Any) -> str:
    """A stable sha256 hex digest of the canonical form of *values*.

    >>> fingerprint([1, 2]) == fingerprint((1, 2))
    True
    >>> len(fingerprint("x"))
    64
    """
    digest = hashlib.sha256()
    for value in values:
        digest.update(canonical(value).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
