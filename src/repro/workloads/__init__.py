"""Deterministic synthetic workloads for examples, tests, and benches.

Two layers live here. The original *generators*
(:mod:`repro.workloads.generator`) build one-shot datasets. The
*workload foundry* (PR 8) goes further: named, seeded, scale-
parameterized :class:`~repro.workloads.scenarios.Scenario` traffic
with persona op mixes (:mod:`repro.workloads.personas`), semantic
invariants (:mod:`repro.workloads.invariants`), the promoted
snapshot-isolation oracle (:mod:`repro.workloads.oracle`), and the
measuring, verifying harness (:mod:`repro.workloads.harness`).

The *chaos* layer (:mod:`repro.workloads.chaos`) points the harness at
a faulty cluster: a :class:`ChaosPlan` schedules seeded point faults
(via :mod:`repro.faults`) and a mid-run primary kill, the fenced
:func:`fail_over` choreography promotes the replica, and the same
oracle then judges the surviving timeline.
"""

from repro.workloads.chaos import ChaosPlan, fail_over
from repro.workloads.generator import (
    DEPARTMENTS,
    EnrollmentConfig,
    PersonnelConfig,
    StockConfig,
    course_scheme,
    enrollment_scheme,
    generate_enrollment_db,
    generate_personnel,
    generate_stocks,
    personnel_scheme,
    stock_scheme,
    student_scheme,
)
from repro.workloads.harness import (
    RunResult,
    catalog_digest,
    replay,
    result_digest,
    run_scenario,
)
from repro.workloads.invariants import InvariantViolation
from repro.workloads.oracle import HistoryOracle, OracleViolation
from repro.workloads.personas import PERSONAS, Knobs
from repro.workloads.scenarios import SCENARIOS, Scenario, get_scenario

__all__ = [
    "ChaosPlan",
    "DEPARTMENTS",
    "EnrollmentConfig",
    "HistoryOracle",
    "InvariantViolation",
    "Knobs",
    "OracleViolation",
    "PERSONAS",
    "PersonnelConfig",
    "RunResult",
    "SCENARIOS",
    "Scenario",
    "StockConfig",
    "catalog_digest",
    "course_scheme",
    "enrollment_scheme",
    "fail_over",
    "generate_enrollment_db",
    "generate_personnel",
    "generate_stocks",
    "get_scenario",
    "personnel_scheme",
    "replay",
    "result_digest",
    "run_scenario",
    "stock_scheme",
    "student_scheme",
]
