"""Deterministic synthetic workloads for examples, tests, and benches."""

from repro.workloads.generator import (
    DEPARTMENTS,
    EnrollmentConfig,
    PersonnelConfig,
    StockConfig,
    course_scheme,
    enrollment_scheme,
    generate_enrollment_db,
    generate_personnel,
    generate_stocks,
    personnel_scheme,
    stock_scheme,
    student_scheme,
)

__all__ = [
    "DEPARTMENTS",
    "EnrollmentConfig",
    "PersonnelConfig",
    "StockConfig",
    "course_scheme",
    "enrollment_scheme",
    "generate_enrollment_db",
    "generate_personnel",
    "generate_stocks",
    "personnel_scheme",
    "stock_scheme",
    "student_scheme",
]
