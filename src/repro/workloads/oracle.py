"""Snapshot-isolation oracle — records operation histories, checks them.

Stress tests (``test_concurrency.py``, ``test_server.py``) and the
workload harness (:mod:`repro.workloads.harness`) interleave writers
and readers and then need to answer: *did anyone observe something
snapshot isolation forbids?* This module is that checker, promoted
from test infrastructure into the library so non-test consumers (the
scenario benchmark driver, external stress rigs) can import it:
sessions report their events to a :class:`HistoryOracle` while the
stress runs (cheap, lock-ordered appends), and
:meth:`HistoryOracle.verify` replays the recorded history afterwards
against the invariants:

**No uncommitted or torn reads.** Every key an observer reports must
be explainable: part of the initial state, or written by a transaction
that entered commit before the observation *and* eventually succeeded.
A key whose only writers aborted (conflict, constraint violation) must
never appear in any observation, at any point — aborts leave no trace.

**Committed cuts are monotone.** For insert-only histories, one
observer's successive cuts only ever grow (``cut_i ⊆ cut_{i+1}``): a
reader never watches the database travel backwards in commit order.

**Cut atomicity** (caller-supplied). A per-observation *invariant*
callable pins whatever "not torn" means for the workload — e.g. a
transaction that always writes relations R and S together implies
every cut satisfies ``cut["R"] == cut["S"]``.

Events carry a global sequence number taken under one lock, so the
verifier reasons about a single total order of the recorded history —
the same post-hoc-checker shape as Jepsen-style elle/knossos, scaled
to what these tests need. Usage::

    oracle = HistoryOracle()
    # writer, per transaction:
    oracle.begin_commit("w1", {"R": {key}})
    txn.commit()
    oracle.committed("w1")          # or oracle.aborted("w1")
    # reader, per snapshot:
    oracle.observed("r3", {"R": keys_seen})
    # after the threads join:
    oracle.verify(invariant=lambda cut: cut["R"] == cut["S"])
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping, Optional

#: One recorded event: (seq, kind, session, payload).
Event = tuple


class OracleViolation(AssertionError):
    """A recorded history broke a snapshot-isolation invariant."""


class HistoryOracle:
    """Thread-safe history recorder + post-hoc invariant checker."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[Event] = []
        self._seq = 0

    # -- recording (called concurrently from the stress threads) -----------

    def _record(self, kind: str, session: str, payload) -> int:
        with self._lock:
            self._seq += 1
            self._events.append((self._seq, kind, session, payload))
            return self._seq

    def begin_commit(self, session: str,
                     writes: Mapping[str, Iterable]) -> None:
        """*session* enters commit intending *writes* (relation → keys)."""
        self._record("begin", session,
                     {rel: frozenset(keys) for rel, keys in writes.items()})

    def committed(self, session: str) -> None:
        """The commit that *session* last began was acknowledged."""
        self._record("commit", session, None)

    def aborted(self, session: str) -> None:
        """The commit that *session* last began rolled back (conflict,
        constraint violation, ...) — its writes must never be seen."""
        self._record("abort", session, None)

    def observed(self, session: str, cut: Mapping[str, Iterable]) -> None:
        """*session* read one snapshot cut (relation → keys seen)."""
        self._record("observe", session,
                     {rel: frozenset(keys) for rel, keys in cut.items()})

    # -- verification (called after the stress threads join) ----------------

    def verify(self, *, initial: Optional[Mapping[str, Iterable]] = None,
               monotone: bool = True,
               invariant: Optional[Callable[[Mapping], bool]] = None) -> None:
        """Check the whole recorded history; raise :class:`OracleViolation`
        with the offending event on the first broken invariant.

        *initial* is the committed state before the stress began
        (relation → keys). *monotone* asserts per-observer growing cuts
        (set it False for workloads that delete). *invariant* is the
        per-cut atomicity predicate.
        """
        initial_keys = {rel: frozenset(keys)
                        for rel, keys in (initial or {}).items()}
        acked = self._eventually_acked()
        # Writes that can legally appear in an observation at sequence
        # s: every eventually-acked commit whose begin precedes s.
        pending: dict[str, Mapping[str, frozenset]] = {}
        visible: dict[str, set] = {rel: set(keys)
                                   for rel, keys in initial_keys.items()}
        last_cut: dict[str, Mapping[str, frozenset]] = {}
        for seq, kind, session, payload in self._events:
            if kind == "begin":
                pending[session] = payload
                if (session, seq) in acked:
                    for rel, keys in payload.items():
                        visible.setdefault(rel, set()).update(keys)
            elif kind in ("commit", "abort"):
                pending.pop(session, None)
            elif kind == "observe":
                self._check_observation(seq, session, payload, visible)
                if invariant is not None and not invariant(payload):
                    raise OracleViolation(
                        f"event {seq}: observer {session!r} saw a cut "
                        f"breaking the atomicity invariant: "
                        f"{ {r: sorted(k)[:5] for r, k in payload.items()} }")
                if monotone:
                    self._check_monotone(seq, session, payload, last_cut)
                    last_cut[session] = payload

    def _eventually_acked(self) -> set:
        """(session, begin_seq) pairs whose commit was acknowledged."""
        open_begin: dict[str, int] = {}
        acked: set = set()
        for seq, kind, session, _payload in self._events:
            if kind == "begin":
                open_begin[session] = seq
            elif kind == "commit":
                begin_seq = open_begin.pop(session, None)
                if begin_seq is None:
                    raise OracleViolation(
                        f"event {seq}: session {session!r} committed "
                        f"without a matching begin_commit")
                acked.add((session, begin_seq))
            elif kind == "abort":
                if open_begin.pop(session, None) is None:
                    raise OracleViolation(
                        f"event {seq}: session {session!r} aborted "
                        f"without a matching begin_commit")
        return acked

    @staticmethod
    def _check_observation(seq: int, session: str, cut: Mapping,
                           visible: Mapping[str, set]) -> None:
        for rel, keys in cut.items():
            stray = keys - visible.get(rel, set())
            if stray:
                raise OracleViolation(
                    f"event {seq}: observer {session!r} saw keys of "
                    f"{rel!r} no acknowledged commit explains (torn or "
                    f"uncommitted read): {sorted(stray)[:5]}")

    @staticmethod
    def _check_monotone(seq: int, session: str, cut: Mapping,
                        last_cut: Mapping[str, Mapping]) -> None:
        previous = last_cut.get(session)
        if previous is None:
            return
        for rel, keys in previous.items():
            lost = keys - cut.get(rel, frozenset())
            if lost:
                raise OracleViolation(
                    f"event {seq}: observer {session!r} watched "
                    f"{rel!r} travel backwards in commit order "
                    f"(lost keys {sorted(lost)[:5]})")

    def __repr__(self) -> str:
        return f"HistoryOracle({len(self._events)} events)"
