"""The scenario registry — named, seeded, scale-parameterized workloads.

Every scenario is one *kind of traffic* the ROADMAP's north star asks
the engine to survive, packaged as pure data: a schema, a
deterministic initial dataset, live integrity constraints, three
persona op scripts (see :mod:`repro.workloads.personas`), and a
post-run invariant check. Scenarios never touch an engine themselves —
the harness (:mod:`repro.workloads.harness`) replays them against an
embedded catalog, a disk catalog, or a network client, which is what
makes the memory/disk/server differential tests and the benchmark
driver share one traffic substrate.

Determinism contract (property-tested in ``tests/test_scenarios.py``):

* same :class:`~repro.workloads.personas.Knobs` (and in particular the
  same ``seed``) ⇒ byte-identical datasets and scripts, across
  processes and ``PYTHONHASHSEED`` values —
  :meth:`Scenario.fingerprint` is the digest that pins this down;
* a larger ``scale`` knob ⇒ a strict superset of entities: entity
  ``i``'s history is derived from ``(seed, scenario, entity_id)``
  alone, never from the population size.

The registry::

    >>> from repro.workloads.scenarios import SCENARIOS, get_scenario
    >>> sorted(SCENARIOS)
    ['enrollment_churn', 'hr_rehires', 'iot_fleet', 'scd_audit', 'stock_ticks']
    >>> get_scenario("hr_rehires").relations
    ('EMP',)
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core import domains
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction
from repro.database.integrity import (NonDecreasing, NonIncreasing,
                                      TemporalForeignKey)
from repro.workloads import invariants as inv
from repro.workloads.personas import (PERSONAS, BurstOp, EvolveOp, Knobs,
                                      MutationOp, Op, QueryOp, fingerprint,
                                      pairs, rng_for, zipf_index)

#: One dataset row: (lifespan, {attr: scalar | TemporalFunction}).
Row = Tuple[Lifespan, Dict[str, Any]]


class Scenario:
    """Base class: a named, seeded, scale-parameterized workload."""

    name: str = ""
    description: str = ""
    relations: Tuple[str, ...] = ()
    #: Relations the ``sharded`` engine copies to every shard instead
    #: of hash-partitioning — the dimension side of the scenario's
    #: temporal foreign keys, so each shard sweeps them locally.
    broadcast: Tuple[str, ...] = ()
    personas: Tuple[str, ...] = PERSONAS
    horizon: int = 100
    #: Chance an entity (beyond the first two, which are always hot) is
    #: drawn as a full-lifespan "hot" entity.
    hot_fraction: float = 0.25

    # -- the per-scenario surface ------------------------------------------

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        raise NotImplementedError

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        """The deterministic initial load, relation → rows."""
        raise NotImplementedError

    def constraints(self, knobs: Knobs) -> list:
        """Integrity constraints registered live on the database."""
        return []

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        """The persona's deterministic op script."""
        raise NotImplementedError

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        """Check the scenario's semantic invariants on a final state.

        *catalog* maps relation name → relation value (embedded or
        fetched over the wire). Raises
        :class:`~repro.workloads.invariants.InvariantViolation`.
        """
        raise NotImplementedError

    # -- shared machinery ---------------------------------------------------

    def scripts(self, knobs: Knobs) -> Dict[str, Tuple[Op, ...]]:
        return {p: self.script(p, knobs) for p in self.personas}

    def hot_entities(self, knobs: Knobs, entities: List[str]) -> List[str]:
        """The full-lifespan hot subset of *entities*.

        Hotness is a per-entity draw (never a population slice), so an
        entity keeps its history when the ``scale`` knob grows — the
        scale-monotonicity property depends on this. The first two
        entities are always hot, so persona scripts always have hot
        keys to target.
        """
        return [e for index, e in enumerate(entities)
                if index < 2
                or (rng_for(knobs.seed, self.name, e, "hot").random()
                    < self.hot_fraction)]

    def bootstrap(self, db, knobs: Knobs, *, storage: str = "memory",
                  constraints: bool = True) -> None:
        """Create this scenario's relations + constraints on *db*.

        ``constraints=False`` loads the dataset without registering the
        live integrity constraints — for microbenchmarks that measure
        the service layer rather than the per-commit constraint sweep
        (the sweep rescans the watched relation on every commit).
        """
        for rel, scheme in self.schemes(knobs).items():
            rows = self.dataset(knobs).get(rel, [])
            relation = HistoricalRelation.from_rows(scheme, rows)
            db.create_relation(scheme, relation.tuples, storage=storage)
        if constraints:
            for constraint in self.constraints(knobs):
                db.add_constraint(constraint)

    def initial_keys(self, knobs: Knobs) -> Dict[str, set]:
        """Relation → key tuples of the initial dataset (oracle seed)."""
        keys: Dict[str, set] = {}
        schemes = self.schemes(knobs)
        for rel, rows in self.dataset(knobs).items():
            key_attrs = schemes[rel].key
            keys[rel] = {tuple(values[a] for a in key_attrs)
                         for _, values in rows}
        return keys

    def fingerprint(self, knobs: Knobs) -> str:
        """A sha256 digest of schemes + dataset + every persona script.

        Byte-identical across processes and hash seeds — the
        determinism property the foundry guarantees.
        """
        schemes = [
            (rel, scheme.key,
             [(a, repr(scheme.domains()[a]), tuple(scheme.als(a).intervals))
              for a in sorted(scheme.attributes)])
            for rel, scheme in sorted(self.schemes(knobs).items())
        ]
        dataset = sorted(
            (rel, [(ls, values) for ls, values in rows])
            for rel, rows in self.dataset(knobs).items()
        )
        scripts = [(p, self.script(p, knobs)) for p in self.personas]
        return fingerprint(self.name, knobs.to_json(), schemes, dataset,
                           scripts)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "relations": list(self.relations),
            "personas": list(self.personas),
            "horizon": self.horizon,
        }

    def __repr__(self) -> str:
        return f"<Scenario {self.name!r}>"


#: The registry, name → scenario (populated by :func:`register`).
SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Install *scenario* in the registry (last registration wins)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    >>> get_scenario("no_such") # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    KeyError: ...
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"no scenario named {name!r}; registered: {known}") from None


# ---------------------------------------------------------------------------
# 1. HR with rehires — skewed departments, temporal hotspots, and the
# paper's Section 1 hire / fire / re-hire cycle as live churn.
# ---------------------------------------------------------------------------

_DEPARTMENTS = ("Toys", "Shoes", "Books", "Tools", "Foods", "Music", "Games")

#: Scripted salary constants: a function of the update chronon, so any
#: interleaving of concurrent raises leaves salaries non-decreasing
#: (larger chronon ⇒ larger constant, and every constant clears the
#: dataset's salary ceiling).
_SALARY_FLOOR = 150_000


def _scripted_salary(at: int) -> int:
    return _SALARY_FLOOR + at * 100


class HRRehires(Scenario):
    name = "hr_rehires"
    description = ("Personnel histories with skewed departments, a "
                   "temporal hotspot, and hire/fire/re-hire churn")
    relations = ("EMP",)
    horizon = 120
    base_entities = 24
    #: The busy quarter analysts keep slicing.
    hotspot = (60, 80)

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        window = Lifespan.interval(0, self.horizon)
        return {"EMP": RelationScheme(
            "EMP",
            {"NAME": domains.cd(domains.STRING),
             "SALARY": domains.td(domains.INTEGER),
             "DEPT": domains.enumerated("dept", _DEPARTMENTS)},
            key=["NAME"],
            lifespans={"NAME": window, "SALARY": window, "DEPT": window},
        )}

    def _names(self, knobs: Knobs) -> List[str]:
        n = knobs.entity_count(self.base_entities)
        return [f"emp{i:04d}" for i in range(n)]

    def _hot_names(self, knobs: Knobs) -> List[str]:
        return self.hot_entities(knobs, self._names(knobs))

    def _entity_row(self, name: str, hot: bool, knobs: Knobs) -> Row:
        r = rng_for(knobs.seed, self.name, name)
        if hot:
            lifespan = Lifespan.interval(0, self.horizon)
        else:
            start = r.randrange(0, self.horizon // 2)
            end = min(start + 20 + r.randrange(40), self.horizon - 2)
            if r.random() < 0.4 and end - start > 24:
                # A dataset rehire: employment interrupted by a gap.
                mid = start + (end - start) // 2
                lifespan = Lifespan((start, mid), (mid + 1 + r.randrange(2, 6), end))
                lifespan &= Lifespan.interval(0, self.horizon)
            else:
                lifespan = Lifespan.interval(start, end)
        salary = r.randrange(20_000, 60_000, 1000)
        segments = []
        for lo, hi in lifespan.intervals:
            cursor = lo
            while cursor <= hi:
                stop = min(cursor + 11, hi)
                segments.append(((cursor, stop), salary))
                salary += r.randrange(0, 4000, 500)
                cursor = stop + 1
        dept = _DEPARTMENTS[zipf_index(r, len(_DEPARTMENTS), knobs.skew)]
        return lifespan, {"NAME": name,
                          "SALARY": TemporalFunction(segments),
                          "DEPT": dept}

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        names = self._names(knobs)
        hot = set(self._hot_names(knobs))
        return {"EMP": [self._entity_row(n, n in hot, knobs) for n in names]}

    def constraints(self, knobs: Knobs) -> list:
        return [NonDecreasing("EMP", "SALARY")]

    def _hot_key(self, r: random.Random, knobs: Knobs) -> str:
        hot = self._hot_names(knobs)
        return hot[zipf_index(r, len(hot), knobs.skew)]

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        r = rng_for(knobs.seed, self.name, persona)
        ops: List[Op] = []
        n_ops = knobs.ops_per_persona
        lo_spot, hi_spot = self.hotspot
        if persona == "analyst":
            for j in range(n_ops):
                roll = r.random()
                if roll < 0.70:
                    # Temporal hotspot: window starts cluster (Zipf) on
                    # the busy quarter.
                    lo = lo_spot + zipf_index(r, hi_spot - lo_spot + 20,
                                              knobs.skew)
                    lo = min(lo, self.horizon - 4)
                    hi = min(lo + 2 + r.randrange(8), self.horizon)
                    ops.append(QueryOp(
                        "SELECT WHEN SALARY >= :min DURING [:lo, :hi] IN EMP",
                        pairs({"min": 25_000 + 1000 * r.randrange(10),
                               "lo": lo, "hi": hi})))
                elif roll < 0.85:
                    at = r.randrange(0, self.horizon - 10)
                    ops.append(QueryOp("TIMESLICE EMP TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at + 5})))
                else:
                    # Analyst correction: a raise on a hot employee.
                    name = self._hot_key(r, knobs)
                    at = r.randrange(5, self.horizon - 5)
                    ops.append(MutationOp(
                        "update", "EMP", (name,), at=at,
                        values=pairs({"SALARY": _scripted_salary(at)})))
        elif persona == "dashboard":
            names = self._names(knobs)
            for j in range(n_ops):
                if r.random() < 0.85:
                    name = names[zipf_index(r, len(names), knobs.skew)]
                    ops.append(QueryOp("SELECT IF NAME = :name IN EMP",
                                       pairs({"name": name})))
                else:
                    at = r.randrange(0, self.horizon)
                    ops.append(QueryOp("TIMESLICE EMP TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at})))
        elif persona == "bulk_loader":
            burst = 0
            own: List[Tuple[str, int]] = []  # (name, span start)
            while len(ops) < n_ops:
                t0 = r.randrange(0, self.horizon - 50)
                hires = []
                for j in range(4):
                    name = f"ld{knobs.seed}-{burst}-{j}"
                    dept = _DEPARTMENTS[zipf_index(r, len(_DEPARTMENTS),
                                                   knobs.skew)]
                    hires.append(MutationOp(
                        "insert", "EMP", (name,),
                        lifespan=Lifespan.interval(t0, t0 + 25),
                        values=pairs({"NAME": name, "DEPT": dept,
                                      "SALARY": _scripted_salary(t0)})))
                    own.append((name, t0))
                ops.append(BurstOp(tuple(hires)))
                burst += 1
                if own and r.random() < 0.5:
                    # A raise on one of this loader's own hires.
                    name, t0 = own[r.randrange(len(own))]
                    at = t0 + 1 + r.randrange(24)
                    ops.append(MutationOp(
                        "update", "EMP", (name,), at=at,
                        values=pairs({"SALARY": _scripted_salary(at)})))
                if own and r.random() < 0.35:
                    # Re-hire an earlier batch's employee after a gap.
                    name, t0 = own.pop(0)
                    start = t0 + 30 + r.randrange(6)
                    end = min(start + 15, self.horizon)
                    ops.append(MutationOp(
                        "reincarnate", "EMP", (name,),
                        lifespan=Lifespan.interval(start, end),
                        values=pairs({"NAME": name, "DEPT": "Tools",
                                      "SALARY": _scripted_salary(start)})))
                if r.random() < knobs.key_overlap:
                    # Conflict pressure: touch the shared hot range.
                    name = self._hot_key(r, knobs)
                    at = r.randrange(5, self.horizon - 5)
                    ops.append(MutationOp(
                        "update", "EMP", (name,), at=at,
                        values=pairs({"SALARY": _scripted_salary(at)})))
        else:
            raise KeyError(f"unknown persona {persona!r}")
        return tuple(ops[:n_ops])

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        inv.check_salary_continuity(catalog["EMP"])
        inv.check_lifespans_within(catalog["EMP"],
                                   Lifespan.interval(0, self.horizon))


# ---------------------------------------------------------------------------
# 2. Stock ticks — fine-granularity daily prices, with the paper's
# Figure 6 Daily-Trading-Volume schema evolution fired mid-run.
# ---------------------------------------------------------------------------

class StockTicks(Scenario):
    name = "stock_ticks"
    description = ("Fine-granularity stock ticks with the Figure 6 "
                   "VOLUME drop / re-add schema evolution fired mid-run")
    relations = ("STOCK",)
    horizon = 100
    base_entities = 12

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        window = Lifespan.interval(0, self.horizon)
        return {"STOCK": RelationScheme(
            "STOCK",
            {"TICKER": domains.cd(domains.STRING),
             "PRICE": domains.td(domains.NUMBER),
             "VOLUME": domains.td(domains.INTEGER)},
            key=["TICKER"],
            lifespans={"TICKER": window, "PRICE": window, "VOLUME": window},
        )}

    def _tickers(self, knobs: Knobs) -> List[str]:
        n = knobs.entity_count(self.base_entities)
        return [f"TK{i:03d}" for i in range(n)]

    def _hot_tickers(self, knobs: Knobs) -> List[str]:
        return self.hot_entities(knobs, self._tickers(knobs))

    def evolution_schedule(self, knobs: Knobs) -> List[Tuple[str, int]]:
        """The (action, chronon) evolution events this run fires.

        Figure 6: VOLUME is dropped at ``t2`` ("too expensive to
        collect") and re-added at ``t3`` ("a cheap outside source").
        Multiple events chain further drop / re-add cycles.
        """
        events = []
        for e in range(min(knobs.evolution_events, 2)):
            events.append(("drop", 50 + 20 * e))
            events.append(("readd", 58 + 20 * e))
        return events

    def expected_volume_lifespan(self, knobs: Knobs) -> Lifespan:
        """VOLUME's attribute lifespan after the scheduled evolutions."""
        als = Lifespan.interval(0, self.horizon)
        for action, at in self.evolution_schedule(knobs):
            if action == "drop":
                als &= Lifespan.until(at - 1)
            else:
                als |= Lifespan.interval(at, self.horizon)
        return als

    def _entity_row(self, ticker: str, hot: bool, knobs: Knobs) -> Row:
        r = rng_for(knobs.seed, self.name, ticker)
        listed_at = 0 if hot else r.randrange(0, self.horizon // 3)
        lifespan = Lifespan.interval(listed_at, self.horizon)
        price = r.uniform(5.0, 500.0)
        price_segments = []
        volume_segments = []
        for day in range(listed_at, self.horizon + 1):
            price = max(5.0, price * r.uniform(0.97, 1.035))
            price_segments.append(((day, day), round(price, 2)))
            volume_segments.append(((day, day), r.randrange(1_000, 1_000_000)))
        return lifespan, {"TICKER": ticker,
                          "PRICE": TemporalFunction(price_segments),
                          "VOLUME": TemporalFunction(volume_segments)}

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        hot = set(self._hot_tickers(knobs))
        return {"STOCK": [self._entity_row(t, t in hot, knobs)
                          for t in self._tickers(knobs)]}

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        r = rng_for(knobs.seed, self.name, persona)
        ops: List[Op] = []
        n_ops = knobs.ops_per_persona
        if persona == "analyst":
            for j in range(n_ops):
                if r.random() < 0.75:
                    lo = 40 + zipf_index(r, 50, knobs.skew)
                    lo = min(lo, self.horizon - 4)
                    ops.append(QueryOp(
                        "SELECT WHEN PRICE >= :p DURING [:lo, :hi] IN STOCK",
                        pairs({"p": 10.0 * (1 + r.randrange(20)),
                               "lo": lo,
                               "hi": min(lo + 1 + r.randrange(6),
                                         self.horizon)})))
                else:
                    at = r.randrange(0, self.horizon)
                    ops.append(QueryOp("TIMESLICE STOCK TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at})))
        elif persona == "dashboard":
            tickers = self._tickers(knobs)
            for j in range(n_ops):
                ticker = tickers[zipf_index(r, len(tickers), knobs.skew)]
                ops.append(QueryOp("SELECT IF TICKER = :t IN STOCK",
                                   pairs({"t": ticker})))
        elif persona == "bulk_loader":
            schedule = self.evolution_schedule(knobs)
            hot = self._hot_tickers(knobs)
            listing = 0
            # Evolution events fire at evenly spaced script positions
            # in the middle third of the run.
            body = max(1, n_ops - len(schedule))
            positions = {max(1, body // 3 + e * max(1, body // 6)): ev
                         for e, ev in enumerate(schedule)}
            readded_since: Optional[int] = None
            j = 0
            while len(ops) < n_ops:
                event = positions.get(j)
                j += 1
                if event is not None:
                    action, at = event
                    ops.append(EvolveOp("STOCK", action, "VOLUME", at,
                                        until=self.horizon))
                    readded_since = at if action == "readd" else None
                    continue
                roll = r.random()
                if roll < 0.5:
                    # A price tick burst on hot tickers.
                    ticks = []
                    for _ in range(3):
                        ticker = hot[zipf_index(r, len(hot), knobs.skew)]
                        day = r.randrange(1, self.horizon)
                        ticks.append(MutationOp(
                            "update", "STOCK", (ticker,), at=day,
                            values=pairs({"PRICE": round(
                                5.0 + r.uniform(0, 600), 2)})))
                    ops.append(BurstOp(tuple(ticks)))
                elif roll < 0.75:
                    # A volume correction — era-gated so the chronon is
                    # inside VOLUME's lifespan whatever has been
                    # dropped so far (chronons < first drop stay alive;
                    # after a re-add the new window opens too).
                    ticker = hot[zipf_index(r, len(hot), knobs.skew)]
                    if readded_since is not None and r.random() < 0.5:
                        day = readded_since + r.randrange(8)
                    else:
                        day = r.randrange(1, 45)
                    ops.append(MutationOp(
                        "update", "STOCK", (ticker,), at=day,
                        values=pairs({"VOLUME": r.randrange(1_000,
                                                            1_000_000)})))
                else:
                    ticker = f"IPO{knobs.seed}-{listing:03d}"
                    listing += 1
                    t0 = r.randrange(0, self.horizon - 10)
                    ops.append(MutationOp(
                        "insert", "STOCK", (ticker,),
                        lifespan=Lifespan.interval(t0, self.horizon),
                        values=pairs({"TICKER": ticker,
                                      "PRICE": round(r.uniform(5, 50), 2),
                                      "VOLUME": r.randrange(1_000,
                                                            100_000)})))
        else:
            raise KeyError(f"unknown persona {persona!r}")
        return tuple(ops[:n_ops])

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        inv.check_evolution_visibility(
            catalog["STOCK"], "VOLUME", self.expected_volume_lifespan(knobs))
        inv.check_positive(catalog["STOCK"], "PRICE")


# ---------------------------------------------------------------------------
# 3. IoT sensor fleet — skewed sites, battery drain, decommission /
# re-provision churn.
# ---------------------------------------------------------------------------

_SITES = ("north", "south", "east", "west", "lab")


def _scripted_battery(at: int, horizon: int) -> int:
    """Scripted battery constants decrease with the chronon, so any
    interleaving of concurrent drain reports stays non-increasing."""
    return max(5, 55 - (at * 50) // max(1, horizon))


class IoTFleet(Scenario):
    name = "iot_fleet"
    description = ("An IoT sensor fleet: skewed sites, battery drain, "
                   "decommission / re-provision churn")
    relations = ("SENSOR",)
    horizon = 200
    base_entities = 30

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        window = Lifespan.interval(0, self.horizon)
        return {"SENSOR": RelationScheme(
            "SENSOR",
            {"SID": domains.cd(domains.STRING),
             "READING": domains.td(domains.NUMBER),
             "BATTERY": domains.td(domains.INTEGER),
             "SITE": domains.enumerated("site", _SITES)},
            key=["SID"],
            lifespans={a: window
                       for a in ("SID", "READING", "BATTERY", "SITE")},
        )}

    def _sids(self, knobs: Knobs) -> List[str]:
        n = knobs.entity_count(self.base_entities)
        return [f"sn{i:04d}" for i in range(n)]

    def _hot_sids(self, knobs: Knobs) -> List[str]:
        return self.hot_entities(knobs, self._sids(knobs))

    def _entity_row(self, sid: str, hot: bool, knobs: Knobs) -> Row:
        r = rng_for(knobs.seed, self.name, sid)
        if hot:
            lifespan = Lifespan.interval(0, self.horizon)
        else:
            start = r.randrange(0, self.horizon // 2)
            end = min(start + 40 + r.randrange(80), self.horizon)
            if r.random() < 0.3 and end - start > 60:
                mid = start + (end - start) // 2
                lifespan = Lifespan((start, mid),
                                    (mid + 5 + r.randrange(5), end))
                lifespan &= Lifespan.interval(0, self.horizon)
            else:
                lifespan = Lifespan.interval(start, end)
        battery_segments = []
        reading_segments = []
        for lo, hi in lifespan.intervals:
            level = 100  # each incarnation ships with a fresh battery
            reading = r.uniform(-20.0, 90.0)
            cursor = lo
            while cursor <= hi:
                stop = min(cursor + 19, hi)
                battery_segments.append(((cursor, stop), level))
                reading_segments.append(
                    ((cursor, stop), round(reading, 3)))
                level = max(60, level - r.randrange(0, 8))
                reading += r.uniform(-5.0, 5.0)
                cursor = stop + 1
        site = _SITES[zipf_index(r, len(_SITES), knobs.skew)]
        return lifespan, {"SID": sid,
                          "READING": TemporalFunction(reading_segments),
                          "BATTERY": TemporalFunction(battery_segments),
                          "SITE": site}

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        hot = set(self._hot_sids(knobs))
        return {"SENSOR": [self._entity_row(s, s in hot, knobs)
                           for s in self._sids(knobs)]}

    def constraints(self, knobs: Knobs) -> list:
        return [NonIncreasing("SENSOR", "BATTERY", reset_on_gap=True)]

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        r = rng_for(knobs.seed, self.name, persona)
        ops: List[Op] = []
        n_ops = knobs.ops_per_persona
        hot = self._hot_sids(knobs)
        if persona == "analyst":
            for j in range(n_ops):
                roll = r.random()
                if roll < 0.65:
                    lo = 100 + zipf_index(r, 80, knobs.skew)
                    lo = min(lo, self.horizon - 4)
                    ops.append(QueryOp(
                        "SELECT WHEN READING >= :r DURING [:lo, :hi] "
                        "IN SENSOR",
                        pairs({"r": round(r.uniform(-20, 80), 1),
                               "lo": lo,
                               "hi": min(lo + 2 + r.randrange(10),
                                         self.horizon)})))
                elif roll < 0.85:
                    at = r.randrange(0, self.horizon)
                    ops.append(QueryOp("TIMESLICE SENSOR TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at})))
                else:
                    # Analyst recalibration: a reading rewrite on a hot
                    # sensor (no monotonicity constraint on READING).
                    sid = hot[zipf_index(r, len(hot), knobs.skew)]
                    at = r.randrange(1, self.horizon - 1)
                    ops.append(MutationOp(
                        "update", "SENSOR", (sid,), at=at,
                        values=pairs({"READING": round(
                            r.uniform(-20, 90), 3)})))
        elif persona == "dashboard":
            sids = self._sids(knobs)
            for j in range(n_ops):
                sid = sids[zipf_index(r, len(sids), knobs.skew)]
                ops.append(QueryOp("SELECT IF SID = :sid IN SENSOR",
                                   pairs({"sid": sid})))
        elif persona == "bulk_loader":
            burst = 0
            own: List[Tuple[str, int]] = []
            while len(ops) < n_ops:
                t0 = r.randrange(0, self.horizon - 80)
                registrations = []
                for j in range(3):
                    sid = f"fl{knobs.seed}-{burst}-{j}"
                    site = _SITES[zipf_index(r, len(_SITES), knobs.skew)]
                    registrations.append(MutationOp(
                        "insert", "SENSOR", (sid,),
                        lifespan=Lifespan.interval(t0, t0 + 40),
                        values=pairs({"SID": sid, "SITE": site,
                                      "BATTERY": 90,
                                      "READING": round(r.uniform(0, 50),
                                                       3)})))
                    own.append((sid, t0))
                ops.append(BurstOp(tuple(registrations)))
                burst += 1
                if own and r.random() < 0.6:
                    sid, t0 = own[r.randrange(len(own))]
                    at = t0 + 1 + r.randrange(39)
                    ops.append(MutationOp(
                        "update", "SENSOR", (sid,), at=at,
                        values=pairs({"BATTERY": _scripted_battery(
                            at, self.horizon)})))
                if own and r.random() < 0.3:
                    # Decommission + re-provision after a gap.
                    sid, t0 = own.pop(0)
                    start = t0 + 45 + r.randrange(6)
                    end = min(start + 20, self.horizon)
                    ops.append(MutationOp(
                        "reincarnate", "SENSOR", (sid,),
                        lifespan=Lifespan.interval(start, end),
                        values=pairs({"SID": sid, "SITE": "lab",
                                      "BATTERY": 90,
                                      "READING": 0.0})))
                if r.random() < knobs.key_overlap:
                    sid = hot[zipf_index(r, len(hot), knobs.skew)]
                    at = r.randrange(1, self.horizon - 1)
                    ops.append(MutationOp(
                        "update", "SENSOR", (sid,), at=at,
                        values=pairs({"BATTERY": _scripted_battery(
                            at, self.horizon)})))
        else:
            raise KeyError(f"unknown persona {persona!r}")
        return tuple(ops[:n_ops])

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        inv.check_battery_levels(catalog["SENSOR"])
        inv.check_total_on_lifespan(catalog["SENSOR"], "READING")


# ---------------------------------------------------------------------------
# 4. Slowly-changing-dimension audit log — versioned rows, one open
# version per entity, contiguous audit trails.
# ---------------------------------------------------------------------------

_EDITORS = ("alice", "bob", "carol", "dave")


class SCDAudit(Scenario):
    name = "scd_audit"
    description = ("A type-2 slowly-changing-dimension audit log: "
                   "versioned rows with contiguous, disjoint validity")
    relations = ("AUDIT",)
    horizon = 150
    base_entities = 16
    #: Versions a dataset entity starts with (before churn adds more).
    max_dataset_versions = 3

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        window = Lifespan.interval(0, self.horizon)
        return {"AUDIT": RelationScheme(
            "AUDIT",
            {"ENTITY": domains.cd(domains.STRING),
             "VER": domains.cd(domains.STRING),
             "VALUE": domains.td(domains.STRING),
             "EDITOR": domains.enumerated("editor", _EDITORS)},
            key=["ENTITY", "VER"],
            lifespans={a: window
                       for a in ("ENTITY", "VER", "VALUE", "EDITOR")},
        )}

    def _entities(self, knobs: Knobs) -> List[str]:
        n = knobs.entity_count(self.base_entities)
        return [f"acct{i:04d}" for i in range(n)]

    def _entity_versions(self, ent: str, knobs: Knobs) -> List[Row]:
        r = rng_for(knobs.seed, self.name, ent)
        n_versions = 1 + zipf_index(r, self.max_dataset_versions,
                                    max(0.5, knobs.skew))
        bounds = sorted(r.sample(range(1, self.horizon - 20),
                                 n_versions - 1)) if n_versions > 1 else []
        starts = [0] + bounds
        rows: List[Row] = []
        for j, start in enumerate(starts):
            end = (starts[j + 1] - 1) if j + 1 < len(starts) else self.horizon
            lifespan = Lifespan.interval(start, end)
            editor = _EDITORS[zipf_index(r, len(_EDITORS), knobs.skew)]
            rows.append((lifespan, {
                "ENTITY": ent, "VER": f"v{j:02d}",
                "VALUE": f"state-{r.randrange(100)}",
                "EDITOR": editor}))
        return rows

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        rows: List[Row] = []
        for ent in self._entities(knobs):
            rows.extend(self._entity_versions(ent, knobs))
        return {"AUDIT": rows}

    def _open_versions(self, knobs: Knobs) -> Dict[str, Tuple[int, int]]:
        """Entity → (current open version index, its start chronon)."""
        current: Dict[str, Tuple[int, int]] = {}
        for ls, values in self.dataset(knobs)["AUDIT"]:
            lo = ls.intervals[0][0]
            ent, ver = values["ENTITY"], int(values["VER"][1:])
            if ent not in current or ver > current[ent][0]:
                current[ent] = (ver, lo)
        return current

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        r = rng_for(knobs.seed, self.name, persona)
        ops: List[Op] = []
        n_ops = knobs.ops_per_persona
        entities = self._entities(knobs)
        if persona == "analyst":
            for j in range(n_ops):
                if r.random() < 0.7:
                    lo = zipf_index(r, self.horizon - 10, 0.5)
                    ops.append(QueryOp(
                        "SELECT WHEN EDITOR = :e DURING [:lo, :hi] IN AUDIT",
                        pairs({"e": _EDITORS[zipf_index(
                            r, len(_EDITORS), knobs.skew)],
                            "lo": lo,
                            "hi": min(lo + 5 + r.randrange(20),
                                      self.horizon)})))
                else:
                    at = r.randrange(0, self.horizon)
                    ops.append(QueryOp("TIMESLICE AUDIT TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at})))
        elif persona == "dashboard":
            for j in range(n_ops):
                ent = entities[zipf_index(r, len(entities), knobs.skew)]
                ops.append(QueryOp("SELECT IF ENTITY = :ent IN AUDIT",
                                   pairs({"ent": ent})))
        elif persona == "bulk_loader":
            # SCD churn: close the open version at t, open the next one
            # at t — one atomic burst per change, so the audit trail
            # stays contiguous with exactly one open version.
            current = self._open_versions(knobs)
            while len(ops) < n_ops:
                ent = entities[zipf_index(r, len(entities), knobs.skew)]
                ver, start = current[ent]
                if start >= self.horizon - 4:
                    continue  # this trail is out of room; pick another
                t = start + 1 + r.randrange(
                    max(1, min(20, self.horizon - 2 - start)))
                next_ver = ver + 1
                editor = _EDITORS[zipf_index(r, len(_EDITORS), knobs.skew)]
                ops.append(BurstOp((
                    MutationOp("terminate", "AUDIT",
                               (ent, f"v{ver:02d}"), at=t),
                    MutationOp(
                        "insert", "AUDIT", (ent, f"v{next_ver:02d}"),
                        lifespan=Lifespan.interval(t, self.horizon),
                        values=pairs({
                            "ENTITY": ent, "VER": f"v{next_ver:02d}",
                            "VALUE": f"state-{r.randrange(100)}",
                            "EDITOR": editor})),
                )))
                current[ent] = (next_ver, t)
        else:
            raise KeyError(f"unknown persona {persona!r}")
        return tuple(ops[:n_ops])

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        inv.check_scd_versions(catalog["AUDIT"], horizon=self.horizon)


# ---------------------------------------------------------------------------
# 5. Enrollment churn — the Section 1 referential-integrity example
# under live enroll / drop / re-enroll traffic, with temporal foreign
# keys enforced by the database itself.
# ---------------------------------------------------------------------------

_MAJORS = ("IS", "CS", "Math", "Econ", "Bio")
_GRADES = ("A", "B", "C", "D")


class EnrollmentChurn(Scenario):
    name = "enrollment_churn"
    description = ("Students / courses / enrollments with temporal "
                   "foreign keys under enroll / drop / re-enroll churn")
    relations = ("STUDENT", "COURSE", "ENROLLMENT")
    #: ENROLLMENT hashes by its (SID, CID) key; the dimension sides of
    #: both foreign keys live whole on every shard.
    broadcast = ("STUDENT", "COURSE")
    horizon = 100
    base_entities = 20
    base_courses = 8
    #: Courses reserved for loader-created enrollments, so scripted
    #: (student, course) pairs never collide with dataset pairs.
    reserved_courses = 2

    def schemes(self, knobs: Knobs) -> Dict[str, RelationScheme]:
        window = Lifespan.interval(0, self.horizon)
        return {
            "STUDENT": RelationScheme(
                "STUDENT",
                {"SID": domains.cd(domains.STRING),
                 "MAJOR": domains.enumerated("major", _MAJORS)},
                key=["SID"],
                lifespans={"SID": window, "MAJOR": window}),
            "COURSE": RelationScheme(
                "COURSE",
                {"CID": domains.cd(domains.STRING),
                 "TITLE": domains.td(domains.STRING)},
                key=["CID"],
                lifespans={"CID": window, "TITLE": window}),
            "ENROLLMENT": RelationScheme(
                "ENROLLMENT",
                {"SID": domains.cd(domains.STRING),
                 "CID": domains.cd(domains.STRING),
                 "GRADE": domains.enumerated("grade", _GRADES)},
                key=["SID", "CID"],
                lifespans={"SID": window, "CID": window, "GRADE": window}),
        }

    def _sids(self, knobs: Knobs) -> List[str]:
        n = knobs.entity_count(self.base_entities)
        return [f"st{i:04d}" for i in range(n)]

    def _hot_sids(self, knobs: Knobs) -> List[str]:
        return self.hot_entities(knobs, self._sids(knobs))

    def _cids(self, knobs: Knobs) -> List[str]:
        n = max(self.reserved_courses + 2,
                knobs.entity_count(self.base_courses))
        return [f"c{i:02d}" for i in range(n)]

    def _dataset_cids(self, knobs: Knobs) -> List[str]:
        return self._cids(knobs)[:-self.reserved_courses]

    def _loader_cids(self, knobs: Knobs) -> List[str]:
        return self._cids(knobs)[-self.reserved_courses:]

    def _student_row(self, sid: str, hot: bool, knobs: Knobs) -> Row:
        r = rng_for(knobs.seed, self.name, sid)
        if hot:
            lifespan = Lifespan.interval(0, self.horizon)
        else:
            start = r.randrange(0, self.horizon // 2)
            end = min(start + 12 + r.randrange(36), self.horizon)
            if r.random() < 0.25 and end - start > 16:
                mid = start + (end - start) // 2
                lifespan = Lifespan((start, mid),
                                    (mid + 3 + r.randrange(3), end))
                lifespan &= Lifespan.interval(0, self.horizon)
            else:
                lifespan = Lifespan.interval(start, end)
        major = _MAJORS[zipf_index(r, len(_MAJORS), knobs.skew)]
        return lifespan, {"SID": sid, "MAJOR": major}

    def dataset(self, knobs: Knobs) -> Dict[str, List[Row]]:
        hot = set(self._hot_sids(knobs))
        students = [self._student_row(s, s in hot, knobs)
                    for s in self._sids(knobs)]
        window = Lifespan.interval(0, self.horizon)
        courses: List[Row] = [
            (window, {"CID": cid, "TITLE": f"Course {cid}"})
            for cid in self._cids(knobs)]
        student_spans = {values["SID"]: ls for ls, values in students}
        enrollments: List[Row] = []
        dataset_cids = self._dataset_cids(knobs)
        for sid in self._sids(knobs):
            r = rng_for(knobs.seed, self.name, "enroll", sid)
            span = student_spans[sid]
            points = span.to_points()
            for cid in dataset_cids:
                if r.random() >= 0.35 or len(points) < 5:
                    continue
                start = points[r.randrange(max(1, len(points) - 4))]
                window_e = (Lifespan.interval(start, start + 3) & span)
                if window_e.is_empty:
                    continue
                grade = _GRADES[zipf_index(r, len(_GRADES), knobs.skew)]
                enrollments.append((window_e, {
                    "SID": sid, "CID": cid, "GRADE": grade}))
        return {"STUDENT": students, "COURSE": courses,
                "ENROLLMENT": enrollments}

    def constraints(self, knobs: Knobs) -> list:
        return [TemporalForeignKey("ENROLLMENT", ["SID"], "STUDENT"),
                TemporalForeignKey("ENROLLMENT", ["CID"], "COURSE")]

    def script(self, persona: str, knobs: Knobs) -> Tuple[Op, ...]:
        r = rng_for(knobs.seed, self.name, persona)
        ops: List[Op] = []
        n_ops = knobs.ops_per_persona
        if persona == "analyst":
            for j in range(n_ops):
                roll = r.random()
                if roll < 0.6:
                    lo = zipf_index(r, self.horizon - 10, 0.5)
                    ops.append(QueryOp(
                        "SELECT WHEN GRADE = :g DURING [:lo, :hi] "
                        "IN ENROLLMENT",
                        pairs({"g": _GRADES[zipf_index(
                            r, len(_GRADES), knobs.skew)],
                            "lo": lo,
                            "hi": min(lo + 4 + r.randrange(12),
                                      self.horizon)})))
                elif roll < 0.85:
                    at = r.randrange(0, self.horizon)
                    ops.append(QueryOp("TIMESLICE STUDENT TO [:lo, :hi]",
                                       pairs({"lo": at, "hi": at})))
                else:
                    ops.append(QueryOp(
                        "SELECT IF MAJOR = :m IN STUDENT",
                        pairs({"m": _MAJORS[zipf_index(
                            r, len(_MAJORS), knobs.skew)]})))
        elif persona == "dashboard":
            sids = self._sids(knobs)
            for j in range(n_ops):
                sid = sids[zipf_index(r, len(sids), knobs.skew)]
                ops.append(QueryOp("SELECT IF SID = :sid IN ENROLLMENT",
                                   pairs({"sid": sid})))
        elif persona == "bulk_loader":
            # Enroll hot (full-lifespan) students in reserved courses,
            # drop some, re-enroll after a gap — every op valid under
            # the temporal foreign keys by construction.
            hot = self._hot_sids(knobs)
            loader_cids = self._loader_cids(knobs)
            used: set = set()
            own: List[Tuple[str, str, int]] = []
            while len(ops) < n_ops:
                sid = hot[zipf_index(r, len(hot), knobs.skew)]
                cid = loader_cids[r.randrange(len(loader_cids))]
                if (sid, cid) in used:
                    if own and r.random() < 0.5:
                        sid2, cid2, t0 = own.pop(0)
                        start = t0 + 10 + r.randrange(4)
                        end = min(start + 4, self.horizon)
                        grade = _GRADES[zipf_index(r, len(_GRADES),
                                                   knobs.skew)]
                        ops.append(MutationOp(
                            "reincarnate", "ENROLLMENT", (sid2, cid2),
                            lifespan=Lifespan.interval(start, end),
                            values=pairs({"SID": sid2, "CID": cid2,
                                          "GRADE": grade})))
                    else:
                        # Pair space exhausted: the loader checks its
                        # own work instead (keeps the script finite).
                        ops.append(QueryOp(
                            "SELECT IF CID = :cid IN ENROLLMENT",
                            pairs({"cid": cid})))
                    continue
                used.add((sid, cid))
                t0 = r.randrange(0, self.horizon - 20)
                grade = _GRADES[zipf_index(r, len(_GRADES), knobs.skew)]
                ops.append(MutationOp(
                    "insert", "ENROLLMENT", (sid, cid),
                    lifespan=Lifespan.interval(t0, t0 + 6),
                    values=pairs({"SID": sid, "CID": cid,
                                  "GRADE": grade})))
                if r.random() < 0.4:
                    ops.append(MutationOp(
                        "terminate", "ENROLLMENT", (sid, cid),
                        at=t0 + 2 + r.randrange(4)))
                    own.append((sid, cid, t0))
        else:
            raise KeyError(f"unknown persona {persona!r}")
        return tuple(ops[:n_ops])

    def verify(self, catalog: Mapping[str, Any], knobs: Knobs) -> None:
        inv.check_referential_integrity(
            catalog["ENROLLMENT"], {"SID": catalog["STUDENT"],
                                    "CID": catalog["COURSE"]})


register(HRRehires())
register(StockTicks())
register(IoTFleet())
register(SCDAudit())
register(EnrollmentChurn())
