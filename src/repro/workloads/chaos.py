"""Chaos choreography — kill the primary mid-workload, promote, verify.

The fault layer (:mod:`repro.faults`) injects *point* failures: a torn
WAL frame, an ENOSPC, a dropped replication send. This module composes
them into the scenario the whole replication design exists for — **the
primary dies under live traffic and a replica takes over** — and makes
that scenario a first-class, oracle-checked harness run:

* a :class:`ChaosPlan` names the experiment: the seed, an optional
  :class:`~repro.faults.FaultSchedule` of point faults to run under,
  and the op-count at which the primary is killed;
* :func:`fail_over` is the fenced failover choreography itself —
  fence, catch up, stop, promote — shared by the harness's ``cluster``
  engine, the chaos tests, and ``benchmarks/bench_failover.py``;
* the plan's :attr:`~ChaosPlan.timeline` and the schedule's fault
  trace record exactly what happened, so a run found by one seed can
  be replayed (:meth:`repro.faults.FaultSchedule.from_trace`) forever.

The choreography is deliberately **loss-free**: the primary is fenced
*first* (new writes get the retryable
:class:`~repro.core.errors.FencedError`; nothing new commits), the
replica is allowed to catch up to the primary's durable LSN (every
acknowledged commit — acks happen only after
:meth:`~repro.database.durability.DurabilityManager.ensure_durable` —
is therefore shipped), and only then is the primary stopped and the
replica promoted. That ordering is what makes the run *checkable*: the
snapshot-isolation oracle demands that every acknowledged write be
visible on the surviving timeline, which an unfenced ``kill -9`` of an
asynchronous primary cannot promise (its loss window is measured, not
verified — see ``benchmarks/bench_failover.py`` and the crash-promote
tests in ``tests/test_replication.py``).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.errors import ReplicationError
from repro.faults import FaultSchedule

__all__ = ["ChaosPlan", "fail_over"]

#: How long fail_over lets the replica chase the primary's durable LSN.
CATCH_UP_TIMEOUT = 30.0


class ChaosPlan:
    """One seeded chaos experiment for a harness run.

    *kill_after_ops* arms the primary kill: once the personas have
    completed that many ops in total, the harness's controller runs
    :func:`fail_over` and the workload continues against the promoted
    replica. ``None`` leaves the cluster alone (point faults only).
    *schedule* is the :class:`~repro.faults.FaultSchedule` installed
    for the run's duration (default: an empty one under *seed*, so the
    trace machinery is always live).

    The plan is also the experiment's record: :attr:`timeline` collects
    timestamped choreography events (fenced, caught_up, promoted, ...),
    :attr:`new_epoch` the fencing epoch the cluster ended on, and
    ``schedule.trace`` the exact point faults that fired.
    """

    def __init__(self, seed: int = 0, *,
                 kill_after_ops: Optional[int] = None,
                 schedule: Optional[FaultSchedule] = None,
                 catch_up_timeout: float = CATCH_UP_TIMEOUT):
        self.seed = seed
        self.kill_after_ops = kill_after_ops
        self.schedule = (schedule if schedule is not None
                         else FaultSchedule(seed))
        self.catch_up_timeout = catch_up_timeout
        self.timeline: list[dict] = []
        self.new_epoch: Optional[int] = None
        self._t0: Optional[float] = None

    def note(self, event: str, **fields) -> None:
        """Append one timestamped event to the experiment's timeline."""
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        entry = {"event": event, "t_s": round(now - self._t0, 4)}
        entry.update(fields)
        self.timeline.append(entry)

    def to_json(self) -> dict:
        """The full experiment record (for RunResult and bench output)."""
        return {
            "seed": self.seed,
            "kill_after_ops": self.kill_after_ops,
            "new_epoch": self.new_epoch,
            "timeline": list(self.timeline),
            "fault_rules": self.schedule.describe(),
            "fault_trace": list(self.schedule.trace),
        }

    def __repr__(self) -> str:
        return (f"ChaosPlan(seed={self.seed}, "
                f"kill_after_ops={self.kill_after_ops}, "
                f"events={len(self.timeline)})")


def fail_over(server, db, replica, *, plan: Optional[ChaosPlan] = None,
              timeout: float = CATCH_UP_TIMEOUT) -> int:
    """Fenced failover: fence the primary, catch up, stop, promote.

    *server* / *db* are the primary's :class:`~repro.server.DatabaseServer`
    and :class:`~repro.database.HistoricalDatabase`; *replica* the
    :class:`~repro.replication.ReplicaServer` to promote. The four
    steps, in the order that makes the hand-off loss-free:

    1. **fence** — the primary refuses every new write with the
       retryable :class:`~repro.core.errors.FencedError` (clients spin
       on rediscovery); the already-acknowledged stream keeps shipping;
    2. **catch up** — wait until the replica has applied the primary's
       durable LSN, which covers every acknowledged commit;
    3. **stop** — the primary's server shuts down and its database
       closes (the shipper link drops with it);
    4. **promote** — the replica bumps the fencing epoch and starts
       taking writes (:meth:`~repro.replication.ReplicaServer.promote`).

    Returns the new epoch. Raises
    :class:`~repro.core.errors.ReplicationError` if the replica cannot
    catch up within *timeout* seconds (the primary is left fenced but
    running — the operator, or the test, decides what is next).
    """
    note = plan.note if plan is not None else (lambda event, **f: None)
    server.fence()
    note("fenced", address="%s:%d" % server.address)
    target = db._durability.position[1]
    deadline = time.monotonic() + timeout
    while replica.applied[1] < target:
        if time.monotonic() >= deadline:
            raise ReplicationError(
                f"replica {replica.replica_id} stuck at LSN "
                f"{replica.applied[1]}, short of the primary's durable "
                f"{target} after {timeout:.3g}s; not promoting — that "
                f"would drop acknowledged commits")
        time.sleep(0.01)
    note("caught_up", lsn=target)
    server.stop()
    db.close()
    note("stopped_primary")
    epoch = replica.promote()
    note("promoted", address="%s:%d" % replica.address, epoch=epoch)
    if plan is not None:
        plan.new_epoch = epoch
    return epoch
