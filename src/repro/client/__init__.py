"""The client library — a remote catalog that feels embedded.

:func:`connect` opens a TCP connection to a :mod:`repro.server` and
returns a :class:`Client` whose surface mirrors
:class:`~repro.database.database.HistoricalDatabase`: the same
``query()`` (HRQL text plus ``:name`` bind parameters), the same
lifespan-phrased mutations (``insert`` / ``update`` / ``terminate`` /
``reincarnate``), ``transaction()`` sessions, ``prepare()``\\ d
statements, DDL, and ``checkpoint()``. Results come back *typed*:
query answers are real :class:`~repro.core.relation.HistoricalRelation`
/ :class:`~repro.core.lifespan.Lifespan` values (tuples travel in the
storage engine's exact record encoding, so a remote answer equals the
embedded answer byte for byte), and mutations return the resulting
:class:`~repro.core.tuples.HistoricalTuple` just like the embedded API.

Server-side errors surface as the matching
:class:`~repro.core.errors.HRDMError` subclass with the original
message, so error handling code is portable between embedded and
remote use. The HRQL shell exploits all of this: ``\\connect
HOST:PORT`` swaps its embedded catalog for a :class:`Client` and every
command keeps working, with identical rendering.

A :class:`Client` is **not** thread-safe — it is one session on one
socket, like one :class:`~repro.database.session.Transaction`. Open
one client per thread; the server gives each its own worker.

A dropped connection is transient, not fatal: the client reconnects
and transparently retries reads, while in-flight mutations surface the
retryable :class:`~repro.core.errors.ConnectionLostError` (their fate
is unknown — the write may or may not have committed before the drop).
And with read replicas running (:mod:`repro.replication`),
``connect(primary, replicas=[...])`` returns a :class:`RoutedClient`
that sends writes to the primary and fans reads out across the
replicas with read-your-writes intact.
"""

from __future__ import annotations

import socket
from typing import (Any, Callable, Iterator, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro import faults as faults_mod
from repro.core.domains import ValueDomain
from repro.core.errors import (ConnectionLostError, FencedError, HRDMError,
                               PromotionError, QueryError, ReplicaLagError,
                               StorageError)
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.server import protocol
from repro.storage import pager as pager_mod

__all__ = ["Client", "RemoteExplanation", "RemoteResult",
           "RemotePrepared", "RemoteTransaction", "RoutedClient",
           "RoutedPrepared", "connect"]

#: An address in any of the shapes connect() accepts.
Address = Union[str, Tuple[str, int]]

#: Frames safe to re-send verbatim after a transparent reconnect: pure
#: reads, session handshakes, PREPARE (re-parsing is harmless), BEGIN
#: (the dropped connection's empty transaction died with it), and
#: FLUSH (syncing twice syncs once). Mutating frames are excluded —
#: their first send may have committed before the drop.
_IDEMPOTENT_OPS = frozenset({
    "hello", "status", "query", "relations", "relation", "prepare",
    "begin", "flush",
})

#: Ceiling on one failover-rediscovery STATUS probe when the session
#: itself has no timeout: a candidate that accepts the connection but
#: never replies must not stall the election (see
#: :meth:`RoutedClient.rediscover`).
_PROBE_TIMEOUT = 2.0


def _parse_hostport(address: Address,
                    port: Optional[int] = None) -> Tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
    elif port is None:
        host, _, port_text = address.rpartition(":")
        if not host:
            raise StorageError(
                f"connect() needs HOST:PORT, got {address!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise StorageError(
                f"connect() needs a numeric port, got {port_text!r}"
            ) from None
    else:
        host = address
    return host, int(port)


def connect(address: Address,
            port: Optional[int] = None, *,
            timeout: Optional[float] = None,
            domains: Optional[Mapping[str, ValueDomain]] = None,
            replicas: Optional[Sequence[Address]] = None,
            replica_wait: float = 1.0,
            ) -> Union["Client", "RoutedClient"]:
    """Open a client session with a running database server.

    *address* is ``"host:port"``, or a host with *port* given
    separately, or a ``(host, port)`` pair — so both
    ``connect("localhost:7707")`` and ``connect(*server.address)``
    read naturally. *timeout* bounds each request round trip (seconds);
    *domains* restores membership enforcement for custom value domains
    in schemes crossing the wire (exactly as for
    ``HistoricalDatabase(domains=...)``).

    With *replicas* (addresses of read replicas of the same primary,
    in any of the shapes above) the result is a :class:`RoutedClient`
    instead: writes, transactions, and DDL go to the primary while
    reads round-robin across the replicas carrying the session's last
    commit LSN as a read-your-writes token. A replica that cannot
    cover the token within *replica_wait* seconds — or that is simply
    down — is skipped in favor of the next one, and finally of the
    primary itself, so routed reads degrade rather than fail.
    """
    host, port = _parse_hostport(address, port)
    if replicas:
        return RoutedClient(
            (host, port), [_parse_hostport(r) for r in replicas],
            timeout=timeout, domains=domains, replica_wait=replica_wait)
    return Client(host, port, timeout=timeout, domains=domains)


class RemoteExplanation:
    """An ``EXPLAIN [ANALYZE]`` answer rendered by the server.

    Only the rendering crosses the wire — the physical plan objects
    stay server-side — so this mirrors just the displayable part of
    :class:`~repro.planner.explain.PlanExplanation`.
    """

    def __init__(self, text: str):
        self.text = text

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"RemoteExplanation({self.text.splitlines()[0]!r}...)"


class RemoteResult:
    """One remote query answer — the wire twin of
    :class:`~repro.database.result.QueryResult`.

    Same ``kind`` tag, same typed accessors, same delegating dunders;
    ``relation`` / ``lifespan`` answers are real model objects, while
    ``plan`` answers carry the server-rendered
    :class:`RemoteExplanation`.
    """

    __slots__ = ("kind", "_value")

    def __init__(self, value):
        if isinstance(value, RemoteExplanation):
            self.kind = "plan"
        elif isinstance(value, Lifespan):
            self.kind = "lifespan"
        elif isinstance(value, HistoricalRelation):
            self.kind = "relation"
        else:  # pragma: no cover - guarded by the protocol decoder
            raise QueryError(f"not a query result value: {value!r}")
        self._value = value

    @property
    def value(self):
        """The raw underlying answer."""
        return self._value

    @property
    def relation(self) -> HistoricalRelation:
        """The relation answer; raises unless ``kind == "relation"``."""
        if self.kind != "relation":
            raise QueryError(f"result is a {self.kind}, not a relation")
        return self._value

    @property
    def lifespan(self) -> Lifespan:
        """The lifespan answer of a top-level ``WHEN`` query."""
        if self.kind != "lifespan":
            raise QueryError(f"result is a {self.kind}, not a lifespan")
        return self._value

    @property
    def explanation(self) -> RemoteExplanation:
        """The ``EXPLAIN [ANALYZE]`` rendering; ``kind == "plan"`` only."""
        if self.kind != "plan":
            raise QueryError(f"result is a {self.kind}, not a plan explanation")
        return self._value

    def rows(self) -> list[HistoricalTuple]:
        """The answer's historical tuples, as a list."""
        return list(self.relation)

    def snapshot(self, at: int) -> list[dict[str, Any]]:
        """The classical (flat) view of the relation answer at *at*."""
        return self.relation.snapshot(at)

    def __iter__(self) -> Iterator:
        if self.kind == "plan":
            raise QueryError("a plan explanation is not iterable")
        return iter(self._value)

    def __len__(self) -> int:
        if self.kind == "plan":
            raise QueryError("a plan explanation has no length")
        return len(self._value)

    def __bool__(self) -> bool:
        return True if self.kind == "plan" else bool(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RemoteResult):
            return self._value == other._value
        if hasattr(other, "value"):  # a QueryResult
            return self._value == other.value
        return self._value == other

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        return str(self._value)

    def __repr__(self) -> str:
        return f"RemoteResult({self.kind}, {self._value!r})"


class Client:
    """One session with a database server (see :func:`connect`)."""

    #: Lets generic callers (the HRQL shell) tell a remote catalog from
    #: an embedded one where the difference matters (it rarely does).
    remote = True

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = None,
                 domains: Optional[Mapping[str, ValueDomain]] = None):
        self._domains = dict(domains or {})
        self._host, self._port, self._timeout = host, int(port), timeout
        self._address = (host, int(port))
        self._sock: Optional[socket.socket] = None
        self._buffer = bytearray()
        self._closed = False
        self._txn_active = False
        #: Bumped on every connection loss. Session state living on the
        #: server's side of the socket (prepared statements, an open
        #: transaction) dies with the connection; objects holding onto
        #: it compare their birth epoch against this to notice.
        self._epoch = 0
        #: The LSN of this session's last acknowledged write — the
        #: read-your-writes token a routed read hands to a replica.
        self.last_commit_lsn = 0
        #: The highest replication fencing epoch any response carried.
        #: Distinct from ``_epoch`` (the connection generation above):
        #: this one identifies *which primacy* the session has seen,
        #: and rises when a failover promotes a replica
        #: (:meth:`RoutedClient.rediscover` picks the writable server
        #: with the highest one).
        self.cluster_epoch = 0
        #: The server's database name.
        self.name: str = ""
        #: True when the served database is durable (``\\checkpoint`` works).
        self.durable: bool = False
        #: "primary" or "replica" (read-only), from the HELLO frame.
        self.role: str = "primary"
        self._dial()

    # -- plumbing -----------------------------------------------------------

    def _dial(self) -> None:
        """Connect and shake hands; the socket is live on return."""
        faults_mod.fault_connect("client")
        sock = faults_mod.wrap_socket(
            socket.create_connection((self._host, self._port),
                                     timeout=self._timeout), "client")
        self._sock = sock
        self._buffer.clear()
        try:
            protocol.send_frame(sock, {"op": "hello",
                                       "client": "repro-client"})
            hello = protocol.recv_frame(sock, self._buffer)
            if hello is None:
                raise protocol.ProtocolError(
                    "the server closed the connection during the handshake")
        except (OSError, protocol.ProtocolError) as exc:
            self._drop()
            raise ConnectionLostError(
                f"handshake with {self._host}:{self._port} failed: {exc}"
            ) from exc
        if not hello.get("ok"):
            raise protocol.error_from_wire(hello)
        self.name = hello.get("database", "")
        self.durable = bool(hello.get("durable"))
        self.role = hello.get("role", "primary")
        self.cluster_epoch = max(self.cluster_epoch,
                                 int(hello.get("epoch", 0)))

    def _drop(self) -> None:
        """Forget a dead socket (and the server-side session with it)."""
        sock, self._sock = self._sock, None
        self._buffer.clear()
        self._epoch += 1
        self._txn_active = False
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - nothing left to release
                pass

    def _reconnect(self) -> None:
        try:
            self._dial()
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot reach the server at {self._host}:{self._port}: "
                f"{exc}") from exc

    def request(self, payload: Mapping[str, Any]) -> dict:
        """One round trip: send a frame, receive and check the response.

        Raises the server-reported :class:`HRDMError` subclass on an
        ERROR frame. A dropped connection is transient, not fatal: the
        client reconnects, and idempotent frames (reads, PREPARE,
        BEGIN, FLUSH) are retried once transparently. A mutating frame
        caught mid-drop instead surfaces the retryable
        :class:`~repro.core.errors.ConnectionLostError` — its fate is
        unknown (the write may have committed just before the drop),
        so only the caller can decide whether re-running is safe.
        """
        if self._closed:
            raise StorageError("the client connection has been closed")
        op = payload.get("op")
        for attempt in (0, 1):
            if self._sock is None:
                self._reconnect()
            try:
                protocol.send_frame(self._sock, payload)
                response = protocol.recv_frame(self._sock, self._buffer)
                if response is None:
                    raise protocol.ProtocolError(
                        "the server closed the connection")
            except (OSError, protocol.ProtocolError) as exc:
                self._drop()
                if attempt == 0 and op in _IDEMPOTENT_OPS:
                    continue
                raise ConnectionLostError(
                    f"connection to {self._host}:{self._port} was lost "
                    f"mid-{op}: {exc}") from exc
            if not response.get("ok"):
                raise protocol.error_from_wire(response)
            epoch = response.get("epoch")
            if epoch is not None:
                self.cluster_epoch = max(self.cluster_epoch, int(epoch))
            lsn = response.get("lsn")
            if lsn is not None and op in ("execute", "commit"):
                self.last_commit_lsn = max(self.last_commit_lsn, int(lsn))
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the session socket (idempotent)."""
        if not self._closed:
            self._closed = True
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - nothing to release
                    pass
                self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- querying -----------------------------------------------------------

    @staticmethod
    def _with_wait(payload: dict, wait_lsn: Optional[int],
                   wait_timeout: Optional[float]) -> dict:
        """Attach a read-your-writes token to a read frame.

        A replica holds the read until its applied LSN covers
        *wait_lsn*, raising the retryable
        :class:`~repro.core.errors.ReplicaLagError` after *wait_timeout*
        seconds; a primary satisfies any token trivially. A zero/None
        token (no writes this session) needs no waiting at all.
        """
        if wait_lsn:
            payload["wait_lsn"] = int(wait_lsn)
            if wait_timeout is not None:
                payload["wait_timeout"] = wait_timeout
        return payload

    def query(self, source: str,
              params: Optional[Mapping[str, Any]] = None, *,
              wait_lsn: Optional[int] = None,
              wait_timeout: Optional[float] = None) -> RemoteResult:
        """Run an HRQL statement on the server; typed result.

        Mirrors :meth:`HistoricalDatabase.query`: *source* is HRQL
        text (``EXPLAIN [ANALYZE]`` included), *params* binds ``:name``
        parameters server-side through the same machinery. *wait_lsn*
        (usually another client's :attr:`last_commit_lsn`) makes a
        replica hold the read until it has applied that far — see
        :meth:`_with_wait`.
        """
        payload: dict[str, Any] = {"op": "query", "q": source}
        if params:
            payload["params"] = dict(params)
        self._with_wait(payload, wait_lsn, wait_timeout)
        return self._decode_result(self.request(payload))

    def prepare(self, source: str) -> "RemotePrepared":
        """Parse *source* once server-side, for repeated runs."""
        response = self.request({"op": "prepare", "q": source})
        return RemotePrepared(self, response["id"], source,
                              tuple(response["params"]))

    def status(self) -> dict:
        """The server's STATUS frame: role, database, current
        ``(generation, lsn)`` position, and — on a primary — the
        per-replica lag table; on a replica, its primary link health."""
        return self.request({"op": "status"})

    def _decode_result(self, response: Mapping) -> RemoteResult:
        kind = response.get("kind")
        if kind == "relation":
            return RemoteResult(
                protocol.relation_from_wire(response, self._domains))
        if kind == "lifespan":
            return RemoteResult(
                protocol.lifespan_from_wire(response["lifespan"]))
        if kind == "plan":
            return RemoteResult(RemoteExplanation(response["text"]))
        raise protocol.ProtocolError(f"unknown result kind {kind!r}")

    # -- mutations (the HistoricalDatabase surface) -------------------------

    def _tuple_of(self, response: Mapping) -> HistoricalTuple:
        scheme = pager_mod.scheme_from_dict(response["scheme"], self._domains)
        return protocol.tuple_from_wire(response["tuple"], scheme)

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Insert a new object (see :meth:`HistoricalDatabase.insert`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "insert", "relation": name,
            "lifespan": protocol.lifespan_to_wire(lifespan),
            "values": dict(values),
        }))

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """New values from *at* on (see :meth:`HistoricalDatabase.update`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "update", "relation": name,
            "key": list(key), "at": at, "changes": dict(changes),
        }))

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """End an incarnation (see :meth:`HistoricalDatabase.terminate`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "terminate", "relation": name,
            "key": list(key), "at": at,
        }))

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Re-open a history (see :meth:`HistoricalDatabase.reincarnate`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "reincarnate", "relation": name,
            "key": list(key),
            "lifespan": protocol.lifespan_to_wire(lifespan),
            "values": dict(values),
        }))

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Install an evolved scheme (see
        :meth:`HistoricalDatabase.evolve_scheme`)."""
        self.request({
            "op": "execute", "action": "evolve", "relation": name,
            "scheme": pager_mod.scheme_to_dict(new_scheme),
        })

    def create_relation(self, scheme: RelationScheme, tuples: Any = (), *,
                        storage: str = "memory", **backend_options) -> None:
        """Create a relation (see
        :meth:`HistoricalDatabase.create_relation`)."""
        self.request({
            "op": "execute", "action": "create",
            "scheme": pager_mod.scheme_to_dict(scheme),
            "tuples": [protocol.tuple_to_wire(t) for t in tuples],
            "storage": storage, "options": dict(backend_options),
        })

    def drop_relation(self, name: str) -> None:
        """Remove a relation (see
        :meth:`HistoricalDatabase.drop_relation`)."""
        self.request({"op": "execute", "action": "drop", "relation": name})

    # -- transactions --------------------------------------------------------

    def transaction(self) -> "RemoteTransaction":
        """Open a server-side buffered transaction for this session.

        Mirrors :meth:`HistoricalDatabase.transaction`: mutations made
        through the returned session buffer server-side and commit
        atomically (one WAL record) when the ``with`` block exits —
        or roll back on any exception.

        The session is snapshot-isolated and optimistic: COMMIT can
        lose its first-committer-wins race against a concurrent writer
        and raise the retryable
        :class:`~repro.core.errors.ConflictError` — the server has
        already rolled the transaction back, so simply open a new one
        and re-run (:meth:`run_transaction` wraps that loop).
        """
        self.request({"op": "begin"})
        self._txn_active = True
        return RemoteTransaction(self)

    def run_transaction(self, body, *, attempts: int = 5):
        """Run *body* in a remote transaction, retrying on conflicts.

        The wire twin of :meth:`HistoricalDatabase.run_transaction`:
        *body* receives the open :class:`RemoteTransaction`; a COMMIT
        that loses its first-committer-wins race
        (:class:`~repro.core.errors.ConflictError`) is retried against
        a fresh snapshot up to *attempts* times, then the final
        conflict propagates. A connection drop *before* COMMIT is also
        retried — the server rolled the half-built transaction back
        when the session died, so re-running the body is safe. A drop
        *during* COMMIT itself is not: the outcome is ambiguous (the
        commit may have applied just before the drop), so the
        retryable :class:`~repro.core.errors.ConnectionLostError`
        propagates for the caller to resolve. Any other exception
        rolls back and propagates immediately. *body* must be safe to
        re-run.
        """
        from repro.core.errors import ConflictError

        last = max(1, attempts) - 1
        for attempt in range(max(1, attempts)):
            try:
                txn = self.transaction()
            except ConnectionLostError:
                if attempt == last:
                    raise
                continue
            try:
                result = body(txn)
            except ConnectionLostError:
                if txn.state == "active":
                    txn.rollback()  # wire no-op when the session is gone
                if attempt == last:
                    raise
                continue
            except BaseException:
                if txn.state == "active":
                    txn.rollback()
                raise
            if txn.state != "active":  # body finished the session itself
                return result
            try:
                txn.commit()
            except ConflictError:
                if attempt == last:
                    raise
                continue
            return result

    # -- failover ------------------------------------------------------------

    def promote(self) -> int:
        """Promote the connected replica to primary; the new epoch.

        The wire form of
        :meth:`repro.replication.ReplicaServer.promote` — only a
        replica server accepts it
        (:class:`~repro.core.errors.PromotionError` otherwise). After
        a successful promotion this same connection takes writes.
        """
        epoch = int(self.request({"op": "promote"})["epoch"])
        self.role = "primary"
        self.cluster_epoch = max(self.cluster_epoch, epoch)
        return epoch

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot + truncate the server's WAL; returns the generation."""
        return self.request({"op": "checkpoint"})["generation"]

    def flush(self) -> None:
        """Force the server's acknowledged commits to stable storage."""
        self.request({"op": "flush"})

    # -- catalog introspection (the shell's surface) -------------------------

    def relations_info(self, *, wait_lsn: Optional[int] = None,
                       wait_timeout: Optional[float] = None) -> list[dict]:
        """Per-relation summaries: name, tuple count, lifespan, storage."""
        summaries = self.request(self._with_wait(
            {"op": "relations"}, wait_lsn, wait_timeout))["relations"]
        for summary in summaries:
            summary["lifespan"] = protocol.lifespan_from_wire(
                summary["lifespan"])
        return summaries

    def relation(self, name: str, *, wait_lsn: Optional[int] = None,
                 wait_timeout: Optional[float] = None) -> HistoricalRelation:
        """Fetch the named relation's full current value."""
        response = self.request(self._with_wait(
            {"op": "relation", "name": name}, wait_lsn, wait_timeout))
        return protocol.relation_from_wire(response, self._domains)

    def storage(self, name: str, *, wait_lsn: Optional[int] = None,
                wait_timeout: Optional[float] = None) -> str:
        """The storage kind of the named relation ("memory" or "disk")."""
        response = self.request(self._with_wait(
            {"op": "relation", "name": name}, wait_lsn, wait_timeout))
        return response["storage"]

    def __getitem__(self, name: str) -> HistoricalRelation:
        return self.relation(name)

    def __iter__(self) -> Iterator[str]:
        return iter(summary["name"] for summary in self.relations_info())

    def __len__(self) -> int:
        return len(self.relations_info())

    def __contains__(self, name: object) -> bool:
        return any(summary["name"] == name
                   for summary in self.relations_info())

    def __repr__(self) -> str:
        host, port = self._address
        state = "closed" if self._closed else "open"
        return f"Client({self.name!r} at {host}:{port}, {state})"


class RemotePrepared:
    """A statement parsed (and plan-cached) server-side.

    Survives reconnects: the server-side statement dies with its
    connection, so a run that finds the client's epoch has moved
    re-sends PREPARE transparently before executing.
    """

    def __init__(self, client: Client, statement_id: int, source: str,
                 param_names: Tuple[str, ...]):
        self._client = client
        self._id = statement_id
        self._epoch = client._epoch
        self.source = source
        #: The ``:name`` parameters the statement expects.
        self.param_names = param_names

    def query(self, params: Optional[Mapping[str, Any]] = None, *,
              wait_lsn: Optional[int] = None,
              wait_timeout: Optional[float] = None) -> RemoteResult:
        """Bind and run the prepared statement; typed result."""
        for attempt in (0, 1):
            if self._epoch != self._client._epoch:
                self._reprepare()
            payload: dict[str, Any] = {"op": "query", "prepared": self._id}
            if params:
                payload["params"] = dict(params)
            Client._with_wait(payload, wait_lsn, wait_timeout)
            try:
                return self._client._decode_result(
                    self._client.request(payload))
            except protocol.ProtocolError:
                # The request was transparently retried over a fresh
                # connection, where this statement id no longer exists.
                if attempt == 0 and self._epoch != self._client._epoch:
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _reprepare(self) -> None:
        response = self._client.request({"op": "prepare", "q": self.source})
        self._id = response["id"]
        self._epoch = self._client._epoch

    def __repr__(self) -> str:
        names = ", ".join(f":{n}" for n in self.param_names) or "no parameters"
        return f"RemotePrepared({self.source!r}, {names})"


class RemoteTransaction:
    """A server-side buffered transaction driven over the wire.

    The buffering (and the commit-time validation, constraint sweep,
    batching, and atomic rollback) all happen in the server's
    :class:`~repro.database.session.Transaction`; this object just
    routes the same mutation calls through the open session. A commit
    that loses its first-committer-wins race raises the retryable
    :class:`~repro.core.errors.ConflictError` with the session already
    rolled back server-side — see :meth:`Client.run_transaction`.
    """

    def __init__(self, client: Client):
        self._client = client
        self._epoch = client._epoch
        self._state = "active"

    @property
    def state(self) -> str:
        """"active", "committed", or "rolled-back"."""
        return self._state

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self._state == "active":
                self.rollback()
            return False
        if self._state == "active":
            self.commit()
        return False

    def commit(self) -> None:
        """Validate and apply every buffered change atomically on the
        server; raises :class:`~repro.core.errors.ConflictError` (state
        already rolled back) on a lost first-committer-wins race."""
        self._finish("commit")

    def rollback(self) -> None:
        """Discard every buffered change."""
        self._finish("rollback")

    def _finish(self, op: str) -> None:
        if self._state != "active":
            from repro.core.errors import TransactionError

            raise TransactionError(f"transaction already {self._state}")
        if self._epoch != self._client._epoch:
            # The connection died under this transaction; the server
            # rolled its buffered changes back when the session ended.
            # A rollback is therefore already done; a commit was lost
            # before it was ever sent.
            self._state = "rolled-back"
            if op == "commit":
                raise ConnectionLostError(
                    "the connection dropped before COMMIT was sent; the "
                    "server rolled the transaction back — re-run it")
            return
        try:
            self._client.request({"op": op})
        except ConnectionLostError:
            # The drop itself tore the server-side session down. For a
            # rollback that *is* the requested outcome; for a commit
            # the outcome is ambiguous (the frame may have applied
            # before the drop), so surface it.
            self._state = "rolled-back"
            if op == "commit":
                raise
            return
        except HRDMError:
            self._state = "rolled-back"
            self._client._txn_active = False
            raise
        self._state = "committed" if op == "commit" else "rolled-back"
        self._client._txn_active = False

    def _ensure_active(self) -> None:
        if self._state != "active":
            from repro.core.errors import TransactionError

            raise TransactionError(f"transaction already {self._state}")
        if self._epoch != self._client._epoch:
            self._state = "rolled-back"
            raise ConnectionLostError(
                "the connection dropped mid-transaction; the server "
                "rolled its buffered changes back — open a new "
                "transaction and re-run")

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a birth (see :meth:`Transaction.insert`)."""
        self._ensure_active()
        return self._client.insert(name, lifespan, values)

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer new values (see :meth:`Transaction.update`)."""
        self._ensure_active()
        return self._client.update(name, key, at, changes)

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """Buffer a death (see :meth:`Transaction.terminate`)."""
        self._ensure_active()
        return self._client.terminate(name, key, at)

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a rebirth (see :meth:`Transaction.reincarnate`)."""
        self._ensure_active()
        return self._client.reincarnate(name, key, lifespan, values)

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Buffer a schema evolution (see
        :meth:`Transaction.evolve_scheme`)."""
        self._ensure_active()
        self._client.evolve_scheme(name, new_scheme)

    def __repr__(self) -> str:
        return f"RemoteTransaction({self._state})"


class RoutedClient:
    """A replica-aware session: writes to the primary, reads fanned out.

    Mirrors the :class:`Client` surface so the shell and application
    code stay oblivious. Mutations, transactions, DDL, and durability
    frames always go to the primary; ``query()`` and catalog reads
    round-robin across the replicas. Every routed read carries the
    primary session's :attr:`~Client.last_commit_lsn` as a
    read-your-writes token — the replica holds the read until its
    applier covers that LSN, so this session always sees its own
    writes. A replica still short of the token after *replica_wait*
    seconds (or simply unreachable) is skipped for the next one, and
    when every replica is out the read runs on the primary itself:
    routed reads degrade, they do not fail.

    Replica connections are lazy and self-healing — a replica that is
    down is skipped now and re-dialed on a later read.

    The session also survives **failover**: a write refused with the
    retryable :class:`~repro.core.errors.FencedError` (the primary's
    epoch has been superseded) triggers :meth:`rediscover` — every
    known address is probed and the writable server with the highest
    fencing epoch becomes the new primary — and the write is re-sent
    there. A write that dies with
    :class:`~repro.core.errors.ConnectionLostError` also rediscovers,
    but re-raises: its fate on the old primary is unknown, so only the
    caller can decide to re-run. :meth:`promote` drives the planned
    form: promote a chosen replica, then re-route this session to it.
    """

    #: Generic callers (the HRQL shell) treat this like any remote catalog.
    remote = True

    def __init__(self, primary: Tuple[str, int],
                 replicas: Sequence[Tuple[str, int]], *,
                 timeout: Optional[float] = None,
                 domains: Optional[Mapping[str, ValueDomain]] = None,
                 replica_wait: float = 1.0):
        #: The write session; also the read of last resort.
        self.primary = Client(*primary, timeout=timeout, domains=domains)
        self.replica_wait = replica_wait
        self._timeout = timeout
        self._domains = domains
        self._replicas: list[dict[str, Any]] = [
            {"address": (host, int(port)), "client": None}
            for host, port in replicas]
        self._rr = 0
        self._closed = False

    # -- the primary's identity, verbatim -----------------------------------

    @property
    def name(self) -> str:
        """The served database's name (from the primary)."""
        return self.primary.name

    @property
    def durable(self) -> bool:
        """Whether the primary's database is durable."""
        return self.primary.durable

    @property
    def last_commit_lsn(self) -> int:
        """The session's read-your-writes token (primary-side)."""
        return self.primary.last_commit_lsn

    @property
    def replica_addresses(self) -> list[Tuple[str, int]]:
        """The configured replica addresses, in routing order."""
        return [entry["address"] for entry in self._replicas]

    def close(self) -> None:
        """Close every connection (idempotent)."""
        self._closed = True
        for entry in self._replicas:
            if entry["client"] is not None:
                entry["client"].close()
                entry["client"] = None
        self.primary.close()

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- read routing --------------------------------------------------------

    def _read_targets(self) -> Iterator[Client]:
        """Replica sessions in round-robin order.

        A replica whose connection previously failed is re-dialed
        here; one that is unreachable right now is skipped (and tried
        again on a later read).
        """
        count = len(self._replicas)
        if count:
            start, self._rr = self._rr, (self._rr + 1) % count
        for offset in range(count):
            entry = self._replicas[(start + offset) % count]
            client = entry["client"]
            if client is None or client._closed:
                try:
                    client = Client(*entry["address"], timeout=self._timeout,
                                    domains=self._domains)
                except (OSError, HRDMError):
                    continue
                entry["client"] = client
            yield client

    def _routed(self, read: Callable[[Client, Optional[int],
                                      Optional[float]], Any]) -> Any:
        """Run *read* on the next live replica, else on the primary.

        *read* is called as ``read(client, wait_lsn, wait_timeout)``;
        lag past the token and connection loss both mean "try the next
        one". The primary fallback drops the token — the primary is
        the token's source, so it trivially covers it.
        """
        token = self.primary.last_commit_lsn
        for client in self._read_targets():
            try:
                return read(client, token, self.replica_wait)
            except (ReplicaLagError, ConnectionLostError):
                continue
        return read(self.primary, None, None)

    def query(self, source: str,
              params: Optional[Mapping[str, Any]] = None) -> RemoteResult:
        """Run a read on a replica (see :meth:`Client.query`).

        Note that HRQL is read-only — every statement is routable."""
        return self._routed(lambda c, lsn, t: c.query(
            source, params, wait_lsn=lsn, wait_timeout=t))

    def prepare(self, source: str) -> "RoutedPrepared":
        """Prepare *source* for routed repeated runs."""
        return RoutedPrepared(self, source)

    def relations_info(self) -> list[dict]:
        """Per-relation summaries, read from a replica."""
        return self._routed(lambda c, lsn, t: c.relations_info(
            wait_lsn=lsn, wait_timeout=t))

    def relation(self, name: str) -> HistoricalRelation:
        """The named relation's full current value, from a replica."""
        return self._routed(lambda c, lsn, t: c.relation(
            name, wait_lsn=lsn, wait_timeout=t))

    def storage(self, name: str) -> str:
        """The named relation's storage kind, from a replica."""
        return self._routed(lambda c, lsn, t: c.storage(
            name, wait_lsn=lsn, wait_timeout=t))

    def status(self) -> dict:
        """The primary's STATUS frame — includes the per-replica lag
        table the shell's ``\\replicas`` renders."""
        return self.primary.status()

    def __getitem__(self, name: str) -> HistoricalRelation:
        return self.relation(name)

    def __iter__(self) -> Iterator[str]:
        return iter(summary["name"] for summary in self.relations_info())

    def __len__(self) -> int:
        return len(self.relations_info())

    def __contains__(self, name: object) -> bool:
        return any(summary["name"] == name
                   for summary in self.relations_info())

    # -- failover ------------------------------------------------------------

    def rediscover(self) -> bool:
        """Find the current primary among every address this session knows.

        Probes the configured primary and each replica address with a
        STATUS frame and elects the **writable server with the highest
        fencing epoch** — exactly the node a fenced ex-primary's
        :class:`~repro.core.errors.FencedError` points away from. When
        the winner differs from the current primary, the session is
        re-routed: a fresh write connection is opened there, the
        read-your-writes token is capped at the new primary's position
        (acknowledged commits the old primary never shipped are not on
        the surviving timeline), the promoted address leaves the read
        rotation, and the demoted one joins it (it will serve reads
        again once rejoined as a replica). Returns True when a writable
        primary is connected, False when none answered.

        Every probe runs under a bounded timeout even when the session
        itself has none: rediscovery races an outage, and one node that
        *accepts* the connection but never answers the STATUS frame (a
        half-dead server, a wedged promotion) must cost one probe
        window, not hang the whole election forever.
        """
        probe_timeout = (self._timeout if self._timeout is not None
                         else _PROBE_TIMEOUT)
        current = self.primary._address
        candidates: list[Tuple[str, int]] = []
        for address in [current] + self.replica_addresses:
            if address not in candidates:
                candidates.append(address)
        best: Optional[Tuple[int, int, Tuple[str, int]]] = None
        for address in candidates:
            try:
                probe = Client(*address, timeout=probe_timeout,
                               domains=self._domains)
            except (OSError, HRDMError):
                continue
            try:
                status = probe.status()
            except (OSError, HRDMError):
                continue
            finally:
                probe.close()
            writable = (status.get("role") == "primary"
                        and not status.get("read_only")
                        and not status.get("fenced"))
            epoch = int(status.get("epoch", 0))
            if writable and (best is None or epoch > best[0]):
                best = (epoch, int(status.get("lsn", 0)), address)
        if best is None:
            return False
        epoch, lsn, address = best
        if address == current:
            return True  # the session's own primary is (still) it
        old = self.primary
        self.primary = Client(*address, timeout=self._timeout,
                              domains=self._domains)
        self.primary.last_commit_lsn = min(old.last_commit_lsn, lsn)
        self.primary.cluster_epoch = max(old.cluster_epoch, epoch)
        old.close()
        for entry in self._replicas:
            if entry["address"] == address and entry["client"] is not None:
                entry["client"].close()
        self._replicas = [entry for entry in self._replicas
                          if entry["address"] != address]
        if all(entry["address"] != current for entry in self._replicas):
            self._replicas.append({"address": current, "client": None})
        self._rr = 0
        return True

    def promote(self, address: Optional[Address] = None) -> int:
        """Planned failover: promote a replica, re-route this session.

        Sends PROMOTE to *address* (default: the first configured
        replica), then :meth:`rediscover`\\ s so subsequent writes go to
        the new primary. Returns the new fencing epoch. Raises
        :class:`~repro.core.errors.PromotionError` when there is no
        replica to promote (or the target refuses).
        """
        if address is None:
            if not self._replicas:
                raise PromotionError(
                    "this session has no replica addresses to promote")
            target = self._replicas[0]["address"]
        else:
            target = _parse_hostport(address)
        probe = Client(*target, timeout=self._timeout, domains=self._domains)
        try:
            epoch = probe.promote()
        finally:
            probe.close()
        self.rediscover()
        return epoch

    def _write(self, action: Callable[[], Any]) -> Any:
        """Run *action* against the primary, failing over when fenced.

        A :class:`~repro.core.errors.FencedError` proves the write was
        refused (nothing committed), so after a successful
        :meth:`rediscover` it is safe to re-send on the new primary. A
        :class:`~repro.core.errors.ConnectionLostError` is ambiguous —
        the write may have landed before the drop — so the session
        rediscovers (the caller's retry will route correctly) but the
        retryable error still propagates.
        """
        try:
            return action()
        except FencedError:
            if not self.rediscover():
                raise
            return action()
        except ConnectionLostError:
            self.rediscover()
            raise

    # -- writes: straight to the (current) primary ---------------------------

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Insert on the primary (see :meth:`Client.insert`)."""
        return self._write(
            lambda: self.primary.insert(name, lifespan, values))

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Update on the primary (see :meth:`Client.update`)."""
        return self._write(
            lambda: self.primary.update(name, key, at, changes))

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """Terminate on the primary (see :meth:`Client.terminate`)."""
        return self._write(lambda: self.primary.terminate(name, key, at))

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Reincarnate on the primary (see :meth:`Client.reincarnate`)."""
        return self._write(
            lambda: self.primary.reincarnate(name, key, lifespan, values))

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Evolve a scheme on the primary (see
        :meth:`Client.evolve_scheme`)."""
        self._write(lambda: self.primary.evolve_scheme(name, new_scheme))

    def create_relation(self, scheme: RelationScheme, tuples: Any = (), *,
                        storage: str = "memory", **backend_options) -> None:
        """Create a relation on the primary (see
        :meth:`Client.create_relation`)."""
        self._write(lambda: self.primary.create_relation(
            scheme, tuples, storage=storage, **backend_options))

    def drop_relation(self, name: str) -> None:
        """Drop a relation on the primary (see
        :meth:`Client.drop_relation`)."""
        self._write(lambda: self.primary.drop_relation(name))

    def transaction(self) -> RemoteTransaction:
        """Open a transaction on the primary (see
        :meth:`Client.transaction`). BEGIN against a fenced ex-primary
        fails over like any write; the open session then lives on the
        new primary."""
        return self._write(lambda: self.primary.transaction())

    def run_transaction(self, body, *, attempts: int = 5):
        """Run *body* transactionally on the primary (see
        :meth:`Client.run_transaction`). A fenced primary mid-run
        aborts the attempt cleanly, so re-running the whole loop on
        the rediscovered primary is safe."""
        return self._write(
            lambda: self.primary.run_transaction(body, attempts=attempts))

    def checkpoint(self) -> int:
        """Checkpoint the primary (replicas mirror the generation
        switch through the stream)."""
        return self._write(lambda: self.primary.checkpoint())

    def flush(self) -> None:
        """Flush the primary's acknowledged commits to stable storage."""
        self._write(lambda: self.primary.flush())

    def __repr__(self) -> str:
        host, port = self.primary._address
        state = "closed" if self._closed else "open"
        return (f"RoutedClient({self.name!r} at {host}:{port} + "
                f"{len(self._replicas)} replicas, {state})")


class RoutedPrepared:
    """A prepared statement that routes like :meth:`RoutedClient.query`.

    The statement is prepared lazily on each server it actually runs
    on (ids are per-connection), cached per target, and re-prepared
    after reconnects by the underlying :class:`RemotePrepared`.
    """

    def __init__(self, routed: RoutedClient, source: str):
        self._routed = routed
        self.source = source
        self._primary = routed.primary.prepare(source)
        #: The ``:name`` parameters the statement expects.
        self.param_names = self._primary.param_names
        self._per_target: dict[Tuple[str, int],
                               Tuple[Client, RemotePrepared]] = {}

    def query(self, params: Optional[Mapping[str, Any]] = None
              ) -> RemoteResult:
        """Bind and run on the next live replica, else the primary."""
        routed = self._routed
        token = routed.primary.last_commit_lsn
        for client in routed._read_targets():
            try:
                cached = self._per_target.get(client._address)
                if cached is None or cached[0] is not client:
                    prepared = client.prepare(self.source)
                    self._per_target[client._address] = (client, prepared)
                else:
                    prepared = cached[1]
                return prepared.query(params, wait_lsn=token,
                                      wait_timeout=routed.replica_wait)
            except (ReplicaLagError, ConnectionLostError):
                continue
        return self._primary.query(params)

    def __repr__(self) -> str:
        names = ", ".join(f":{n}" for n in self.param_names) or "no parameters"
        return f"RoutedPrepared({self.source!r}, {names})"
