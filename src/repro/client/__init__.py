"""The client library — a remote catalog that feels embedded.

:func:`connect` opens a TCP connection to a :mod:`repro.server` and
returns a :class:`Client` whose surface mirrors
:class:`~repro.database.database.HistoricalDatabase`: the same
``query()`` (HRQL text plus ``:name`` bind parameters), the same
lifespan-phrased mutations (``insert`` / ``update`` / ``terminate`` /
``reincarnate``), ``transaction()`` sessions, ``prepare()``\\ d
statements, DDL, and ``checkpoint()``. Results come back *typed*:
query answers are real :class:`~repro.core.relation.HistoricalRelation`
/ :class:`~repro.core.lifespan.Lifespan` values (tuples travel in the
storage engine's exact record encoding, so a remote answer equals the
embedded answer byte for byte), and mutations return the resulting
:class:`~repro.core.tuples.HistoricalTuple` just like the embedded API.

Server-side errors surface as the matching
:class:`~repro.core.errors.HRDMError` subclass with the original
message, so error handling code is portable between embedded and
remote use. The HRQL shell exploits all of this: ``\\connect
HOST:PORT`` swaps its embedded catalog for a :class:`Client` and every
command keeps working, with identical rendering.

A :class:`Client` is **not** thread-safe — it is one session on one
socket, like one :class:`~repro.database.session.Transaction`. Open
one client per thread; the server gives each its own worker.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator, Mapping, Optional, Tuple, Union

from repro.core.domains import ValueDomain
from repro.core.errors import HRDMError, QueryError, StorageError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.server import protocol
from repro.storage import pager as pager_mod

__all__ = ["Client", "RemoteExplanation", "RemoteResult",
           "RemotePrepared", "RemoteTransaction", "connect"]


def connect(address: Union[str, Tuple[str, int]],
            port: Optional[int] = None, *,
            timeout: Optional[float] = None,
            domains: Optional[Mapping[str, ValueDomain]] = None) -> "Client":
    """Open a client session with a running database server.

    *address* is ``"host:port"``, or a host with *port* given
    separately, or a ``(host, port)`` pair — so both
    ``connect("localhost:7707")`` and ``connect(*server.address)``
    read naturally. *timeout* bounds each request round trip (seconds);
    *domains* restores membership enforcement for custom value domains
    in schemes crossing the wire (exactly as for
    ``HistoricalDatabase(domains=...)``).
    """
    if isinstance(address, tuple):
        host, port = address
    elif port is None:
        host, _, port_text = address.rpartition(":")
        if not host:
            raise StorageError(
                f"connect() needs HOST:PORT, got {address!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise StorageError(
                f"connect() needs a numeric port, got {port_text!r}"
            ) from None
    else:
        host = address
    return Client(host, int(port), timeout=timeout, domains=domains)


class RemoteExplanation:
    """An ``EXPLAIN [ANALYZE]`` answer rendered by the server.

    Only the rendering crosses the wire — the physical plan objects
    stay server-side — so this mirrors just the displayable part of
    :class:`~repro.planner.explain.PlanExplanation`.
    """

    def __init__(self, text: str):
        self.text = text

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"RemoteExplanation({self.text.splitlines()[0]!r}...)"


class RemoteResult:
    """One remote query answer — the wire twin of
    :class:`~repro.database.result.QueryResult`.

    Same ``kind`` tag, same typed accessors, same delegating dunders;
    ``relation`` / ``lifespan`` answers are real model objects, while
    ``plan`` answers carry the server-rendered
    :class:`RemoteExplanation`.
    """

    __slots__ = ("kind", "_value")

    def __init__(self, value):
        if isinstance(value, RemoteExplanation):
            self.kind = "plan"
        elif isinstance(value, Lifespan):
            self.kind = "lifespan"
        elif isinstance(value, HistoricalRelation):
            self.kind = "relation"
        else:  # pragma: no cover - guarded by the protocol decoder
            raise QueryError(f"not a query result value: {value!r}")
        self._value = value

    @property
    def value(self):
        """The raw underlying answer."""
        return self._value

    @property
    def relation(self) -> HistoricalRelation:
        """The relation answer; raises unless ``kind == "relation"``."""
        if self.kind != "relation":
            raise QueryError(f"result is a {self.kind}, not a relation")
        return self._value

    @property
    def lifespan(self) -> Lifespan:
        """The lifespan answer of a top-level ``WHEN`` query."""
        if self.kind != "lifespan":
            raise QueryError(f"result is a {self.kind}, not a lifespan")
        return self._value

    @property
    def explanation(self) -> RemoteExplanation:
        """The ``EXPLAIN [ANALYZE]`` rendering; ``kind == "plan"`` only."""
        if self.kind != "plan":
            raise QueryError(f"result is a {self.kind}, not a plan explanation")
        return self._value

    def rows(self) -> list[HistoricalTuple]:
        """The answer's historical tuples, as a list."""
        return list(self.relation)

    def snapshot(self, at: int) -> list[dict[str, Any]]:
        """The classical (flat) view of the relation answer at *at*."""
        return self.relation.snapshot(at)

    def __iter__(self) -> Iterator:
        if self.kind == "plan":
            raise QueryError("a plan explanation is not iterable")
        return iter(self._value)

    def __len__(self) -> int:
        if self.kind == "plan":
            raise QueryError("a plan explanation has no length")
        return len(self._value)

    def __bool__(self) -> bool:
        return True if self.kind == "plan" else bool(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RemoteResult):
            return self._value == other._value
        if hasattr(other, "value"):  # a QueryResult
            return self._value == other.value
        return self._value == other

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        return str(self._value)

    def __repr__(self) -> str:
        return f"RemoteResult({self.kind}, {self._value!r})"


class Client:
    """One session with a database server (see :func:`connect`)."""

    #: Lets generic callers (the HRQL shell) tell a remote catalog from
    #: an embedded one where the difference matters (it rarely does).
    remote = True

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = None,
                 domains: Optional[Mapping[str, ValueDomain]] = None):
        self._domains = dict(domains or {})
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = bytearray()
        self._closed = False
        self._txn_active = False
        hello = self.request({"op": "hello", "client": "repro-client"})
        #: The server's database name.
        self.name: str = hello.get("database", "")
        #: True when the served database is durable (``\\checkpoint`` works).
        self.durable: bool = bool(hello.get("durable"))
        self._address = (host, port)

    # -- plumbing -----------------------------------------------------------

    def request(self, payload: Mapping[str, Any]) -> dict:
        """One round trip: send a frame, receive and check the response.

        Raises the server-reported :class:`HRDMError` subclass on an
        ERROR frame; raises :class:`StorageError` if the connection is
        closed or drops mid-request.
        """
        if self._closed:
            raise StorageError("the client connection has been closed")
        try:
            protocol.send_frame(self._sock, payload)
            response = protocol.recv_frame(self._sock, self._buffer)
        except (OSError, protocol.ProtocolError) as exc:
            self._closed = True
            raise StorageError(f"server connection lost: {exc}") from exc
        if response is None:
            self._closed = True
            raise StorageError("server closed the connection")
        if not response.get("ok"):
            raise protocol.error_from_wire(response)
        return response

    def close(self) -> None:
        """Close the session socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - nothing left to release
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- querying -----------------------------------------------------------

    def query(self, source: str,
              params: Optional[Mapping[str, Any]] = None) -> RemoteResult:
        """Run an HRQL statement on the server; typed result.

        Mirrors :meth:`HistoricalDatabase.query`: *source* is HRQL
        text (``EXPLAIN [ANALYZE]`` included), *params* binds ``:name``
        parameters server-side through the same machinery.
        """
        payload: dict[str, Any] = {"op": "query", "q": source}
        if params:
            payload["params"] = dict(params)
        return self._decode_result(self.request(payload))

    def prepare(self, source: str) -> "RemotePrepared":
        """Parse *source* once server-side, for repeated runs."""
        response = self.request({"op": "prepare", "q": source})
        return RemotePrepared(self, response["id"], source,
                              tuple(response["params"]))

    def _decode_result(self, response: Mapping) -> RemoteResult:
        kind = response.get("kind")
        if kind == "relation":
            return RemoteResult(
                protocol.relation_from_wire(response, self._domains))
        if kind == "lifespan":
            return RemoteResult(
                protocol.lifespan_from_wire(response["lifespan"]))
        if kind == "plan":
            return RemoteResult(RemoteExplanation(response["text"]))
        raise protocol.ProtocolError(f"unknown result kind {kind!r}")

    # -- mutations (the HistoricalDatabase surface) -------------------------

    def _tuple_of(self, response: Mapping) -> HistoricalTuple:
        scheme = pager_mod.scheme_from_dict(response["scheme"], self._domains)
        return protocol.tuple_from_wire(response["tuple"], scheme)

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Insert a new object (see :meth:`HistoricalDatabase.insert`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "insert", "relation": name,
            "lifespan": protocol.lifespan_to_wire(lifespan),
            "values": dict(values),
        }))

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """New values from *at* on (see :meth:`HistoricalDatabase.update`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "update", "relation": name,
            "key": list(key), "at": at, "changes": dict(changes),
        }))

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """End an incarnation (see :meth:`HistoricalDatabase.terminate`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "terminate", "relation": name,
            "key": list(key), "at": at,
        }))

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Re-open a history (see :meth:`HistoricalDatabase.reincarnate`)."""
        return self._tuple_of(self.request({
            "op": "execute", "action": "reincarnate", "relation": name,
            "key": list(key),
            "lifespan": protocol.lifespan_to_wire(lifespan),
            "values": dict(values),
        }))

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Install an evolved scheme (see
        :meth:`HistoricalDatabase.evolve_scheme`)."""
        self.request({
            "op": "execute", "action": "evolve", "relation": name,
            "scheme": pager_mod.scheme_to_dict(new_scheme),
        })

    def create_relation(self, scheme: RelationScheme, tuples: Any = (), *,
                        storage: str = "memory", **backend_options) -> None:
        """Create a relation (see
        :meth:`HistoricalDatabase.create_relation`)."""
        self.request({
            "op": "execute", "action": "create",
            "scheme": pager_mod.scheme_to_dict(scheme),
            "tuples": [protocol.tuple_to_wire(t) for t in tuples],
            "storage": storage, "options": dict(backend_options),
        })

    def drop_relation(self, name: str) -> None:
        """Remove a relation (see
        :meth:`HistoricalDatabase.drop_relation`)."""
        self.request({"op": "execute", "action": "drop", "relation": name})

    # -- transactions --------------------------------------------------------

    def transaction(self) -> "RemoteTransaction":
        """Open a server-side buffered transaction for this session.

        Mirrors :meth:`HistoricalDatabase.transaction`: mutations made
        through the returned session buffer server-side and commit
        atomically (one WAL record) when the ``with`` block exits —
        or roll back on any exception.

        The session is snapshot-isolated and optimistic: COMMIT can
        lose its first-committer-wins race against a concurrent writer
        and raise the retryable
        :class:`~repro.core.errors.ConflictError` — the server has
        already rolled the transaction back, so simply open a new one
        and re-run (:meth:`run_transaction` wraps that loop).
        """
        self.request({"op": "begin"})
        self._txn_active = True
        return RemoteTransaction(self)

    def run_transaction(self, body, *, attempts: int = 5):
        """Run *body* in a remote transaction, retrying on conflicts.

        The wire twin of :meth:`HistoricalDatabase.run_transaction`:
        *body* receives the open :class:`RemoteTransaction`; a COMMIT
        that loses its first-committer-wins race
        (:class:`~repro.core.errors.ConflictError`) is retried against
        a fresh snapshot up to *attempts* times, then the final
        conflict propagates. Any other exception rolls back and
        propagates immediately. *body* must be safe to re-run.
        """
        from repro.core.errors import ConflictError

        for attempt in range(max(1, attempts)):
            txn = self.transaction()
            try:
                result = body(txn)
            except BaseException:
                if txn.state == "active":
                    txn.rollback()
                raise
            if txn.state != "active":  # body finished the session itself
                return result
            try:
                txn.commit()
            except ConflictError:
                if attempt == max(1, attempts) - 1:
                    raise
                continue
            return result

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot + truncate the server's WAL; returns the generation."""
        return self.request({"op": "checkpoint"})["generation"]

    def flush(self) -> None:
        """Force the server's acknowledged commits to stable storage."""
        self.request({"op": "flush"})

    # -- catalog introspection (the shell's surface) -------------------------

    def relations_info(self) -> list[dict]:
        """Per-relation summaries: name, tuple count, lifespan, storage."""
        summaries = self.request({"op": "relations"})["relations"]
        for summary in summaries:
            summary["lifespan"] = protocol.lifespan_from_wire(
                summary["lifespan"])
        return summaries

    def relation(self, name: str) -> HistoricalRelation:
        """Fetch the named relation's full current value."""
        response = self.request({"op": "relation", "name": name})
        return protocol.relation_from_wire(response, self._domains)

    def storage(self, name: str) -> str:
        """The storage kind of the named relation ("memory" or "disk")."""
        response = self.request({"op": "relation", "name": name})
        return response["storage"]

    def __getitem__(self, name: str) -> HistoricalRelation:
        return self.relation(name)

    def __iter__(self) -> Iterator[str]:
        return iter(summary["name"] for summary in self.relations_info())

    def __len__(self) -> int:
        return len(self.relations_info())

    def __contains__(self, name: object) -> bool:
        return any(summary["name"] == name
                   for summary in self.relations_info())

    def __repr__(self) -> str:
        host, port = self._address
        state = "closed" if self._closed else "open"
        return f"Client({self.name!r} at {host}:{port}, {state})"


class RemotePrepared:
    """A statement parsed (and plan-cached) server-side."""

    def __init__(self, client: Client, statement_id: int, source: str,
                 param_names: Tuple[str, ...]):
        self._client = client
        self._id = statement_id
        self.source = source
        #: The ``:name`` parameters the statement expects.
        self.param_names = param_names

    def query(self, params: Optional[Mapping[str, Any]] = None
              ) -> RemoteResult:
        """Bind and run the prepared statement; typed result."""
        payload: dict[str, Any] = {"op": "query", "prepared": self._id}
        if params:
            payload["params"] = dict(params)
        return self._client._decode_result(self._client.request(payload))

    def __repr__(self) -> str:
        names = ", ".join(f":{n}" for n in self.param_names) or "no parameters"
        return f"RemotePrepared({self.source!r}, {names})"


class RemoteTransaction:
    """A server-side buffered transaction driven over the wire.

    The buffering (and the commit-time validation, constraint sweep,
    batching, and atomic rollback) all happen in the server's
    :class:`~repro.database.session.Transaction`; this object just
    routes the same mutation calls through the open session. A commit
    that loses its first-committer-wins race raises the retryable
    :class:`~repro.core.errors.ConflictError` with the session already
    rolled back server-side — see :meth:`Client.run_transaction`.
    """

    def __init__(self, client: Client):
        self._client = client
        self._state = "active"

    @property
    def state(self) -> str:
        """"active", "committed", or "rolled-back"."""
        return self._state

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self._state == "active":
                self.rollback()
            return False
        if self._state == "active":
            self.commit()
        return False

    def commit(self) -> None:
        """Validate and apply every buffered change atomically on the
        server; raises :class:`~repro.core.errors.ConflictError` (state
        already rolled back) on a lost first-committer-wins race."""
        self._finish("commit")

    def rollback(self) -> None:
        """Discard every buffered change."""
        self._finish("rollback")

    def _finish(self, op: str) -> None:
        self._ensure_active()
        try:
            self._client.request({"op": op})
        except HRDMError:
            self._state = "rolled-back"
            self._client._txn_active = False
            raise
        self._state = "committed" if op == "commit" else "rolled-back"
        self._client._txn_active = False

    def _ensure_active(self) -> None:
        if self._state != "active":
            from repro.core.errors import TransactionError

            raise TransactionError(f"transaction already {self._state}")

    def insert(self, name: str, lifespan: Lifespan,
               values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a birth (see :meth:`Transaction.insert`)."""
        self._ensure_active()
        return self._client.insert(name, lifespan, values)

    def update(self, name: str, key: tuple, at: int,
               changes: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer new values (see :meth:`Transaction.update`)."""
        self._ensure_active()
        return self._client.update(name, key, at, changes)

    def terminate(self, name: str, key: tuple, at: int) -> HistoricalTuple:
        """Buffer a death (see :meth:`Transaction.terminate`)."""
        self._ensure_active()
        return self._client.terminate(name, key, at)

    def reincarnate(self, name: str, key: tuple, lifespan: Lifespan,
                    values: Mapping[str, Any]) -> HistoricalTuple:
        """Buffer a rebirth (see :meth:`Transaction.reincarnate`)."""
        self._ensure_active()
        return self._client.reincarnate(name, key, lifespan, values)

    def evolve_scheme(self, name: str, new_scheme: RelationScheme) -> None:
        """Buffer a schema evolution (see
        :meth:`Transaction.evolve_scheme`)."""
        self._ensure_active()
        self._client.evolve_scheme(name, new_scheme)

    def __repr__(self) -> str:
        return f"RemoteTransaction({self._state})"
