"""TIME-SLICE — reduction along the temporal dimension (Section 4.4).

The third unary operator, matching the third dimension of Figure 10:
SELECT reduces along values, PROJECT along attributes, TIME-SLICE along
time. Two application modes:

* **static** ``τ_L(r)`` — the target lifespan ``L`` is a parameter:
  every tuple is restricted to ``L ∩ t.l`` (dropping out when empty);

* **dynamic** ``τ_@A(r)`` — for a *time-valued* attribute ``A``
  (``DOM(A) ⊆ TT``): each tuple is restricted to the *image* of its own
  ``t(A)``, so the selected window varies per tuple. "The result ...
  is not defined over a fixed, pre-specified lifespan."
"""

from __future__ import annotations

from repro.algebra.kernels import check_time_valued, dynamic_window, slice_tuple
from repro.core.attribute import AttributeLike, attr_name
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation


def timeslice(relation: HistoricalRelation, lifespan: Lifespan) -> HistoricalRelation:
    """Static TIME-SLICE ``τ_L(r)``.

    Each result tuple is ``t' = t|_{L ∩ t.l}``; tuples whose lifespan
    misses ``L`` entirely are dropped.

    >>> nineties = timeslice(emp, Lifespan.interval(1990, 1999))  # doctest: +SKIP
    """
    return relation.map_tuples(lambda t: slice_tuple(t, lifespan))


def timeslice_at(relation: HistoricalRelation, time: int) -> HistoricalRelation:
    """Static TIME-SLICE at a single chronon: ``τ_{[t, t]}(r)``."""
    return timeslice(relation, Lifespan.point(time))


def dynamic_timeslice(relation: HistoricalRelation,
                      attribute: AttributeLike) -> HistoricalRelation:
    """Dynamic TIME-SLICE ``τ_@A(r)`` through time-valued attribute *A*.

    For each tuple ``t``, the restriction window is the image of
    ``t(A)`` — the set of times that ``t(A)`` maps to.

    Raises
    ------
    NotTimeValuedError
        If ``DOM(A)`` is not ``TT`` (time-valued).
    """
    name = attr_name(attribute)
    check_time_valued(relation.scheme, name)

    def shrink(t):
        window = dynamic_window(t, name)
        if window.is_empty:
            return None
        return t.restrict(window)

    return relation.map_tuples(shrink)
