"""Selection predicates for the historical algebra.

Section 4.3 of the paper specifies selection criteria of the form
``A θ a``, "a simple predicate over the attributes of the tuple", where
``a`` may be "another attribute value or a constant", and a quantifier
(``∃`` or ``∀``) over a set of times bounds when the predicate must
hold.

This module provides a small composable predicate language:

* :class:`AttrOp` — the paper's ``A θ a`` atom (attribute vs constant
  or attribute vs attribute), for ``θ ∈ {=, ≠, <, ≤, >, ≥}``;
* boolean combinators :class:`And`, :class:`Or`, :class:`Not`;
* :class:`Custom` — an escape hatch wrapping any
  ``(tuple, time) -> bool`` callable.

Every predicate evaluates *pointwise*: ``pred.holds_at(t, s)`` asks
whether tuple ``t`` satisfies the predicate at chronon ``s``. The two
SELECT flavors then quantify these pointwise answers. A predicate at a
chronon where a referenced attribute is undefined is *False* — an
object with no value cannot stand in a θ relationship (Section 3's
"does not exist" reading of undefined).
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.core.attribute import AttributeLike, attr_name
from repro.core.errors import AlgebraError
from repro.core.lifespan import Lifespan
from repro.core.tuples import HistoricalTuple

#: The θ comparators of the paper's ``A θ a`` criteria.
THETA_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_MISSING = object()


class Predicate:
    """Base class for pointwise selection predicates."""

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        """True if tuple *t* satisfies this predicate at chronon *s*."""
        raise NotImplementedError

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        """The chronons of *within* at which the predicate holds.

        This is the lifespan SELECT-WHEN assigns to a selected tuple:
        "exactly those points in time WHEN the criterion is met".

        The generic implementation walks the chronons of *within*;
        :class:`AttrOp` overrides it with a segment-wise evaluation
        that is O(#segments) instead of O(#chronons).
        """
        return Lifespan.from_points(s for s in within if self.holds_at(t, s))

    # -- combinators -------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class AttrOp(Predicate):
    """The paper's atomic criterion ``A θ a``.

    *rhs* is a constant unless it is wrapped in :class:`AttrRef`, in
    which case the comparison is attribute-vs-attribute at the same
    chronon.

    >>> p = AttrOp("SALARY", ">=", 30_000)
    >>> q = AttrOp("DEPT", "=", AttrRef("MGR_DEPT"))
    """

    def __init__(self, attribute: AttributeLike, theta: str, rhs: Any):
        if theta not in THETA_OPS:
            raise AlgebraError(
                f"unknown θ operator {theta!r}; expected one of {sorted(THETA_OPS)}"
            )
        self.attribute = attr_name(attribute)
        self.theta = theta
        self._op = THETA_OPS[theta]
        self.rhs = rhs

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        lhs = t.value(self.attribute).get(s, _MISSING)
        if lhs is _MISSING:
            return False
        if isinstance(self.rhs, AttrRef):
            rhs = t.value(self.rhs.attribute).get(s, _MISSING)
            if rhs is _MISSING:
                return False
        else:
            rhs = self.rhs
        try:
            return bool(self._op(lhs, rhs))
        except TypeError:
            return False

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        # Segment-wise: within any maximal constant run of the operand
        # function(s), the predicate's truth value is constant.
        lhs_fn = t.value(self.attribute)
        if isinstance(self.rhs, AttrRef):
            return super().satisfying_lifespan(t, within)
        satisfied = []
        for interval, value in lhs_fn.items():
            try:
                ok = bool(self._op(value, self.rhs))
            except TypeError:
                ok = False
            if ok:
                satisfied.append(interval)
        return Lifespan(*satisfied) & within

    def __repr__(self) -> str:
        return f"AttrOp({self.attribute} {self.theta} {self.rhs!r})"


class AttrRef:
    """Marks the right-hand side of ``A θ a`` as another attribute."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: AttributeLike):
        self.attribute = attr_name(attribute)

    def __repr__(self) -> str:
        return f"AttrRef({self.attribute!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttrRef):
            return NotImplemented
        return self.attribute == other.attribute

    def __hash__(self) -> int:
        return hash(("AttrRef", self.attribute))


class And(Predicate):
    """Conjunction of predicates (pointwise)."""

    def __init__(self, *parts: Predicate):
        if not parts:
            raise AlgebraError("And() needs at least one predicate")
        self.parts = parts

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        return all(p.holds_at(t, s) for p in self.parts)

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        result = within
        for p in self.parts:
            if result.is_empty:
                break
            result = p.satisfying_lifespan(t, result)
        return result

    def __repr__(self) -> str:
        return "And(" + ", ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of predicates (pointwise)."""

    def __init__(self, *parts: Predicate):
        if not parts:
            raise AlgebraError("Or() needs at least one predicate")
        self.parts = parts

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        return any(p.holds_at(t, s) for p in self.parts)

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        return Lifespan.union_all(p.satisfying_lifespan(t, within) for p in self.parts)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Pointwise negation.

    Note the model-faithful subtlety: ``Not(A = a)`` holds at chronon
    ``s`` only where the *inner predicate evaluates and is false* —
    chronons where ``A`` is undefined satisfy neither ``A = a`` nor
    ``Not(A = a)`` in the object-existence reading. We therefore
    restrict the negation to the chronons where every referenced
    attribute is defined.
    """

    def __init__(self, inner: Predicate):
        self.inner = inner

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        if not _attributes_defined_at(self.inner, t, s):
            return False
        return not self.inner.holds_at(t, s)

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        defined = _defined_lifespan(self.inner, t, within)
        return defined - self.inner.satisfying_lifespan(t, within)

    def __repr__(self) -> str:
        return f"Not({self.inner!r})"


class Custom(Predicate):
    """Wrap an arbitrary ``(tuple, chronon) -> bool`` callable."""

    def __init__(self, fn: Callable[[HistoricalTuple, int], bool], label: str = "custom"):
        self.fn = fn
        self.label = label

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        return bool(self.fn(t, s))

    def __repr__(self) -> str:
        return f"Custom({self.label!r})"


class TruePredicate(Predicate):
    """Holds everywhere — useful as a neutral element."""

    def holds_at(self, t: HistoricalTuple, s: int) -> bool:
        return True

    def satisfying_lifespan(self, t: HistoricalTuple, within: Lifespan) -> Lifespan:
        return within

    def __repr__(self) -> str:
        return "TruePredicate()"


ALWAYS_TRUE = TruePredicate()


def referenced_attributes(predicate: Predicate) -> frozenset[str]:
    """The attribute names a predicate mentions (for pushdown rewrites)."""
    if isinstance(predicate, AttrOp):
        names = {predicate.attribute}
        if isinstance(predicate.rhs, AttrRef):
            names.add(predicate.rhs.attribute)
        return frozenset(names)
    if isinstance(predicate, (And, Or)):
        out: frozenset[str] = frozenset()
        for p in predicate.parts:
            out |= referenced_attributes(p)
        return out
    if isinstance(predicate, Not):
        return referenced_attributes(predicate.inner)
    return frozenset()


def _attributes_defined_at(predicate: Predicate, t: HistoricalTuple, s: int) -> bool:
    """True if every attribute the predicate references is defined at *s*."""
    return all(
        t.value(a).defined_at(s) for a in referenced_attributes(predicate)
    )


def _defined_lifespan(predicate: Predicate, t: HistoricalTuple,
                      within: Lifespan) -> Lifespan:
    """The chronons of *within* where all referenced attributes exist."""
    result = within
    for a in referenced_attributes(predicate):
        result = result & t.value(a).domain
    return result
