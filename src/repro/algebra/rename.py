"""RENAME — the attribute-renaming operator ``ρ``.

Classical relational algebra needs ``ρ`` for self-joins and for
aligning attribute names before union-compatible operations; the
historical algebra inherits the need unchanged (our joins require
disjoint attribute names). Renaming touches only the scheme — values,
lifespans, and keys are untouched.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.relation import HistoricalRelation


def rename(relation: HistoricalRelation, mapping: Mapping[str, str],
           name: Optional[str] = None) -> HistoricalRelation:
    """``ρ_{old→new}(r)`` — rename attributes throughout a relation.

    >>> managers = rename(emp, {"NAME": "MGR"})        # doctest: +SKIP
    """
    scheme = relation.scheme.rename(mapping, name=name)
    return HistoricalRelation(
        scheme,
        (t.rename(dict(mapping), scheme) for t in relation),
        enforce_key=relation.enforce_key,
    )
