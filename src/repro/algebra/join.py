"""JOIN — θ-JOIN, EQUIJOIN, NATURAL-JOIN, TIME-JOIN (Section 4.6).

All joins produce tuples over the scheme
``R3 = <A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`` and, per
Section 5, are "equivalent to the appropriate SELECT-WHEN of the
Cartesian product, and thus no nulls result; the JOIN of two tuples was
defined only over their lifespan intersection."

* **θ-JOIN** ``r1 ⋈[A θ B] r2`` — the result tuple's lifespan is
  ``{s | t1(A)(s) θ t2(B)(s)}`` (both sides defined and in relation θ),
  and every attribute is restricted to it.
* **EQUIJOIN** — the θ = "=" special case. The paper simplifies its
  lifespan to ``vls(t1, A) ∩ vls(t2, B)`` with
  ``t.v(A) = t.v(B) = t1.v(A) ∩ t2.v(B)``; read with the no-nulls
  stipulation of Section 5 this is the set of chronons where both
  functions are defined *and equal* — exactly the θ-JOIN lifespan — so
  we implement that reading.
* **NATURAL-JOIN** — the projection of the equijoin over the shared
  attributes ``X = A1 ∩ A2``: pairs join on the chronons where every
  shared attribute agrees, and the result carries each shared
  attribute once.
* **TIME-JOIN** ``r1 [@A] r2`` — for a time-valued ``A`` of ``R1``:
  "a join of dynamic TIME-SLICEs of both relations". The paper's
  explicit formula is truncated in the surviving text; we implement the
  stated reading: each pair joins over
  ``image(t1(A)) ∩ t1.l ∩ t2.l`` — the moments (named by ``t1(A)``)
  at which both tuples exist.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.predicates import THETA_OPS
from repro.algebra.setops import concatenate as setops_concatenate
from repro.core.attribute import AttributeLike, attr_name
from repro.core.errors import AlgebraError, NotTimeValuedError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction
from repro.core.tuples import HistoricalTuple


def _check_disjoint(s1: RelationScheme, s2: RelationScheme) -> None:
    shared = set(s1.attributes) & set(s2.attributes)
    if shared:
        raise AlgebraError(
            f"join operands must have disjoint attributes (rename first); "
            f"shared: {sorted(shared)}"
        )


def join_scheme(s1: RelationScheme, s2: RelationScheme,
                name: Optional[str] = None,
                drop: tuple[str, ...] = ()) -> RelationScheme:
    """``<A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`` minus *drop*.

    Attributes in *drop* (used by NATURAL-JOIN for the second copy of
    shared attributes) are taken from ``s1`` when present in both.
    """
    doms = dict(s1.domains())
    lifespans = dict(s1.attribute_lifespans())
    for a, d in s2.domains().items():
        if a in doms:
            # Shared attribute (natural join): union the lifespans.
            lifespans[a] = lifespans[a] | s2.als(a)
        elif a not in drop:
            doms[a] = d
            lifespans[a] = s2.als(a)
    key = tuple(s1.key) + tuple(k for k in s2.key if k not in s1.key and k not in drop)
    scheme_ls = Lifespan.union_all(lifespans.values())
    for k in key:
        lifespans[k] = scheme_ls
    return RelationScheme(name or f"{s1.name}_join_{s2.name}", doms, key, lifespans)


def _theta_lifespan(f1: TemporalFunction, f2: TemporalFunction,
                    op: Callable) -> Lifespan:
    """``{s | f1(s) θ f2(s)}`` — segment-wise, O(#segments) not O(#chronons)."""
    satisfied: list[tuple[int, int]] = []
    segs1, segs2 = f1.segments, f2.segments
    i = j = 0
    while i < len(segs1) and j < len(segs2):
        (lo1, hi1), v1 = segs1[i]
        (lo2, hi2), v2 = segs2[j]
        lo, hi = max(lo1, lo2), min(hi1, hi2)
        if lo <= hi:
            try:
                ok = bool(op(v1, v2))
            except TypeError:
                ok = False
            if ok:
                satisfied.append((lo, hi))
        if hi1 < hi2:
            i += 1
        else:
            j += 1
    return Lifespan(*satisfied)


def _concatenate_restricted(t1: HistoricalTuple, t2: HistoricalTuple,
                            scheme: RelationScheme,
                            lifespan: Lifespan) -> Optional[HistoricalTuple]:
    """Concatenate two tuples restricted to *lifespan* on *scheme*."""
    if lifespan.is_empty:
        return None
    values: dict[str, TemporalFunction] = {}
    for a in scheme.attributes:
        if a in t1.scheme:
            fn = t1.value(a)
        else:
            fn = t2.value(a)
        values[a] = fn.restrict(lifespan & scheme.als(a))
    if any(not values[k] for k in scheme.key):
        # The pair meets only at chronons where one key is outside its
        # attribute lifespan: the object is not identifiable there.
        return None
    return HistoricalTuple(scheme, lifespan, values)


def theta_join(
    r1: HistoricalRelation,
    r2: HistoricalRelation,
    left: AttributeLike,
    theta: str,
    right: AttributeLike,
    name: Optional[str] = None,
) -> HistoricalRelation:
    """``r1 JOIN r2 [A θ B]`` — the historical θ-join.

    Each pair ``(t1, t2)`` contributes a tuple over the chronons where
    ``t1(A)(s) θ t2(B)(s)``; pairs with no such chronon contribute
    nothing (no nulls).
    """
    a, b = attr_name(left), attr_name(right)
    if theta not in THETA_OPS:
        raise AlgebraError(f"unknown θ operator {theta!r}")
    op = THETA_OPS[theta]
    _check_disjoint(r1.scheme, r2.scheme)
    r1.scheme.check_attributes([a])
    r2.scheme.check_attributes([b])
    scheme = join_scheme(r1.scheme, r2.scheme, name)
    out = []
    for t1 in r1:
        f1 = t1.value(a)
        if not f1:
            continue
        for t2 in r2:
            f2 = t2.value(b)
            if not f2:
                continue
            window = _theta_lifespan(f1, f2, op)
            joined = _concatenate_restricted(t1, t2, scheme, window)
            if joined is not None:
                out.append(joined)
    return HistoricalRelation(scheme, out, enforce_key=False)


def equijoin(
    r1: HistoricalRelation,
    r2: HistoricalRelation,
    left: AttributeLike,
    right: AttributeLike,
    name: Optional[str] = None,
) -> HistoricalRelation:
    """``r1 [A = B] r2`` — the equality special case of the θ-join."""
    return theta_join(r1, r2, left, "=", right, name=name)


def natural_join(
    r1: HistoricalRelation,
    r2: HistoricalRelation,
    name: Optional[str] = None,
) -> HistoricalRelation:
    """``r1 NATURAL-JOIN r2`` over the shared attributes ``X = A1 ∩ A2``.

    ``t.l = vls(t1, X, R1) ∩ vls(t2, X, R2)`` restricted to the
    chronons where every shared attribute agrees; the result carries
    one copy of each shared attribute. With ``X = ∅`` this degenerates
    to the Cartesian product restricted to lifespan intersections.
    """
    shared = tuple(a for a in r1.scheme.attributes if a in set(r2.scheme.attributes))
    for x in shared:
        if r1.scheme.dom(x) != r2.scheme.dom(x) and (
            r1.scheme.dom(x).value_domain != r2.scheme.dom(x).value_domain
        ):
            raise AlgebraError(
                f"shared attribute {x!r} has incompatible domains in the operands"
            )
    scheme = join_scheme(r1.scheme, r2.scheme, name)
    eq = THETA_OPS["="]
    out = []
    for t1 in r1:
        for t2 in r2:
            if shared:
                window = t1.lifespan & t2.lifespan
                for x in shared:
                    if window.is_empty:
                        break
                    window = window & _theta_lifespan(t1.value(x), t2.value(x), eq)
            else:
                window = t1.lifespan & t2.lifespan
            joined = _concatenate_restricted(t1, t2, scheme, window)
            if joined is not None:
                out.append(joined)
    return HistoricalRelation(scheme, out, enforce_key=False)


def theta_join_union(
    r1: HistoricalRelation,
    r2: HistoricalRelation,
    left: AttributeLike,
    theta: str,
    right: AttributeLike,
    name: Optional[str] = None,
) -> HistoricalRelation:
    """The Section 5 *union-lifespan* join variant.

    "It would also be possible to define JOINs over the union of the
    tuple lifespans, essentially equivalent to a SELECT-IF of the
    Cartesian product; a resulting tuple will have null values for
    times outside of its contributing tuples' lifespans."

    A pair joins when the θ relationship holds at *some* chronon
    (SELECT-IF's ∃ reading); the result tuple then keeps the *union*
    ``t1.l ∪ t2.l`` with attribute values undefined ("null") where only
    the other operand lived.
    """
    a, b = attr_name(left), attr_name(right)
    if theta not in THETA_OPS:
        raise AlgebraError(f"unknown θ operator {theta!r}")
    op = THETA_OPS[theta]
    _check_disjoint(r1.scheme, r2.scheme)
    r1.scheme.check_attributes([a])
    r2.scheme.check_attributes([b])
    scheme = join_scheme(r1.scheme, r2.scheme, name)
    out = []
    for t1 in r1:
        f1 = t1.value(a)
        if not f1:
            continue
        for t2 in r2:
            f2 = t2.value(b)
            if not f2:
                continue
            if _theta_lifespan(f1, f2, op).is_empty:
                continue
            out.append(setops_concatenate(t1, t2, scheme))
    return HistoricalRelation(scheme, out, enforce_key=False)


def time_join(
    r1: HistoricalRelation,
    r2: HistoricalRelation,
    attribute: AttributeLike,
    name: Optional[str] = None,
) -> HistoricalRelation:
    """``r1 [@A] r2`` — TIME-JOIN through time-valued attribute *A* of r1.

    Each pair joins over ``image(t1(A)) ∩ t1.l ∩ t2.l`` — the times
    named by ``t1(A)`` at which both tuples exist, i.e. a join of
    dynamic TIME-SLICEs.

    Raises
    ------
    NotTimeValuedError
        If ``DOM(A)`` is not time-valued (``TT``).
    """
    a = attr_name(attribute)
    dom = r1.scheme.dom(a)
    if not dom.time_valued:
        raise NotTimeValuedError(
            f"TIME-JOIN needs a TT attribute; {a!r} has domain {dom.name}"
        )
    _check_disjoint(r1.scheme, r2.scheme)
    scheme = join_scheme(r1.scheme, r2.scheme, name)
    out = []
    for t1 in r1:
        image = t1.value(a).image_lifespan()
        if image.is_empty:
            continue
        base = image & t1.lifespan
        if base.is_empty:
            continue
        for t2 in r2:
            window = base & t2.lifespan
            joined = _concatenate_restricted(t1, t2, scheme, window)
            if joined is not None:
                out.append(joined)
    return HistoricalRelation(scheme, out, enforce_key=False)
