"""An expression tree over the historical algebra.

The operator functions in this package evaluate eagerly. For query
optimisation — and to state the algebraic laws of Section 5 as testable
program transformations — we also provide a small expression language:
each node is an immutable description of one algebra operator, and
:func:`evaluate` interprets a tree against an environment of named
relations.

Section 5 sketches the laws the rewriter exploits: "the commutativity
of select, the distribution of select over the binary set-theoretic
operators, and the commutativity of the natural join ... the
distribution of TIMESLICE over the binary set-theoretic operators,
commutativity of TIMESLICE with both flavors of SELECT".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.algebra import join as join_ops
from repro.algebra import merge as merge_ops
from repro.algebra import select as select_ops
from repro.algebra import setops
from repro.algebra.timeslice import dynamic_timeslice as dynamic_timeslice_op
from repro.algebra.timeslice import timeslice as timeslice_op
from repro.algebra.predicates import Predicate
from repro.algebra.project import project as project_op
from repro.algebra.rename import rename as rename_op
from repro.core.errors import AlgebraError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation


class Expr:
    """Base class of algebra expression nodes (immutable)."""

    def evaluate(self, env: Mapping[str, HistoricalRelation]) -> HistoricalRelation:
        """Interpret this expression against named base relations."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """The sub-expressions, for generic tree traversal."""
        return ()

    # -- fluent construction helpers -------------------------------------

    def select_if(self, predicate: Predicate,
                  quantifier=select_ops.EXISTS,
                  lifespan: Optional[Lifespan] = None) -> "SelectIf":
        return SelectIf(self, predicate, quantifier, lifespan)

    def select_when(self, predicate: Predicate,
                    lifespan: Optional[Lifespan] = None) -> "SelectWhen":
        return SelectWhen(self, predicate, lifespan)

    def project(self, attributes: tuple[str, ...]) -> "Project":
        return Project(self, tuple(attributes))

    def timeslice(self, lifespan: Lifespan) -> "TimeSlice":
        return TimeSlice(self, lifespan)

    def dynamic_timeslice(self, attribute: str) -> "DynamicTimeSlice":
        return DynamicTimeSlice(self, attribute)

    def union(self, other: "Expr") -> "Union_":
        return Union_(self, other)

    def intersect(self, other: "Expr") -> "Intersection":
        return Intersection(self, other)

    def minus(self, other: "Expr") -> "Difference":
        return Difference(self, other)

    def natural_join(self, other: "Expr") -> "NaturalJoin":
        return NaturalJoin(self, other)


@dataclass(frozen=True)
class Rel(Expr):
    """A named base relation, resolved from the environment."""

    name: str

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise AlgebraError(f"no relation named {self.name!r} in environment") from None

    def __repr__(self) -> str:
        return f"Rel({self.name!r})"


@dataclass(frozen=True)
class Literal(Expr):
    """An inline relation value (useful in tests and rewrites)."""

    relation: HistoricalRelation

    def evaluate(self, env):
        return self.relation

    def __repr__(self) -> str:
        return f"Literal({self.relation!r})"


@dataclass(frozen=True)
class SelectIf(Expr):
    """``σ-IF(pred, Q, L)(child)``."""

    child: Expr
    predicate: Predicate
    quantifier: select_ops.Quantifier = select_ops.EXISTS
    lifespan: Optional[Lifespan] = None

    def evaluate(self, env):
        return select_ops.select_if(
            self.child.evaluate(env), self.predicate, self.quantifier, self.lifespan
        )

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"SelectIf({self.child!r}, {self.predicate!r}, {self.quantifier.value})"


@dataclass(frozen=True)
class SelectWhen(Expr):
    """``σ-WHEN(pred, L)(child)``."""

    child: Expr
    predicate: Predicate
    lifespan: Optional[Lifespan] = None

    def evaluate(self, env):
        return select_ops.select_when(self.child.evaluate(env), self.predicate, self.lifespan)

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"SelectWhen({self.child!r}, {self.predicate!r})"


@dataclass(frozen=True)
class Project(Expr):
    """``π_X(child)``."""

    child: Expr
    attributes: tuple[str, ...]

    def evaluate(self, env):
        return project_op(self.child.evaluate(env), self.attributes)

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"Project({self.child!r}, {list(self.attributes)})"


@dataclass(frozen=True)
class Rename(Expr):
    """``ρ_{old→new}(child)``."""

    child: Expr
    mapping: tuple[tuple[str, str], ...]

    def evaluate(self, env):
        return rename_op(self.child.evaluate(env), dict(self.mapping))

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{a}→{b}" for a, b in self.mapping)
        return f"Rename({self.child!r}, {pairs})"


@dataclass(frozen=True)
class TimeSlice(Expr):
    """Static ``τ_L(child)``."""

    child: Expr
    lifespan: Lifespan

    def evaluate(self, env):
        return timeslice_op(self.child.evaluate(env), self.lifespan)

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"TimeSlice({self.child!r}, {self.lifespan!r})"


@dataclass(frozen=True)
class DynamicTimeSlice(Expr):
    """Dynamic ``τ_@A(child)``."""

    child: Expr
    attribute: str

    def evaluate(self, env):
        return dynamic_timeslice_op(self.child.evaluate(env), self.attribute)

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Union_(Expr):
    """Standard ``left ∪ right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return setops.union(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Intersection(Expr):
    """Standard ``left ∩ right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return setops.intersection(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Difference(Expr):
    """Standard ``left − right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return setops.difference(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class UnionMerge(Expr):
    """Object-based ``left ∪ₒ right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return merge_ops.union_merge(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class IntersectionMerge(Expr):
    """Object-based ``left ∩ₒ right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return merge_ops.intersection_merge(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class DifferenceMerge(Expr):
    """Object-based ``left −ₒ right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return merge_ops.difference_merge(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Product(Expr):
    """Cartesian product ``left × right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return setops.cartesian_product(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class ThetaJoin(Expr):
    """``left ⋈[A θ B] right``."""

    left: Expr
    right: Expr
    left_attr: str
    theta: str
    right_attr: str

    def evaluate(self, env):
        return join_ops.theta_join(
            self.left.evaluate(env), self.right.evaluate(env),
            self.left_attr, self.theta, self.right_attr,
        )

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class NaturalJoin(Expr):
    """``left NATURAL-JOIN right``."""

    left: Expr
    right: Expr

    def evaluate(self, env):
        return join_ops.natural_join(self.left.evaluate(env), self.right.evaluate(env))

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class TimeJoin(Expr):
    """``left [@A] right``."""

    left: Expr
    right: Expr
    attribute: str

    def evaluate(self, env):
        return join_ops.time_join(
            self.left.evaluate(env), self.right.evaluate(env), self.attribute
        )

    def children(self):
        return (self.left, self.right)


#: Expression evaluation entry point.
def evaluate(expr: Expr, env: Mapping[str, HistoricalRelation]) -> HistoricalRelation:
    """Evaluate *expr* against the environment of base relations."""
    return expr.evaluate(env)


def size(expr: Expr) -> int:
    """Number of nodes in the expression tree."""
    return 1 + sum(size(c) for c in expr.children())


def depth(expr: Expr) -> int:
    """Height of the expression tree."""
    kids = expr.children()
    if not kids:
        return 1
    return 1 + max(depth(c) for c in kids)
