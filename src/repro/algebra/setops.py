"""Standard set-theoretic operations (Section 4.1).

"Historical relations, like regular relations, are sets of tuples;
therefore the standard set-theoretic operations of union,
intersection, set difference, and Cartesian product can be defined
over them."

Two relations are *union-compatible* when they have the same attributes
with the same domains (``A1 = A2`` and ``DOM1 = DOM2``). The result
schemes carry combined attribute lifespans:

* ``r1 ∪ r2`` on ``<A1, K1, ALS1 ∪ ALS2, DOM1>``
* ``r1 ∩ r2`` on ``<A1, K1, ALS1 ∩ ALS2, DOM1>``
* ``r1 − r2`` on ``R1``

The paper immediately notes that these "produce counter-intuitive
results for historical relations" (Figure 11): a plain union may hold
*two* tuples for the same object. Results are therefore returned with
``enforce_key=False``; the object-based operators in
:mod:`repro.algebra.merge` restore per-object semantics.

The Cartesian product (attributes disjoint) gives each result tuple the
*union* of the operand lifespans, so attributes can be undefined at
some chronons of the result lifespan — the model's stand-in for the
null values the paper discusses in Section 5.
"""

from __future__ import annotations

from repro.core.errors import AlgebraError, UnionCompatibilityError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tfunc import TemporalFunction
from repro.core.tuples import HistoricalTuple


def check_union_compatible(r1: HistoricalRelation, r2: HistoricalRelation) -> None:
    """Raise unless the operands are union-compatible (same A, same DOM)."""
    if not r1.scheme.is_union_compatible(r2.scheme):
        raise UnionCompatibilityError(
            f"relations on {r1.scheme.name!r} and {r2.scheme.name!r} are not "
            "union-compatible (attributes or domains differ)"
        )


def _combined_scheme(r1: HistoricalRelation, r2: HistoricalRelation,
                     combine, suffix: str) -> RelationScheme:
    """The result scheme with attribute lifespans combined by *combine*."""
    merged = r1.scheme.merge_lifespans(r2.scheme, combine)
    return r1.scheme.with_lifespans(merged, name=f"{r1.scheme.name}_{suffix}")


def union(r1: HistoricalRelation, r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 ∪ r2`` — tuples of either operand, on ``ALS1 ∪ ALS2``.

    The result may contain two tuples for one object (Figure 11's
    counter-intuitive outcome); use
    :func:`repro.algebra.merge.union_merge` for object-based union.
    """
    check_union_compatible(r1, r2)
    scheme = _combined_scheme(r1, r2, Lifespan.union, "union")
    rehomed = [t.with_scheme(scheme) for t in r1] + [t.with_scheme(scheme) for t in r2]
    return HistoricalRelation(scheme, rehomed, enforce_key=False)


def intersection(r1: HistoricalRelation, r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 ∩ r2`` — tuples present in both operands, on ``ALS1 ∩ ALS2``.

    Tuple membership is exact equality of ``<v, l>`` pairs; tuples
    whose values stray outside the narrowed attribute lifespans cannot
    appear in the result (their values would violate the result
    scheme), matching the paper's scheme choice.
    """
    check_union_compatible(r1, r2)
    scheme = _combined_scheme(r1, r2, Lifespan.intersection, "isect")
    in_both = set(r2.tuples)
    out = []
    for t in r1:
        if t in in_both:
            out.append(t.with_scheme(scheme))
    return HistoricalRelation(scheme, out, enforce_key=False)


def difference(r1: HistoricalRelation, r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 − r2`` — tuples of r1 not in r2, on the scheme of r1."""
    check_union_compatible(r1, r2)
    in_r2 = set(r2.tuples)
    return HistoricalRelation(
        r1.scheme, (t for t in r1 if t not in in_r2), enforce_key=False
    )


def cartesian_product(r1: HistoricalRelation, r2: HistoricalRelation,
                      name: str | None = None) -> HistoricalRelation:
    """``r1 × r2`` for disjoint attribute sets.

    Per Section 5, "resulting tuples are defined over the union of the
    lifespans of the participating tuples, and thus potentially contain
    null values" — here represented as attribute values undefined at
    chronons contributed only by the other operand.
    """
    s1, s2 = r1.scheme, r2.scheme
    shared = set(s1.attributes) & set(s2.attributes)
    if shared:
        raise AlgebraError(
            f"Cartesian product needs disjoint attributes; shared: {sorted(shared)}"
        )
    scheme = product_scheme(s1, s2, name)
    out = []
    for t1 in r1:
        for t2 in r2:
            out.append(concatenate(t1, t2, scheme))
    return HistoricalRelation(scheme, out, enforce_key=False)


def product_scheme(s1: RelationScheme, s2: RelationScheme,
                   name: str | None = None) -> RelationScheme:
    """The scheme ``<A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>``."""
    doms = {**s1.domains(), **s2.domains()}
    lifespans = {**s1.attribute_lifespans(), **s2.attribute_lifespans()}
    key = tuple(s1.key) + tuple(k for k in s2.key if k not in s1.key)
    scheme_ls = Lifespan.union_all(lifespans.values())
    for k in key:
        lifespans[k] = scheme_ls
    return RelationScheme(name or f"{s1.name}_x_{s2.name}", doms, key, lifespans)


def concatenate(t1: HistoricalTuple, t2: HistoricalTuple,
                scheme: RelationScheme) -> HistoricalTuple:
    """Concatenate two tuples onto the product scheme.

    The result lifespan is ``t1.l ∪ t2.l``; each value function keeps
    its original domain, so it is simply undefined ("null") at chronons
    contributed only by the other tuple.
    """
    lifespan = t1.lifespan | t2.lifespan
    values = {a: t1.value(a) for a in t1.scheme.attributes}
    values.update({a: t2.value(a) for a in t2.scheme.attributes})
    # Key attributes must remain constant over the (possibly larger)
    # result lifespan: extend each constant key function to cover it.
    for k in scheme.key:
        fn = values[k]
        if fn.is_constant() and fn:
            vls = lifespan & scheme.als(k)
            values[k] = TemporalFunction.constant(fn.constant_value(), vls)
    return HistoricalTuple(scheme, lifespan, values)
