"""Object-based set operations: merge, ``∪ₒ``, ``∩ₒ``, ``−ₒ`` (Section 4.1).

Figure 11 of the paper shows that the plain union of two historical
relations can return *two* tuples for one object. The cure is a family
of object-based operators built on *mergable tuples*:

Two schemes are **merge-compatible** iff they are union-compatible and
share the same key. Two tuples are **mergable** iff their schemes are
merge-compatible, they carry the same key value (condition 2), and they
"do not contradict one another at any point in time" (condition 3 —
equal values on the lifespan overlap).

The merge ``t1 + t2`` unions both the lifespans and the value
functions. A tuple ``t`` is **matched** in a set ``S`` if some tuple of
``S`` is mergable with it. Then:

* ``r1 ∪ₒ r2`` — unmatched tuples pass through; matched pairs merge;
* ``r1 ∩ₒ r2`` — mergable pairs restricted to their lifespan overlap;
* ``r1 −ₒ r2`` — unmatched tuples pass through; matched tuples keep
  only the lifespan ``t1.l − t2.l``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import MergeCompatibilityError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple


def check_merge_compatible(r1: HistoricalRelation, r2: HistoricalRelation) -> None:
    """Raise unless the operands are merge-compatible (same A, K, DOM)."""
    if not r1.scheme.is_merge_compatible(r2.scheme):
        raise MergeCompatibilityError(
            f"relations on {r1.scheme.name!r} and {r2.scheme.name!r} are not "
            "merge-compatible (attributes, domains, or keys differ)"
        )


def are_mergable(t1: HistoricalTuple, t2: HistoricalTuple) -> bool:
    """The paper's three-condition *mergable* test.

    1. merge-compatible schemes;
    2. the same key value;
    3. equal values at every chronon both tuples cover.
    """
    if not t1.scheme.is_merge_compatible(t2.scheme):
        return False
    if t1.key_value() != t2.key_value():
        return False
    overlap = t1.lifespan & t2.lifespan
    if overlap.is_empty:
        return True
    return all(
        t1.value(a).restrict(overlap & t1.scheme.als(a) & t2.scheme.als(a))
        == t2.value(a).restrict(overlap & t1.scheme.als(a) & t2.scheme.als(a))
        for a in t1.scheme.attributes
    )


def merge_tuples(t1: HistoricalTuple, t2: HistoricalTuple,
                 scheme: Optional[RelationScheme] = None) -> HistoricalTuple:
    """``t1 + t2`` — lifespan union and attribute-wise function union.

    Raises
    ------
    MergeCompatibilityError
        If the tuples are not mergable.
    """
    if not are_mergable(t1, t2):
        raise MergeCompatibilityError("tuples are not mergable")
    target = scheme or t1.scheme
    lifespan = t1.lifespan | t2.lifespan
    values = {
        a: t1.value(a).merge(t2.value(a)).restrict(lifespan & target.als(a))
        for a in t1.scheme.attributes
    }
    return HistoricalTuple(target, lifespan, values)


def is_matched(t: HistoricalTuple, relation: HistoricalRelation) -> bool:
    """True if some tuple of *relation* is mergable with *t*."""
    return find_match(t, relation) is not None


def find_match(t: HistoricalTuple,
               relation: HistoricalRelation) -> Optional[HistoricalTuple]:
    """The tuple of *relation* mergable with *t*, if any.

    Uses the key index: only same-key tuples can merge.
    """
    for candidate in relation.tuples_with_key(*t.key_value()):
        if are_mergable(t, candidate):
            return candidate
    return None


def union_merge(r1: HistoricalRelation, r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 ∪ₒ r2`` — the object-based union (Figure 11's ``r1 + r2``).

    Unmatched tuples of either side pass through unchanged; matched
    pairs are merged into a single tuple per object.
    """
    check_merge_compatible(r1, r2)
    scheme = r1.scheme.with_lifespans(
        r1.scheme.merge_lifespans(r2.scheme, Lifespan.union),
        name=f"{r1.scheme.name}_umerge",
    )
    out: list[HistoricalTuple] = []
    merged_from_r2: set[HistoricalTuple] = set()
    for t1 in r1:
        t2 = find_match(t1, r2)
        if t2 is None:
            out.append(t1.with_scheme(scheme))
        else:
            out.append(merge_tuples(t1, t2, scheme))
            merged_from_r2.add(t2)
    for t2 in r2:
        if t2 not in merged_from_r2 and not is_matched(t2, r1):
            out.append(t2.with_scheme(scheme))
    return HistoricalRelation(scheme, out, enforce_key=False)


def intersection_merge(r1: HistoricalRelation,
                       r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 ∩ₒ r2`` — mergable pairs restricted to the lifespan overlap.

    Pairs whose lifespans do not overlap contribute nothing (the empty
    lifespan cannot form a tuple).
    """
    check_merge_compatible(r1, r2)
    scheme = r1.scheme.with_lifespans(
        r1.scheme.merge_lifespans(r2.scheme, Lifespan.intersection),
        name=f"{r1.scheme.name}_imerge",
    )
    out: list[HistoricalTuple] = []
    for t1 in r1:
        t2 = find_match(t1, r2)
        if t2 is None:
            continue
        overlap = t1.lifespan & t2.lifespan
        restricted = t1.restrict(overlap, scheme)
        if restricted is not None:
            out.append(restricted)
    return HistoricalRelation(scheme, out, enforce_key=False)


def difference_merge(r1: HistoricalRelation,
                     r2: HistoricalRelation) -> HistoricalRelation:
    """``r1 −ₒ r2`` — per-object lifespan subtraction.

    Unmatched tuples of ``r1`` pass through; a matched tuple keeps only
    ``t1.l − t2.l`` (vanishing entirely when that is empty).
    """
    check_merge_compatible(r1, r2)
    out: list[HistoricalTuple] = []
    for t1 in r1:
        t2 = find_match(t1, r2)
        if t2 is None:
            out.append(t1)
            continue
        remaining = t1.lifespan - t2.lifespan
        if remaining.is_empty:
            continue
        restricted = t1.restrict(remaining)
        if restricted is not None:
            out.append(restricted)
    return HistoricalRelation(r1.scheme, out, enforce_key=False)
