"""Per-tuple streaming kernels — one tuple in, at most one tuple out.

The relation-level operators of Sections 4.2–4.4 (``select_if``,
``select_when``, ``timeslice``, ``project``, ``rename``) are all
tuple-at-a-time maps or filters: they look at one tuple, keep / drop /
derive it, and never consult the rest of the relation. This module
isolates that per-tuple logic so two execution styles can share it
verbatim:

* the **naive evaluator** — the relation operators in
  :mod:`repro.algebra.select` / :mod:`repro.algebra.timeslice` apply a
  kernel under :meth:`HistoricalRelation.filter` / ``map_tuples``;
* the **pipelined plan executor**
  (:mod:`repro.planner.executor`) — operators stream tuples through
  the same kernels without materializing intermediate relations, and
  fused scans (:class:`repro.planner.plan.FusedScan`) apply them while
  records are still half-decoded.

Because both styles run the *same* kernel, "pipelined == naive" is an
identity on the decision logic, not a re-implementation that could
drift (the property suite in ``tests/test_planner.py`` checks it
end-to-end anyway).

The kernels only touch two members of their operand: ``t.lifespan``
and ``t.value(attr)``. Anything offering those — a real
:class:`~repro.core.tuples.HistoricalTuple` or a lazily-decoded
:class:`~repro.storage.engine.TupleView` — can flow through the
predicate kernels.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.predicates import Predicate
from repro.algebra.select import FORALL, Quantifier
from repro.core.errors import AlgebraError
from repro.core.lifespan import ALWAYS, EMPTY_LIFESPAN, Lifespan
from repro.core.tuples import HistoricalTuple


def select_if_keeps(t, predicate: Predicate, quantifier: Quantifier,
                    lifespan: Optional[Lifespan], vacuous: bool = False) -> bool:
    """``σ-IF`` decision for one tuple: keep it (whole) or not.

    *t* needs only ``.lifespan`` and ``.value(attr)`` — see the module
    docstring.
    """
    bound = ALWAYS if lifespan is None else lifespan
    window = bound & t.lifespan
    if window.is_empty:
        return vacuous if quantifier is FORALL else False
    satisfied = predicate.satisfying_lifespan(t, window)
    if quantifier is Quantifier.EXISTS:
        return not satisfied.is_empty
    if quantifier is FORALL:
        return satisfied == window
    raise AlgebraError(f"unknown quantifier {quantifier!r}")


def select_when_window(t, predicate: Predicate,
                       lifespan: Optional[Lifespan]) -> Lifespan:
    """``σ-WHEN`` window for one tuple: when the criterion is met.

    Returns the (possibly empty) lifespan the selected tuple should be
    restricted to; an empty result means the tuple drops out.
    """
    bound = ALWAYS if lifespan is None else lifespan
    window = bound & t.lifespan
    if window.is_empty:
        return EMPTY_LIFESPAN
    return predicate.satisfying_lifespan(t, window)


def slice_tuple(t: HistoricalTuple, lifespan: Lifespan) -> Optional[HistoricalTuple]:
    """``τ_L`` for one tuple: ``t|_{L ∩ t.l}``, or None when empty.

    Fast path: when ``t.l ⊆ L`` the restriction is the identity, so the
    tuple is returned as-is without rebuilding — this is what makes a
    wide (non-selective) slice stream at scan speed.
    """
    if t.lifespan.issubset(lifespan):
        return t
    return t.restrict(lifespan)


def when_restrict(t: HistoricalTuple, window: Lifespan) -> Optional[HistoricalTuple]:
    """Restrict a σ-WHEN-selected tuple to its satisfying *window*."""
    if window.is_empty:
        return None
    if t.lifespan == window:
        return t
    return t.restrict(window)


def dynamic_window(t, attribute: str) -> Lifespan:
    """``τ_@A`` window for one tuple: the image of ``t(A)``."""
    return t.value(attribute).image_lifespan()


def check_time_valued(scheme, attribute: str) -> None:
    """Raise unless *attribute* is time-valued (``DOM(A) ⊆ TT``).

    The eligibility check of dynamic TIME-SLICE, shared by the naive
    operator and the streaming executor so both reject an invalid
    attribute identically — and eagerly, before any tuple flows.
    """
    from repro.core.errors import NotTimeValuedError

    dom = scheme.dom(attribute)
    if not dom.time_valued:
        raise NotTimeValuedError(
            f"dynamic TIME-SLICE needs a TT attribute; {attribute!r} has "
            f"domain {dom.name}"
        )
