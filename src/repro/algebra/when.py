"""WHEN — the relation-to-lifespan operator ``Ω`` (Section 4.5).

HRDM's algebra is multi-sorted: its universes are historical relations
*and* lifespans. All other operators map relations to relations; WHEN
"extracts purely temporal information"::

    Ω(r) = LS(r)

Used with SELECT it answers *when* a condition held, and because its
result is a lifespan it can feed operators that take a lifespan
parameter (static TIME-SLICE, the ``L`` bound of SELECT-IF) — the
composition pattern the paper points out.

>>> when(select_when(emp, AttrOp("SALARY", ">", 30_000)))   # doctest: +SKIP
Lifespan(...)   # the times anyone earned over 30K
"""

from __future__ import annotations

from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation


def when(relation: HistoricalRelation) -> Lifespan:
    """``Ω(r) = LS(r)`` — the set of times over which *r* is defined."""
    return relation.lifespan()
