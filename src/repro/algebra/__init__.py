"""The historical relational algebra of HRDM (Section 4).

One function per paper operator, a composable predicate language, and
an expression tree with a rewrite engine exploiting the algebraic laws
sketched in Section 5.
"""

from repro.algebra.join import (
    equijoin,
    join_scheme,
    natural_join,
    theta_join,
    theta_join_union,
    time_join,
)
from repro.algebra.merge import (
    are_mergable,
    check_merge_compatible,
    difference_merge,
    find_match,
    intersection_merge,
    is_matched,
    merge_tuples,
    union_merge,
)
from repro.algebra.predicates import (
    ALWAYS_TRUE,
    And,
    AttrOp,
    AttrRef,
    Custom,
    Not,
    Or,
    Predicate,
    TruePredicate,
    referenced_attributes,
)
from repro.algebra.aggregate import (
    aggregate,
    aggregate_when,
    avg_over,
    count_alive,
    count_over,
    group_aggregate,
    max_over,
    min_over,
    sum_over,
)
from repro.algebra.project import project
from repro.algebra.rename import rename
from repro.algebra.select import EXISTS, FORALL, Quantifier, select_if, select_when
from repro.algebra.setops import (
    cartesian_product,
    check_union_compatible,
    concatenate,
    difference,
    intersection,
    product_scheme,
    union,
)
from repro.algebra.timeslice import dynamic_timeslice, timeslice, timeslice_at
from repro.algebra.when import when

__all__ = [
    "ALWAYS_TRUE",
    "And",
    "AttrOp",
    "AttrRef",
    "Custom",
    "EXISTS",
    "FORALL",
    "Not",
    "Or",
    "Predicate",
    "Quantifier",
    "TruePredicate",
    "aggregate",
    "aggregate_when",
    "are_mergable",
    "avg_over",
    "count_alive",
    "count_over",
    "group_aggregate",
    "max_over",
    "min_over",
    "rename",
    "sum_over",
    "cartesian_product",
    "check_merge_compatible",
    "check_union_compatible",
    "concatenate",
    "difference",
    "difference_merge",
    "dynamic_timeslice",
    "equijoin",
    "find_match",
    "intersection",
    "intersection_merge",
    "is_matched",
    "join_scheme",
    "merge_tuples",
    "natural_join",
    "product_scheme",
    "project",
    "referenced_attributes",
    "select_if",
    "select_when",
    "theta_join",
    "theta_join_union",
    "time_join",
    "timeslice",
    "timeslice_at",
    "union",
    "union_merge",
    "when",
]
