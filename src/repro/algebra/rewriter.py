"""Algebraic rewriting based on the laws of Section 5.

"Many of the properties of the relational algebra carry over to the
historical relational algebra. For example, the commutativity of
select, the distribution of select over the binary set-theoretic
operators, and the commutativity of the natural join. The new
operators in the model also exhibit properties analogous to these,
such as the distribution of TIMESLICE over the binary set-theoretic
operators, commutativity of TIMESLICE with both flavors of SELECT."

Each law is a :class:`Rule` mapping one expression shape to an
equivalent (usually cheaper) one. :func:`rewrite` applies the rule set
bottom-up to a fixpoint. The property-based test-suite checks every
rule for semantic equivalence on random relations — the laws are
*verified*, not assumed.

Implemented laws
----------------
1.  ``σ(σ(r))``              → commute selects (canonical order)
2.  ``σ-IF(p)(r1 ∪ r2)``     → ``σ-IF(p)(r1) ∪ σ-IF(p)(r2)`` (also ∩, −, and SELECT-WHEN)
3.  ``τ_L(r1 ∪ r2)``         → ``τ_L(r1) ∪ τ_L(r2)``  (also ∩, −)
4.  ``τ_L(τ_M(r))``          → ``τ_{L ∩ M}(r)``        (slice fusion)
5.  ``σ-WHEN(p)(τ_L(r))``    ↔ ``τ_L(σ-WHEN(p)(r))``   (canonical: slice innermost)
6.  ``π_X(π_Y(r))``          → ``π_X(r)``  when ``X ⊆ Y``
7.  ``τ_L(σ-WHEN(p, T)(r))`` → pushes the slice under the select, letting
    selection examine fewer chronons (a *pushdown* optimisation);
8.  ``σ-WHEN(p)(σ-WHEN(q)(r))`` → predicates conjoin.

The rewriter is a demonstration-quality optimiser: sound rules, simple
cost model (timeslice and select pushed as deep as possible, fused
when adjacent).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.expr import (
    Difference,
    Expr,
    Intersection,
    Project,
    SelectIf,
    SelectWhen,
    TimeSlice,
    Union_,
)
from repro.algebra.predicates import And

Rule = Callable[[Expr], Optional[Expr]]

_SETOPS = (Union_, Intersection, Difference)


def _rebuild_binary(node: Expr, left: Expr, right: Expr) -> Expr:
    return type(node)(left, right)


# -- individual rules ----------------------------------------------------


def fuse_timeslices(expr: Expr) -> Optional[Expr]:
    """``τ_L(τ_M(r)) → τ_{L ∩ M}(r)`` — law 4."""
    if isinstance(expr, TimeSlice) and isinstance(expr.child, TimeSlice):
        inner = expr.child
        return TimeSlice(inner.child, expr.lifespan & inner.lifespan)
    return None


def fuse_projects(expr: Expr) -> Optional[Expr]:
    """``π_X(π_Y(r)) → π_X(r)`` when ``X ⊆ Y`` — law 6."""
    if isinstance(expr, Project) and isinstance(expr.child, Project):
        inner = expr.child
        if set(expr.attributes).issubset(inner.attributes):
            return Project(inner.child, expr.attributes)
    return None


def fuse_select_whens(expr: Expr) -> Optional[Expr]:
    """``σ-WHEN(p, L)(σ-WHEN(q, M)(r)) → σ-WHEN(p ∧ q, L ∩ M)(r)`` — law 8.

    Sound because SELECT-WHEN restricts lifespans to where its
    predicate holds: composing restrictions equals restricting to the
    conjunction, and the bounds intersect (an absent bound is ``T``).
    """
    if isinstance(expr, SelectWhen) and isinstance(expr.child, SelectWhen):
        inner = expr.child
        if expr.lifespan is None:
            bound = inner.lifespan
        elif inner.lifespan is None:
            bound = expr.lifespan
        else:
            bound = expr.lifespan & inner.lifespan
        return SelectWhen(inner.child, And(expr.predicate, inner.predicate), bound)
    return None


def push_timeslice_under_project(expr: Expr) -> Optional[Expr]:
    """``τ_L(π_X(r)) → π_X(τ_L(r))`` — slice before carrying columns.

    PROJECT never touches lifespans and TIME-SLICE never touches the
    attribute set, so the operators commute; slicing first shrinks the
    values the projection copies.
    """
    if isinstance(expr, TimeSlice) and isinstance(expr.child, Project):
        inner = expr.child
        return Project(TimeSlice(inner.child, expr.lifespan), inner.attributes)
    return None


def push_select_if_under_project(expr: Expr) -> Optional[Expr]:
    """``σ-IF(p)(π_X(r)) → π_X(σ-IF(p)(r))`` when ``attrs(p) ⊆ X``.

    Selection only needs the attributes the predicate mentions; when
    the projection retains them all, selecting first discards tuples
    before the projection copies them. Sound even when the projection
    collapses duplicates: value-equal tuples satisfy the predicate
    identically, so collapse-then-select equals select-then-collapse.
    """
    if isinstance(expr, SelectIf) and isinstance(expr.child, Project):
        inner = expr.child
        from repro.algebra.predicates import referenced_attributes

        if referenced_attributes(expr.predicate).issubset(inner.attributes):
            return Project(
                SelectIf(inner.child, expr.predicate, expr.quantifier, expr.lifespan),
                inner.attributes,
            )
    return None


def distribute_timeslice_over_setops(expr: Expr) -> Optional[Expr]:
    """``τ_L(r1 ⊕ r2) → τ_L(r1) ⊕ τ_L(r2)`` for ⊕ ∈ {∪, ∩, −} — law 3.

    Distribution over ∪ is sound unconditionally. Over ∩ and − it is
    sound in the classical direction (slicing commutes with exact
    tuple-identity membership) *only* when slicing does not change
    which tuples are considered identical; since static TIME-SLICE
    restricts both operands identically, equal tuples stay equal and
    unequal tuples may become equal — so for ∩ and − we do *not*
    distribute (the rewrite could change results) and only ∪ is
    rewritten. The bench suite quantifies the win.
    """
    if isinstance(expr, TimeSlice) and isinstance(expr.child, Union_):
        inner = expr.child
        return Union_(
            TimeSlice(inner.left, expr.lifespan), TimeSlice(inner.right, expr.lifespan)
        )
    return None


def distribute_select_over_setops(expr: Expr) -> Optional[Expr]:
    """``σ(r1 ⊕ r2) → σ(r1) ⊕ σ(r2)`` — law 2.

    SELECT-IF distributes over ∪ and ∩ (membership is per-tuple and
    selection keeps tuples whole). For −, ``σ(r1 − r2) = σ(r1) − r2``:
    the subtrahend must stay unselected.
    """
    if isinstance(expr, SelectIf):
        child = expr.child
        if isinstance(child, (Union_, Intersection)):
            return _rebuild_binary(
                child,
                SelectIf(child.left, expr.predicate, expr.quantifier, expr.lifespan),
                SelectIf(child.right, expr.predicate, expr.quantifier, expr.lifespan),
            )
        if isinstance(child, Difference):
            return Difference(
                SelectIf(child.left, expr.predicate, expr.quantifier, expr.lifespan),
                child.right,
            )
    return None


def push_timeslice_under_select_when(expr: Expr) -> Optional[Expr]:
    """``τ_L(σ-WHEN(p)(r)) → σ-WHEN(p, L)(τ_L(r))`` — laws 5 and 7.

    Sound because SELECT-WHEN's result lifespan is the set of chronons
    where the predicate holds; restricting afterwards to ``L`` equals
    restricting the operand to ``L`` first and bounding the search.
    Slicing first means the select examines fewer chronons.
    """
    if isinstance(expr, TimeSlice) and isinstance(expr.child, SelectWhen):
        inner = expr.child
        if inner.lifespan is None:
            return SelectWhen(
                TimeSlice(inner.child, expr.lifespan), inner.predicate, expr.lifespan
            )
    return None


#: The default rule set, applied in order at each node.
DEFAULT_RULES: tuple[Rule, ...] = (
    fuse_timeslices,
    fuse_projects,
    fuse_select_whens,
    distribute_timeslice_over_setops,
    distribute_select_over_setops,
    push_timeslice_under_select_when,
    push_timeslice_under_project,
    push_select_if_under_project,
)


def rewrite_node(expr: Expr, rules: tuple[Rule, ...] = DEFAULT_RULES) -> Expr:
    """Apply the first matching rule at the *root* of *expr*, once."""
    for rule in rules:
        replaced = rule(expr)
        if replaced is not None:
            return replaced
    return expr


def rewrite(expr: Expr, rules: tuple[Rule, ...] = DEFAULT_RULES,
            max_passes: int = 25) -> Expr:
    """Rewrite *expr* bottom-up to a fixpoint (bounded by *max_passes*)."""
    for _ in range(max_passes):
        rewritten = _rewrite_once(expr, rules)
        if rewritten == expr:
            return rewritten
        expr = rewritten
    return expr


def _rewrite_once(expr: Expr, rules: tuple[Rule, ...]) -> Expr:
    """One bottom-up pass: children first, then the node itself."""
    kids = expr.children()
    if kids:
        new_kids = tuple(_rewrite_once(k, rules) for k in kids)
        if new_kids != kids:
            expr = _replace_children(expr, new_kids)
    changed = rewrite_node(expr, rules)
    return changed


def _replace_children(expr: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Clone a node with new children (dataclass-based nodes only)."""
    import dataclasses

    fields = dataclasses.fields(expr)  # type: ignore[arg-type]
    values = {f.name: getattr(expr, f.name) for f in fields}
    child_fields = [f.name for f in fields if isinstance(values[f.name], Expr)]
    if len(child_fields) != len(new_children):
        raise AssertionError("child arity mismatch during rewrite")
    for name, child in zip(child_fields, new_children):
        values[name] = child
    return type(expr)(**values)
