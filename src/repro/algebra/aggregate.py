"""Temporal aggregation — relation-to-function summaries.

The paper's algebra maps relations to relations (and WHEN to
lifespans). Follow-on temporal languages (TQuel, TSQL2 — both in this
paper's lineage) add *temporal aggregates*: at every chronon, summarise
the tuples alive there. In HRDM terms an aggregate is a map from a
historical relation to a **temporal function**::

    COUNT(r)       : T -> ℕ        how many objects exist at each time
    SUM(r, A)      : T -> number   total of A over the objects alive
    MIN/MAX/AVG(r, A)              likewise

Evaluation is segment-wise, not chronon-wise: the answer can only
change at a *boundary* — the start or end of some tuple's value
segment or lifespan interval — so we decompose time into elementary
intervals between consecutive boundaries, compute one aggregate value
per elementary interval, and let :class:`TemporalFunction` coalesce
equal neighbours. Cost is O(boundaries × tuples), independent of the
chronon span.

Aggregates are defined over the chronons where at least one
contributing value exists; elsewhere the result function is undefined
(no rows → no fact, the model's usual reading).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence

from repro.core.attribute import AttributeLike, attr_name
from repro.core.errors import AlgebraError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.tfunc import TemporalFunction


def _boundaries_for_lifespans(relation: HistoricalRelation) -> list[int]:
    cuts: set[int] = set()
    for t in relation:
        for lo, hi in t.lifespan.intervals:
            cuts.add(lo)
            cuts.add(hi + 1)
    return sorted(cuts)


def _boundaries_for_attribute(relation: HistoricalRelation,
                              attribute: str) -> list[int]:
    cuts: set[int] = set()
    for t in relation:
        for (lo, hi), _ in t.value(attribute).items():
            cuts.add(lo)
            cuts.add(hi + 1)
    return sorted(cuts)


def _elementary_intervals(cuts: Sequence[int]) -> Iterator[tuple[int, int]]:
    for i in range(len(cuts) - 1):
        yield cuts[i], cuts[i + 1] - 1


def count_alive(relation: HistoricalRelation) -> TemporalFunction:
    """``COUNT(r)`` — how many objects exist at each chronon.

    >>> count_alive(emp)          # doctest: +SKIP
    TemporalFunction([0, 4]→2, [5, 9]→3, ...)
    """
    cuts = _boundaries_for_lifespans(relation)
    segments = []
    for lo, hi in _elementary_intervals(cuts):
        n = sum(1 for t in relation if lo in t.lifespan)
        if n > 0:
            segments.append(((lo, hi), n))
    return TemporalFunction(segments)


def aggregate(
    relation: HistoricalRelation,
    attribute: AttributeLike,
    fn: Callable[[list[Any]], Any],
    label: Optional[str] = None,
) -> TemporalFunction:
    """Apply *fn* to the bag of *attribute* values alive at each chronon.

    *fn* receives a non-empty list of values; chronons where no tuple
    carries a value are outside the result's domain.

    >>> aggregate(emp, "SALARY", max)     # doctest: +SKIP
    """
    name = attr_name(attribute)
    relation.scheme.check_attributes([name])
    cuts = _boundaries_for_attribute(relation, name)
    segments = []
    for lo, hi in _elementary_intervals(cuts):
        values = [
            v for t in relation
            if (v := t.value(name).get(lo, _MISSING)) is not _MISSING
        ]
        if values:
            segments.append(((lo, hi), fn(values)))
    del label
    return TemporalFunction(segments)


def sum_over(relation: HistoricalRelation,
             attribute: AttributeLike) -> TemporalFunction:
    """``SUM(r, A)`` at each chronon."""
    return aggregate(relation, attribute, sum)


def min_over(relation: HistoricalRelation,
             attribute: AttributeLike) -> TemporalFunction:
    """``MIN(r, A)`` at each chronon."""
    return aggregate(relation, attribute, min)


def max_over(relation: HistoricalRelation,
             attribute: AttributeLike) -> TemporalFunction:
    """``MAX(r, A)`` at each chronon."""
    return aggregate(relation, attribute, max)


def avg_over(relation: HistoricalRelation,
             attribute: AttributeLike) -> TemporalFunction:
    """``AVG(r, A)`` at each chronon (float result)."""
    return aggregate(relation, attribute, lambda vs: sum(vs) / len(vs))


def count_over(relation: HistoricalRelation,
               attribute: AttributeLike) -> TemporalFunction:
    """``COUNT(r, A)`` — tuples with a defined A at each chronon."""
    return aggregate(relation, attribute, len)


def group_aggregate(
    relation: HistoricalRelation,
    group_by: AttributeLike,
    attribute: AttributeLike,
    fn: Callable[[list[Any]], Any],
) -> dict[Any, TemporalFunction]:
    """Aggregate *attribute* per distinct value of *group_by*, over time.

    The grouping attribute's value is read at each chronon, so objects
    migrate between groups as the grouping value changes (e.g. salary
    totals per department while employees transfer).

    Returns a mapping ``group value -> temporal function``.
    """
    g = attr_name(group_by)
    a = attr_name(attribute)
    relation.scheme.check_attributes([g, a])
    cuts = sorted(
        set(_boundaries_for_attribute(relation, g))
        | set(_boundaries_for_attribute(relation, a))
    )
    per_group: dict[Any, list] = {}
    for lo, hi in _elementary_intervals(cuts):
        buckets: dict[Any, list] = {}
        for t in relation:
            group = t.value(g).get(lo, _MISSING)
            value = t.value(a).get(lo, _MISSING)
            if group is _MISSING or value is _MISSING:
                continue
            buckets.setdefault(group, []).append(value)
        for group, values in buckets.items():
            per_group.setdefault(group, []).append(((lo, hi), fn(values)))
    return {group: TemporalFunction(segments)
            for group, segments in per_group.items()}


def aggregate_when(fn_result: TemporalFunction, predicate: Callable[[Any], bool]) -> Lifespan:
    """The chronons at which an aggregate satisfies *predicate*.

    Composes with WHEN-style reasoning: e.g. "when did headcount exceed
    50?" is ``aggregate_when(count_alive(r), lambda n: n > 50)``.
    """
    satisfied = [
        interval for interval, value in fn_result.items() if predicate(value)
    ]
    return Lifespan(*satisfied)


_MISSING = object()


def _check_nonempty_callable(fn) -> None:  # pragma: no cover - defensive
    if not callable(fn):
        raise AlgebraError("aggregate function must be callable")
