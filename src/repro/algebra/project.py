"""PROJECT — reduction along the attribute dimension (Section 4.2).

"The project operator π when applied to a relation r removes from r
all but a specified set of attributes ... It does not change the values
of any of the remaining attributes, or the combinations of attribute
values in the tuples of the resulting relation."

Historical projection keeps tuple lifespans intact. Unlike classical
projection, dropping attributes can make two tuples *value*-equal while
they remain distinct objects; the result therefore preserves one tuple
per input tuple unless they are exactly equal (relations are sets).
When the projection keeps the key, the result stays well keyed; when
it drops (part of) the key, the retained attributes become the new key
and duplicate-key results are permitted, mirroring the classical
duplicate-elimination question in the temporal setting.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.attribute import AttributeLike
from repro.core.relation import HistoricalRelation


def project(relation: HistoricalRelation,
            attributes: Iterable[AttributeLike]) -> HistoricalRelation:
    """``π_X(r)`` — the projection of *relation* onto *attributes*.

    >>> salaries = project(emp, ["NAME", "SALARY"])   # doctest: +SKIP
    """
    names = relation.scheme.check_attributes(attributes)
    scheme = relation.scheme.project(names)
    keeps_key = set(relation.scheme.key).issubset(names)
    return relation.map_tuples(
        lambda t: t.project(names, scheme),
        scheme=scheme,
        enforce_key=relation.enforce_key and keeps_key,
    )
