"""SELECT-IF and SELECT-WHEN (Section 4.3).

Because tuples have lifespans, selection comes in two flavors:

* **SELECT-IF** ``σ-IF(A θ a, Q, L)(r)`` — *whole-object* selection.
  A tuple is kept (with its lifespan unchanged) iff the criterion
  holds, quantified by ``Q ∈ {∃, ∀}`` over ``L ∩ t.l``. This is the
  flavor closest to the classical select: "a complete object either is
  or is not selected".

* **SELECT-WHEN** — a *hybrid* reduction in both the value and the
  temporal dimensions: a selected tuple's new lifespan is "exactly
  those points in time WHEN the criterion is met", and its values are
  restricted to those points. The paper's example:
  ``σ-WHEN(NAME=John ∧ SAL=30K)(emp)`` yields John's tuple with
  lifespan = the times John earned 30K.

Quantifier subtlety, handled as in the paper's definition: with
``Q = ∀`` the criterion must hold at *every* chronon of ``L ∩ t.l``;
if that set is empty, the universal quantification is vacuously true —
we follow the convention that a tuple with no relevant chronons is
*not* selected (``∀`` over the empty set selects nothing meaningful),
controlled by ``vacuous``.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.core.errors import AlgebraError
from repro.core.lifespan import ALWAYS, Lifespan
from repro.core.relation import HistoricalRelation
from repro.algebra.predicates import Predicate


class Quantifier(Enum):
    """The bounded quantifiers of SELECT-IF: ``∃`` and ``∀``."""

    EXISTS = "exists"
    FORALL = "forall"


EXISTS = Quantifier.EXISTS
FORALL = Quantifier.FORALL


def select_if(
    relation: HistoricalRelation,
    predicate: Predicate,
    quantifier: Quantifier = EXISTS,
    lifespan: Optional[Lifespan] = None,
    vacuous: bool = False,
) -> HistoricalRelation:
    """``σ-IF(θ, Q, L)(r)`` — whole-tuple selection.

    Parameters
    ----------
    relation:
        The operand.
    predicate:
        The selection criterion ``A θ a`` (or any composite).
    quantifier:
        ``EXISTS`` (default) or ``FORALL`` over ``L ∩ t.l``.
    lifespan:
        The bounding lifespan ``L``; defaults to ``T`` (all times), in
        which case ``s ∈ L ∩ t.l`` is just ``s ∈ t.l``.
    vacuous:
        Whether ``FORALL`` over an *empty* ``L ∩ t.l`` selects the
        tuple (vacuous truth). Defaults to False: an object with no
        relevant chronons is not selected.

    Returns
    -------
    HistoricalRelation
        The selected tuples, lifespans unchanged.
    """
    bound = ALWAYS if lifespan is None else lifespan

    def keep(t) -> bool:
        window = bound & t.lifespan
        if window.is_empty:
            return vacuous if quantifier is FORALL else False
        satisfied = predicate.satisfying_lifespan(t, window)
        if quantifier is EXISTS:
            return not satisfied.is_empty
        if quantifier is FORALL:
            return satisfied == window
        raise AlgebraError(f"unknown quantifier {quantifier!r}")

    return relation.filter(keep)


def select_when(
    relation: HistoricalRelation,
    predicate: Predicate,
    lifespan: Optional[Lifespan] = None,
) -> HistoricalRelation:
    """``σ-WHEN(θ)(r)`` — restrict each tuple to when the criterion holds.

    Each selected tuple ``t`` becomes ``t' = t|_{W}`` where ``W`` is the
    set of chronons of ``(L ∩ t.l)`` at which the predicate is met;
    tuples with empty ``W`` drop out entirely.
    """
    bound = ALWAYS if lifespan is None else lifespan

    def shrink(t):
        window = bound & t.lifespan
        if window.is_empty:
            return None
        satisfied = predicate.satisfying_lifespan(t, window)
        if satisfied.is_empty:
            return None
        return t.restrict(satisfied)

    return relation.map_tuples(shrink)
