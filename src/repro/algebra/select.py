"""SELECT-IF and SELECT-WHEN (Section 4.3).

Because tuples have lifespans, selection comes in two flavors:

* **SELECT-IF** ``σ-IF(A θ a, Q, L)(r)`` — *whole-object* selection.
  A tuple is kept (with its lifespan unchanged) iff the criterion
  holds, quantified by ``Q ∈ {∃, ∀}`` over ``L ∩ t.l``. This is the
  flavor closest to the classical select: "a complete object either is
  or is not selected".

* **SELECT-WHEN** — a *hybrid* reduction in both the value and the
  temporal dimensions: a selected tuple's new lifespan is "exactly
  those points in time WHEN the criterion is met", and its values are
  restricted to those points. The paper's example:
  ``σ-WHEN(NAME=John ∧ SAL=30K)(emp)`` yields John's tuple with
  lifespan = the times John earned 30K.

Quantifier subtlety, handled as in the paper's definition: with
``Q = ∀`` the criterion must hold at *every* chronon of ``L ∩ t.l``;
if that set is empty, the universal quantification is vacuously true —
we follow the convention that a tuple with no relevant chronons is
*not* selected (``∀`` over the empty set selects nothing meaningful),
controlled by ``vacuous``.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.algebra.predicates import Predicate


class Quantifier(Enum):
    """The bounded quantifiers of SELECT-IF: ``∃`` and ``∀``."""

    EXISTS = "exists"
    FORALL = "forall"


EXISTS = Quantifier.EXISTS
FORALL = Quantifier.FORALL

# Imported after Quantifier is defined: repro.algebra.kernels needs the
# enum, and this module applies the kernels relation-wide. The per-tuple
# decision logic lives in kernels so the pipelined plan executor runs
# the very same code (see the kernels module docstring).
from repro.algebra import kernels  # noqa: E402


def select_if(
    relation: HistoricalRelation,
    predicate: Predicate,
    quantifier: Quantifier = EXISTS,
    lifespan: Optional[Lifespan] = None,
    vacuous: bool = False,
) -> HistoricalRelation:
    """``σ-IF(θ, Q, L)(r)`` — whole-tuple selection.

    Parameters
    ----------
    relation:
        The operand.
    predicate:
        The selection criterion ``A θ a`` (or any composite).
    quantifier:
        ``EXISTS`` (default) or ``FORALL`` over ``L ∩ t.l``.
    lifespan:
        The bounding lifespan ``L``; defaults to ``T`` (all times), in
        which case ``s ∈ L ∩ t.l`` is just ``s ∈ t.l``.
    vacuous:
        Whether ``FORALL`` over an *empty* ``L ∩ t.l`` selects the
        tuple (vacuous truth). Defaults to False: an object with no
        relevant chronons is not selected.

    Returns
    -------
    HistoricalRelation
        The selected tuples, lifespans unchanged.
    """
    return relation.filter(
        lambda t: kernels.select_if_keeps(t, predicate, quantifier, lifespan, vacuous)
    )


def select_when(
    relation: HistoricalRelation,
    predicate: Predicate,
    lifespan: Optional[Lifespan] = None,
) -> HistoricalRelation:
    """``σ-WHEN(θ)(r)`` — restrict each tuple to when the criterion holds.

    Each selected tuple ``t`` becomes ``t' = t|_{W}`` where ``W`` is the
    set of chronons of ``(L ∩ t.l)`` at which the predicate is met;
    tuples with empty ``W`` drop out entirely.
    """
    def shrink(t):
        satisfied = kernels.select_when_window(t, predicate, lifespan)
        return kernels.when_restrict(t, satisfied)

    return relation.map_tuples(shrink)
