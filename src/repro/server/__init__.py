"""The database service — a threaded TCP server for one catalog.

This package turns an embedded
:class:`~repro.database.database.HistoricalDatabase` into a *service*:
a :class:`DatabaseServer` accepts TCP connections, speaks the
length-prefixed JSON wire protocol of :mod:`repro.server.protocol`,
and runs one worker thread per connection against the shared catalog.
The concurrency story is the database's own
(:mod:`repro.database.concurrency`):

* **queries** execute against a published snapshot — they never block
  on writers and never observe half a transaction, no matter how many
  connections commit concurrently;
* **transactions** are snapshot-isolated and optimistic: each
  connection's session builds its write-set against its begin-time
  snapshot with no lock held, and COMMIT validates
  first-committer-wins — a lost race returns a *retryable*
  :class:`~repro.core.errors.ConflictError` ERROR frame and the
  session rolls back cleanly (``Client.run_transaction`` retries);
* the **write-ahead-log append is the sole serialization point**;
  under ``sync="batch"`` it absorbs the concurrent commit stream into
  one fsync per batch window (group commit), which is what makes the
  write-heavy service workload scale (``benchmarks/bench_server.py``).

Connection sessions are stateful: ``BEGIN`` opens a buffered
transaction whose ``EXECUTE`` frames accumulate server-side until
``COMMIT`` / ``ROLLBACK`` (a dropped connection rolls back), and
``PREPARE`` caches parsed statements for repeated parameterized
``QUERY`` frames. Frame-by-frame documentation lives in
``docs/server.md``; the programmatic client is :mod:`repro.client`;
``python -m repro.server PATH`` serves a durable database directory
from the command line.

>>> from repro.database import HistoricalDatabase
>>> from repro.server import DatabaseServer
>>> server = DatabaseServer(HistoricalDatabase("demo"))
>>> server.start()
>>> host, port = server.address
>>> server.stop()
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Any, Callable, Mapping, Optional, Tuple

from repro import faults as faults_mod
from repro.core.errors import (FencedError, HRDMError, PromotionError,
                               ReadOnlyError, RelationError, TransactionError)
from repro.database.database import HistoricalDatabase
from repro.database.result import QueryResult
from repro.server import protocol
from repro.storage import pager as pager_mod
from repro.storage.engine import StoredRelation

__all__ = ["DatabaseServer", "protocol"]

#: How often a blocked connection checks the server's shutdown flag.
_POLL_SECONDS = 0.2

#: Frames a read-only server (a replica) refuses: everything that
#: could change the catalog or its durable form.
_MUTATING_OPS = frozenset(
    {"execute", "begin", "commit", "rollback", "checkpoint", "flush",
     "txn_prepare", "txn_decide"})

#: Default wait budget for a read carrying a read-your-writes token.
_DEFAULT_WAIT_SECONDS = 1.0


class _WireServer(socketserver.ThreadingTCPServer):
    """One listening socket, one daemon worker thread per connection."""

    allow_reuse_address = True
    daemon_threads = True
    block_on_close = True  # stop() joins the workers — graceful shutdown

    def __init__(self, address, owner: "DatabaseServer"):
        super().__init__(address, _Connection)
        self.owner = owner


class _Connection(socketserver.BaseRequestHandler):
    """One client session: socket, transaction, prepared statements."""

    def setup(self) -> None:
        self.request = faults_mod.wrap_socket(self.request, "server")
        self.request.settimeout(_POLL_SECONDS)
        self.buffer = bytearray()
        self._bound_db: HistoricalDatabase = self.server.owner.db
        self.txn = None
        self.prepared: dict[int, Any] = {}
        self._next_prepared = 0

    @property
    def db(self) -> HistoricalDatabase:
        """The currently served database, resolved per access.

        A replica snapshot resync closes the old database and swaps a
        fresh one into the owner
        (:meth:`~repro.replication.replica.ReplicaServer._install_snapshot`).
        A long-lived connection must follow that swap — otherwise it
        keeps serving the closed, frozen instance while read-your-writes
        waits are satisfied against the *new* applied LSN, silently
        breaking the guarantee. Prepared statements are re-bound to the
        new catalog (dropped if they no longer parse against it); an
        open transaction built against the replaced history is rolled
        back and the request refused.
        """
        current = self.server.owner.db
        if current is not self._bound_db:
            self._bound_db = current
            stale_prepared, self.prepared = self.prepared, {}
            for sid, statement in stale_prepared.items():
                try:
                    self.prepared[sid] = current.prepare(statement.source)
                except HRDMError:
                    pass  # e.g. its relation vanished: the id dies
            stale, self.txn = self.txn, None
            if stale is not None and stale.state == "active":
                try:
                    stale.rollback()
                except HRDMError:
                    pass  # its database is already closed
                raise TransactionError(
                    "the served database was replaced underneath this "
                    "connection (snapshot resync); the open transaction "
                    "was rolled back — BEGIN again")
        return current

    def handle(self) -> None:
        owner: DatabaseServer = self.server.owner
        while not owner.stopping:
            try:
                request = protocol.recv_frame(
                    self.request, self.buffer,
                    keep_waiting=lambda: not owner.stopping)
            except (protocol.ProtocolError, OSError):
                break  # undecodable stream or dead socket: drop the session
            if request is None:
                break
            try:
                response = self.dispatch(request)
            except HRDMError as exc:
                response = protocol.error_to_wire(exc)
            except Exception as exc:  # never let one request kill the worker
                response = protocol.error_to_wire(exc)
            if response is None:
                break  # the handler took the connection over (SUBSCRIBE)
            try:
                protocol.send_frame(self.request, response)
            except protocol.ProtocolError as exc:
                # The response itself was unsendable (e.g. a relation
                # larger than the frame cap): report that instead of
                # tearing the connection down with no diagnosis.
                try:
                    protocol.send_frame(self.request,
                                        protocol.error_to_wire(exc))
                except OSError:
                    break
            except OSError:
                break

    def finish(self) -> None:
        if self.txn is not None and self.txn.state == "active":
            self.txn.rollback()  # a dropped connection aborts its session

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, request: Mapping[str, Any]) -> Optional[dict]:
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise protocol.ProtocolError(f"unknown op {op!r}")
        if op in _MUTATING_OPS:
            owner = self.server.owner
            if owner.fenced:
                raise FencedError(
                    "this ex-primary has been fenced (a replica was "
                    "promoted past its epoch): rediscover the current "
                    "primary and retry there")
            if owner.read_only:
                raise ReadOnlyError(
                    f"this server is a read-only "
                    f"{owner.role}: send writes to the primary")
        # Resolve the served database once per request: frames that
        # never touch it directly (prepared QUERY, ROLLBACK) must still
        # notice a snapshot-resync swap before their handler runs.
        _ = self.db
        return handler(request)

    def _commit_token(self) -> Optional[int]:
        """The LSN to hand back with a write acknowledgement.

        The durable log's current LSN is at least the acknowledged
        commit's — a conservative read-your-writes token (waiting on it
        covers this commit and possibly a few concurrent later ones).
        Ephemeral databases have no log and hand out no tokens.
        """
        durability = getattr(self.db, "_durability", None)
        if durability is None:
            return None
        return durability.position[1]

    def _with_token(self, frame: dict) -> dict:
        token = self._commit_token()
        if token is not None:
            frame["lsn"] = token
            frame["epoch"] = self.db._durability.epoch
        return frame

    # -- session / introspection frames ------------------------------------

    def op_hello(self, request: Mapping) -> dict:
        owner: DatabaseServer = self.server.owner
        frame = {
            "ok": True,
            "server": "hrdm",
            "protocol": protocol.PROTOCOL_VERSION,
            "database": self.db.name,
            "durable": self.db.durable,
            "now": self.db.now,
            "role": owner.role,
            "read_only": owner.read_only,
        }
        durability = getattr(self.db, "_durability", None)
        if durability is not None:
            frame["epoch"] = durability.epoch
        return frame

    def op_status(self, request: Mapping) -> dict:
        """Replication observability: role, position, per-replica lag."""
        owner: DatabaseServer = self.server.owner
        frame: dict[str, Any] = {
            "ok": True,
            "role": owner.role,
            "database": self.db.name,
            "read_only": owner.read_only,
            "fenced": owner.fenced,
        }
        durability = getattr(self.db, "_durability", None)
        if durability is not None:
            generation, lsn = durability.position
            frame["generation"] = generation
            frame["lsn"] = lsn
            frame["epoch"] = durability.epoch
        frame["replicas"] = owner.replica_status()
        frame["in_doubt"] = self.db.in_doubt_transactions()
        extra = owner.status_extra
        if extra is not None:
            frame.update(extra())
        return frame

    def op_subscribe(self, request: Mapping) -> None:
        """Hand the connection to the log shipper (never returns a frame)."""
        from repro.replication import primary as primary_mod

        primary_mod.serve_subscription(self, request)
        return None

    @staticmethod
    def _storage_kind(relation) -> str:
        # Derived from the snapshot value itself (a StoredRelation or a
        # HistoricalRelation), so introspection stays consistent with
        # the committed cut even while another connection drops or
        # recreates the catalog entry.
        return "disk" if isinstance(relation, StoredRelation) else "memory"

    def _maybe_wait(self, request: Mapping) -> None:
        """Honor a read-your-writes token on any read frame.

        A replica waits until its applier has caught up to the client's
        commit token, raising the retryable ReplicaLagError on timeout
        (the client falls back to the primary). A primary trivially
        satisfies any token it handed out, so waiter-less servers skip
        ahead.
        """
        wait_lsn = request.get("wait_lsn")
        if wait_lsn is None:
            return
        waiter = self.server.owner.lsn_waiter
        if waiter is None:
            return
        timeout = request.get("wait_timeout")
        waiter(int(wait_lsn),
               _DEFAULT_WAIT_SECONDS if timeout is None else float(timeout))

    def op_relations(self, request: Mapping) -> dict:
        self._maybe_wait(request)
        env = self.db.relations()  # one committed cut
        return {"ok": True, "relations": [
            {
                "name": name,
                "n_tuples": len(relation),
                "lifespan": protocol.lifespan_to_wire(relation.lifespan()),
                "storage": self._storage_kind(relation),
            }
            for name, relation in env.items()
        ]}

    def op_relation(self, request: Mapping) -> dict:
        self._maybe_wait(request)
        name = request.get("name")
        env = self.db.relations()
        if name not in env:
            raise RelationError(f"no relation named {name!r}")
        payload = protocol.relation_to_wire(env[name])
        payload.update(ok=True, storage=self._storage_kind(env[name]))
        return payload

    # -- querying ----------------------------------------------------------

    def op_query(self, request: Mapping) -> dict:
        self._maybe_wait(request)
        params = request.get("params") or None
        if "prepared" in request:
            statement = self.prepared.get(request["prepared"])
            if statement is None:
                raise protocol.ProtocolError(
                    f"no prepared statement #{request['prepared']} "
                    f"on this connection")
            result = statement.query(params)
        else:
            result = self.db.query(request.get("q", ""), params)
        return self._result_frame(result)

    def op_prepare(self, request: Mapping) -> dict:
        statement = self.db.prepare(request.get("q", ""))
        self._next_prepared += 1
        self.prepared[self._next_prepared] = statement
        return {"ok": True, "id": self._next_prepared,
                "params": list(statement.param_names)}

    @staticmethod
    def _result_frame(result: QueryResult) -> dict:
        if result.kind == "relation":
            payload = protocol.relation_to_wire(result.relation)
            payload.update(ok=True, kind="relation")
            return payload
        if result.kind == "lifespan":
            return {"ok": True, "kind": "lifespan",
                    "lifespan": protocol.lifespan_to_wire(result.lifespan)}
        return {"ok": True, "kind": "plan",
                "text": result.explanation.text}

    # -- transactions -------------------------------------------------------

    def op_begin(self, request: Mapping) -> dict:
        if self.txn is not None and self.txn.state == "active":
            raise TransactionError(
                "a transaction is already active on this connection")
        self.txn = self.db.transaction()
        return {"ok": True}

    def op_commit(self, request: Mapping) -> dict:
        # Detach the session first: a failed commit (conflict,
        # constraint violation) has already rolled the transaction
        # back, and the connection must be free to BEGIN a retry.
        txn = self._active_txn()
        self.txn = None
        txn.commit()
        return self._with_token({"ok": True})

    def op_rollback(self, request: Mapping) -> dict:
        self._active_txn().rollback()
        self.txn = None
        return {"ok": True}

    def _active_txn(self):
        if self.txn is None or self.txn.state != "active":
            raise TransactionError(
                "no transaction is active on this connection (send BEGIN)")
        return self.txn

    # -- two-phase commit ---------------------------------------------------

    def op_txn_prepare(self, request: Mapping) -> dict:
        """Phase one: vote on the connection's open transaction.

        Success means the PREPARE record is force-synced and the
        write-set pinned (see :meth:`Transaction.prepare`); failure —
        conflict, constraint violation — is a no vote and the session
        has rolled back. Either way the connection is free again: the
        decision arrives by TXN_DECIDE (any connection) or, after a
        crash, from presumed-abort recovery.
        """
        txn = self._active_txn()
        self.txn = None
        txn.prepare(str(request["txn_id"]))
        return self._with_token({"ok": True})

    def op_txn_decide(self, request: Mapping) -> dict:
        """Phase two: apply the coordinator's decision.

        Idempotent by design — a coordinator retries decisions until
        acknowledged, so deciding a transaction this participant no
        longer holds (already decided, or never prepared: presumed
        abort) succeeds with ``known: false`` instead of erroring.
        """
        txn_id = str(request["txn_id"])
        commit = bool(request.get("commit"))
        try:
            self.db.resolve_prepared(txn_id, commit)
        except TransactionError:
            return self._with_token({"ok": True, "known": False})
        return self._with_token({"ok": True, "known": True})

    # -- mutations ----------------------------------------------------------

    def op_execute(self, request: Mapping) -> dict:
        action = request.get("action")
        handler = getattr(self, f"do_{action}", None)
        if handler is None:
            raise protocol.ProtocolError(f"unknown execute action {action!r}")
        return handler(request)

    @property
    def _target(self):
        """Where mutations go: the active transaction, else auto-commit."""
        if self.txn is not None and self.txn.state == "active":
            return self.txn
        return self.db

    def _tuple_frame(self, t) -> dict:
        return self._with_token(
            {"ok": True, "tuple": protocol.tuple_to_wire(t),
             "scheme": pager_mod.scheme_to_dict(t.scheme)})

    def do_insert(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.insert(
            request["relation"],
            protocol.lifespan_from_wire(request["lifespan"]),
            protocol.values_from_wire(request["values"]),
        ))

    def do_update(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.update(
            request["relation"], tuple(request["key"]), request["at"],
            protocol.values_from_wire(request["changes"]),
        ))

    def do_terminate(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.terminate(
            request["relation"], tuple(request["key"]), request["at"],
        ))

    def do_reincarnate(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.reincarnate(
            request["relation"], tuple(request["key"]),
            protocol.lifespan_from_wire(request["lifespan"]),
            protocol.values_from_wire(request["values"]),
        ))

    def do_evolve(self, request: Mapping) -> dict:
        scheme = pager_mod.scheme_from_dict(request["scheme"])
        self._target.evolve_scheme(request["relation"], scheme)
        return self._with_token({"ok": True})

    def do_create(self, request: Mapping) -> dict:
        scheme = pager_mod.scheme_from_dict(request["scheme"])
        tuples = [protocol.tuple_from_wire(blob, scheme)
                  for blob in request.get("tuples", ())]
        self.db.create_relation(scheme, tuples,
                                storage=request.get("storage", "memory"),
                                **(request.get("options") or {}))
        return self._with_token({"ok": True})

    def do_drop(self, request: Mapping) -> dict:
        self.db.drop_relation(request["relation"])
        return self._with_token({"ok": True})

    # -- failover -----------------------------------------------------------

    def op_promote(self, request: Mapping) -> dict:
        """Promote this replica to primary (wire form of ``promote()``).

        Only a server wired to a promotable owner — a
        :class:`~repro.replication.replica.ReplicaServer`, which
        registers its :meth:`~repro.replication.replica.ReplicaServer.promote`
        as the *promoter* callback — accepts this frame; a primary (or
        an already-promoted replica) refuses with
        :class:`~repro.core.errors.PromotionError`.
        """
        promoter = self.server.owner.promoter
        if promoter is None:
            raise PromotionError(
                f"this {self.server.owner.role} is not a promotable "
                f"replica: PROMOTE must reach a running ReplicaServer")
        return {"ok": True, "epoch": promoter()}

    # -- durability ---------------------------------------------------------

    def op_checkpoint(self, request: Mapping) -> dict:
        return {"ok": True, "generation": self.db.checkpoint()}

    def op_flush(self, request: Mapping) -> dict:
        self.db.flush()
        return {"ok": True}


class DatabaseServer:
    """Serve one :class:`HistoricalDatabase` over TCP.

    ``port=0`` (the default) binds an ephemeral port; read the real
    one from :attr:`address` after construction. :meth:`start` runs
    the accept loop on a background thread (the embedded-plus-served
    mode used by tests and benchmarks); :meth:`serve_forever` runs it
    on the calling thread (the ``python -m repro.server`` mode).
    :meth:`stop` is graceful: the accept loop exits, every connection
    worker notices the shutdown flag at its next poll tick and closes,
    and in-flight requests finish first.

    The replication roles reuse this one server class:

    * a **primary** serves the full protocol plus SUBSCRIBE (each
      subscribed replica gets a dedicated shipper loop on its
      connection worker, see :mod:`repro.replication.primary`) and
      reports per-replica lag through STATUS;
    * a **replica** (:class:`repro.replication.replica.ReplicaServer`
      wraps one of these with ``read_only=True``) refuses every
      mutating frame with :class:`~repro.core.errors.ReadOnlyError`,
      satisfies read-your-writes tokens through *lsn_waiter*, and —
      when its owner registers a *promoter* — accepts the PROMOTE
      frame that turns it into the primary of a new epoch;
    * a **fenced ex-primary** (:meth:`fence`) refuses mutating frames
      with the *retryable* :class:`~repro.core.errors.FencedError`
      until it is torn down and rejoined as a replica.

    *status_extra* is a callable merged into every STATUS frame (the
    replica reports its applied position and primary link through it);
    *lsn_waiter* is ``callable(lsn, timeout_seconds)`` blocking until
    the local state covers *lsn* (raising
    :class:`~repro.core.errors.ReplicaLagError` on timeout).
    """

    def __init__(self, db: HistoricalDatabase,
                 host: str = "127.0.0.1", port: int = 0, *,
                 read_only: bool = False, role: Optional[str] = None,
                 status_extra: Optional[Callable[[], dict]] = None,
                 lsn_waiter: Optional[Callable[[int, float], None]] = None):
        self.db = db
        self.read_only = read_only
        self.role = role or ("replica" if read_only else "primary")
        self.status_extra = status_extra
        self.lsn_waiter = lsn_waiter
        #: Callable returning the new epoch — set by a ReplicaServer so
        #: the wire PROMOTE op reaches its ``promote()``; None elsewhere.
        self.promoter: Optional[Callable[[], int]] = None
        self.fenced = False
        self.stopping = False
        self._replicas: dict[str, dict] = {}
        self._replicas_lock = threading.Lock()
        self._server = _WireServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # -- replica registry (primary-side observability) ---------------------

    def track_replica(self, replica_id: str, **fields) -> None:
        """Create or update one subscribed replica's registry entry.

        Called by the shipper loop at handshake (address, mode),
        per-shipment (``shipped_lsn``, ``pending_bytes``) and per-ack
        (``applied_lsn``, ``applied_generation``, ``acked_at``). The
        entry survives a disconnect with ``connected=False`` so lag
        stays visible while a replica is away.
        """
        with self._replicas_lock:
            entry = self._replicas.setdefault(replica_id, {
                "id": replica_id, "address": None, "mode": None,
                "shipped_lsn": 0, "applied_lsn": 0, "applied_generation": 0,
                "pending_bytes": 0, "acked_at": None, "connected": False,
            })
            entry.update(fields)

    def replica_status(self) -> list[dict]:
        """Per-replica lag, computed against the current position."""
        durability = getattr(self.db, "_durability", None)
        lsn = durability.position[1] if durability is not None else 0
        now = time.monotonic()
        rows = []
        with self._replicas_lock:
            for entry in self._replicas.values():
                row = dict(entry)
                acked_at = row.pop("acked_at")
                row["records_behind"] = max(0, lsn - row["applied_lsn"])
                row["bytes_behind"] = row.pop("pending_bytes")
                row["seconds_since_ack"] = (
                    None if acked_at is None else round(now - acked_at, 3))
                rows.append(row)
        return sorted(rows, key=lambda row: row["id"])

    def fence(self) -> None:
        """Refuse all further writes: this primary's epoch is over.

        Called when evidence of a newer epoch reaches the server — a
        subscriber whose handshake carries a higher epoch (see
        :func:`repro.replication.primary.serve_subscription`) — or
        explicitly by a failover controller *before* promoting a
        replica. Once fenced, every mutating frame gets a *retryable*
        :class:`~repro.core.errors.FencedError`, steering routed
        clients to rediscover the real primary instead of splitting the
        brain. Reads keep working (the catalog is still a consistent,
        if frozen, cut). Fencing is one-way: a fenced ex-primary
        rejoins the cluster as a replica, never by unfencing.
        """
        self.fenced = True

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> None:
        """Run the accept loop on a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RelationError("the server is already running")
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"hrdm-server:{self.address[1]}", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (until :meth:`stop`)."""
        self._serving = True
        self._server.serve_forever()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers, close."""
        self.stopping = True
        if self._serving:
            self._server.shutdown()
        self._server.server_close()  # joins the connection workers
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._serving = False

    def __enter__(self) -> "DatabaseServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        host, port = self.address
        return f"DatabaseServer({self.db.name!r} on {host}:{port})"
