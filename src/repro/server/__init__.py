"""The database service — a threaded TCP server for one catalog.

This package turns an embedded
:class:`~repro.database.database.HistoricalDatabase` into a *service*:
a :class:`DatabaseServer` accepts TCP connections, speaks the
length-prefixed JSON wire protocol of :mod:`repro.server.protocol`,
and runs one worker thread per connection against the shared catalog.
The concurrency story is the database's own
(:mod:`repro.database.concurrency`):

* **queries** execute against a published snapshot — they never block
  on writers and never observe half a transaction, no matter how many
  connections commit concurrently;
* **transactions** are snapshot-isolated and optimistic: each
  connection's session builds its write-set against its begin-time
  snapshot with no lock held, and COMMIT validates
  first-committer-wins — a lost race returns a *retryable*
  :class:`~repro.core.errors.ConflictError` ERROR frame and the
  session rolls back cleanly (``Client.run_transaction`` retries);
* the **write-ahead-log append is the sole serialization point**;
  under ``sync="batch"`` it absorbs the concurrent commit stream into
  one fsync per batch window (group commit), which is what makes the
  write-heavy service workload scale (``benchmarks/bench_server.py``).

Connection sessions are stateful: ``BEGIN`` opens a buffered
transaction whose ``EXECUTE`` frames accumulate server-side until
``COMMIT`` / ``ROLLBACK`` (a dropped connection rolls back), and
``PREPARE`` caches parsed statements for repeated parameterized
``QUERY`` frames. Frame-by-frame documentation lives in
``docs/server.md``; the programmatic client is :mod:`repro.client`;
``python -m repro.server PATH`` serves a durable database directory
from the command line.

>>> from repro.database import HistoricalDatabase
>>> from repro.server import DatabaseServer
>>> server = DatabaseServer(HistoricalDatabase("demo"))
>>> server.start()
>>> host, port = server.address
>>> server.stop()
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, Mapping, Optional, Tuple

from repro.core.errors import HRDMError, RelationError, TransactionError
from repro.database.database import HistoricalDatabase
from repro.database.result import QueryResult
from repro.server import protocol
from repro.storage import pager as pager_mod
from repro.storage.engine import StoredRelation

__all__ = ["DatabaseServer", "protocol"]

#: How often a blocked connection checks the server's shutdown flag.
_POLL_SECONDS = 0.2


class _WireServer(socketserver.ThreadingTCPServer):
    """One listening socket, one daemon worker thread per connection."""

    allow_reuse_address = True
    daemon_threads = True
    block_on_close = True  # stop() joins the workers — graceful shutdown

    def __init__(self, address, owner: "DatabaseServer"):
        super().__init__(address, _Connection)
        self.owner = owner


class _Connection(socketserver.BaseRequestHandler):
    """One client session: socket, transaction, prepared statements."""

    def setup(self) -> None:
        self.request.settimeout(_POLL_SECONDS)
        self.buffer = bytearray()
        self.db: HistoricalDatabase = self.server.owner.db
        self.txn = None
        self.prepared: dict[int, Any] = {}
        self._next_prepared = 0

    def handle(self) -> None:
        owner: DatabaseServer = self.server.owner
        while not owner.stopping:
            try:
                request = protocol.recv_frame(
                    self.request, self.buffer,
                    keep_waiting=lambda: not owner.stopping)
            except (protocol.ProtocolError, OSError):
                break  # undecodable stream or dead socket: drop the session
            if request is None:
                break
            try:
                response = self.dispatch(request)
            except HRDMError as exc:
                response = protocol.error_to_wire(exc)
            except Exception as exc:  # never let one request kill the worker
                response = protocol.error_to_wire(exc)
            try:
                protocol.send_frame(self.request, response)
            except protocol.ProtocolError as exc:
                # The response itself was unsendable (e.g. a relation
                # larger than the frame cap): report that instead of
                # tearing the connection down with no diagnosis.
                try:
                    protocol.send_frame(self.request,
                                        protocol.error_to_wire(exc))
                except OSError:
                    break
            except OSError:
                break

    def finish(self) -> None:
        if self.txn is not None and self.txn.state == "active":
            self.txn.rollback()  # a dropped connection aborts its session

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, request: Mapping[str, Any]) -> dict:
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise protocol.ProtocolError(f"unknown op {op!r}")
        return handler(request)

    # -- session / introspection frames ------------------------------------

    def op_hello(self, request: Mapping) -> dict:
        return {
            "ok": True,
            "server": "hrdm",
            "protocol": protocol.PROTOCOL_VERSION,
            "database": self.db.name,
            "durable": self.db.durable,
            "now": self.db.now,
        }

    @staticmethod
    def _storage_kind(relation) -> str:
        # Derived from the snapshot value itself (a StoredRelation or a
        # HistoricalRelation), so introspection stays consistent with
        # the committed cut even while another connection drops or
        # recreates the catalog entry.
        return "disk" if isinstance(relation, StoredRelation) else "memory"

    def op_relations(self, request: Mapping) -> dict:
        env = self.db.relations()  # one committed cut
        return {"ok": True, "relations": [
            {
                "name": name,
                "n_tuples": len(relation),
                "lifespan": protocol.lifespan_to_wire(relation.lifespan()),
                "storage": self._storage_kind(relation),
            }
            for name, relation in env.items()
        ]}

    def op_relation(self, request: Mapping) -> dict:
        name = request.get("name")
        env = self.db.relations()
        if name not in env:
            raise RelationError(f"no relation named {name!r}")
        payload = protocol.relation_to_wire(env[name])
        payload.update(ok=True, storage=self._storage_kind(env[name]))
        return payload

    # -- querying ----------------------------------------------------------

    def op_query(self, request: Mapping) -> dict:
        params = request.get("params") or None
        if "prepared" in request:
            statement = self.prepared.get(request["prepared"])
            if statement is None:
                raise protocol.ProtocolError(
                    f"no prepared statement #{request['prepared']} "
                    f"on this connection")
            result = statement.query(params)
        else:
            result = self.db.query(request.get("q", ""), params)
        return self._result_frame(result)

    def op_prepare(self, request: Mapping) -> dict:
        statement = self.db.prepare(request.get("q", ""))
        self._next_prepared += 1
        self.prepared[self._next_prepared] = statement
        return {"ok": True, "id": self._next_prepared,
                "params": list(statement.param_names)}

    @staticmethod
    def _result_frame(result: QueryResult) -> dict:
        if result.kind == "relation":
            payload = protocol.relation_to_wire(result.relation)
            payload.update(ok=True, kind="relation")
            return payload
        if result.kind == "lifespan":
            return {"ok": True, "kind": "lifespan",
                    "lifespan": protocol.lifespan_to_wire(result.lifespan)}
        return {"ok": True, "kind": "plan",
                "text": result.explanation.text}

    # -- transactions -------------------------------------------------------

    def op_begin(self, request: Mapping) -> dict:
        if self.txn is not None and self.txn.state == "active":
            raise TransactionError(
                "a transaction is already active on this connection")
        self.txn = self.db.transaction()
        return {"ok": True}

    def op_commit(self, request: Mapping) -> dict:
        # Detach the session first: a failed commit (conflict,
        # constraint violation) has already rolled the transaction
        # back, and the connection must be free to BEGIN a retry.
        txn = self._active_txn()
        self.txn = None
        txn.commit()
        return {"ok": True}

    def op_rollback(self, request: Mapping) -> dict:
        self._active_txn().rollback()
        self.txn = None
        return {"ok": True}

    def _active_txn(self):
        if self.txn is None or self.txn.state != "active":
            raise TransactionError(
                "no transaction is active on this connection (send BEGIN)")
        return self.txn

    # -- mutations ----------------------------------------------------------

    def op_execute(self, request: Mapping) -> dict:
        action = request.get("action")
        handler = getattr(self, f"do_{action}", None)
        if handler is None:
            raise protocol.ProtocolError(f"unknown execute action {action!r}")
        return handler(request)

    @property
    def _target(self):
        """Where mutations go: the active transaction, else auto-commit."""
        if self.txn is not None and self.txn.state == "active":
            return self.txn
        return self.db

    @staticmethod
    def _tuple_frame(t) -> dict:
        return {"ok": True, "tuple": protocol.tuple_to_wire(t),
                "scheme": pager_mod.scheme_to_dict(t.scheme)}

    def do_insert(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.insert(
            request["relation"],
            protocol.lifespan_from_wire(request["lifespan"]),
            protocol.values_from_wire(request["values"]),
        ))

    def do_update(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.update(
            request["relation"], tuple(request["key"]), request["at"],
            protocol.values_from_wire(request["changes"]),
        ))

    def do_terminate(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.terminate(
            request["relation"], tuple(request["key"]), request["at"],
        ))

    def do_reincarnate(self, request: Mapping) -> dict:
        return self._tuple_frame(self._target.reincarnate(
            request["relation"], tuple(request["key"]),
            protocol.lifespan_from_wire(request["lifespan"]),
            protocol.values_from_wire(request["values"]),
        ))

    def do_evolve(self, request: Mapping) -> dict:
        scheme = pager_mod.scheme_from_dict(request["scheme"])
        self._target.evolve_scheme(request["relation"], scheme)
        return {"ok": True}

    def do_create(self, request: Mapping) -> dict:
        scheme = pager_mod.scheme_from_dict(request["scheme"])
        tuples = [protocol.tuple_from_wire(blob, scheme)
                  for blob in request.get("tuples", ())]
        self.db.create_relation(scheme, tuples,
                                storage=request.get("storage", "memory"),
                                **(request.get("options") or {}))
        return {"ok": True}

    def do_drop(self, request: Mapping) -> dict:
        self.db.drop_relation(request["relation"])
        return {"ok": True}

    # -- durability ---------------------------------------------------------

    def op_checkpoint(self, request: Mapping) -> dict:
        return {"ok": True, "generation": self.db.checkpoint()}

    def op_flush(self, request: Mapping) -> dict:
        self.db.flush()
        return {"ok": True}


class DatabaseServer:
    """Serve one :class:`HistoricalDatabase` over TCP.

    ``port=0`` (the default) binds an ephemeral port; read the real
    one from :attr:`address` after construction. :meth:`start` runs
    the accept loop on a background thread (the embedded-plus-served
    mode used by tests and benchmarks); :meth:`serve_forever` runs it
    on the calling thread (the ``python -m repro.server`` mode).
    :meth:`stop` is graceful: the accept loop exits, every connection
    worker notices the shutdown flag at its next poll tick and closes,
    and in-flight requests finish first.
    """

    def __init__(self, db: HistoricalDatabase,
                 host: str = "127.0.0.1", port: int = 0):
        self.db = db
        self.stopping = False
        self._server = _WireServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> None:
        """Run the accept loop on a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RelationError("the server is already running")
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"hrdm-server:{self.address[1]}", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (until :meth:`stop`)."""
        self._serving = True
        self._server.serve_forever()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers, close."""
        self.stopping = True
        if self._serving:
            self._server.shutdown()
        self._server.server_close()  # joins the connection workers
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._serving = False

    def __enter__(self) -> "DatabaseServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        host, port = self.address
        return f"DatabaseServer({self.db.name!r} on {host}:{port})"
