"""Serve a historical database over TCP: ``python -m repro.server``.

Usage::

    python -m repro.server PATH [--host H] [--port P]
                                [--sync always|batch|never]
                                [--wal-batch-size N]
    python -m repro.server --demo [--host H] [--port P]

``PATH`` is a durable database directory (created if missing) opened
with the given WAL sync policy; ``--demo`` serves the HRQL shell's
ephemeral demo catalog instead (relation ``EMP``). The server prints
one ``listening on HOST:PORT`` line once it accepts connections —
drivers that spawn it as a subprocess (tests, benchmarks) parse the
real port from that line when ``--port 0`` asked for an ephemeral one.
SIGINT / SIGTERM shut down gracefully: in-flight requests finish, the
database flushes and closes.

Connect with :func:`repro.client.connect`, or from the HRQL shell via
``\\connect HOST:PORT``.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.errors import HRDMError
from repro.database import HistoricalDatabase
from repro.server import DatabaseServer
from repro.storage.wal import SYNC_POLICIES


def _demo_database() -> HistoricalDatabase:
    from repro.workloads import PersonnelConfig, generate_personnel

    db = HistoricalDatabase("demo")
    emp = generate_personnel(PersonnelConfig(n_employees=20, seed=7))
    db.create_relation(emp.scheme, emp.tuples)
    return db


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a historical database over TCP.")
    parser.add_argument("path", nargs="?", default=None,
                        help="durable database directory (created if missing)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7707,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--sync", default="batch", choices=SYNC_POLICIES,
                        help="WAL fsync policy for a durable database")
    parser.add_argument("--wal-batch-size", type=int, default=64,
                        help="group-commit window under --sync batch")
    parser.add_argument("--demo", action="store_true",
                        help="serve the ephemeral demo catalog (EMP)")
    args = parser.parse_args(argv)
    if args.path is None and not args.demo:
        parser.error("give a database directory PATH, or --demo")
    try:
        if args.path is not None:
            db = HistoricalDatabase(path=args.path, sync=args.sync,
                                    wal_batch_size=args.wal_batch_size)
        else:
            db = _demo_database()
    except HRDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    server = DatabaseServer(db, args.host, args.port)

    def shut_down(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, shut_down)
    signal.signal(signal.SIGTERM, shut_down)
    host, port = server.address
    print(f"serving {db.name!r} — listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        db.close()
        print("server stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
