"""The wire protocol — length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON::

    +-------------+----------------------+
    | length  u32 | JSON payload (UTF-8) |
    +-------------+----------------------+

Requests are JSON objects with an ``op`` field; responses carry
``ok: true`` plus op-specific fields, or ``ok: false`` with the error
class name and message (the ERROR frame). The ops — HELLO, QUERY,
EXECUTE, PREPARE, BEGIN, COMMIT, ROLLBACK, CHECKPOINT, FLUSH, and the
catalog introspection pair RELATIONS / RELATION — are documented frame
by frame in ``docs/server.md`` and dispatched in
:mod:`repro.server` (server side) / :mod:`repro.client` (client side).

Values cross the wire in two representations:

* **scalars and structure** (parameters, keys, chronons, schemes,
  lifespans) as plain JSON — schemes via the pager's manifest
  serialization (:func:`repro.storage.pager.scheme_to_dict`),
  lifespans as interval lists;
* **historical tuples** as the storage engine's exact binary record
  encoding (:func:`repro.storage.engine.encode_tuple`), base64-armored
  — the client decodes them against the scheme shipped alongside and
  reconstructs a real :class:`~repro.core.relation.HistoricalRelation`,
  so a remote query answer is byte-for-byte the embedded answer.

The frame length is capped (:data:`MAX_FRAME`) so a corrupt or
malicious header cannot make either side allocate unbounded memory.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.core.errors import HRDMError, StorageError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.core.scheme import RelationScheme
from repro.core.tuples import HistoricalTuple
from repro.storage import pager as pager_mod
from repro.storage.engine import decode_tuple, encode_tuple

#: Protocol version spoken by this build (bumped on incompatible change).
PROTOCOL_VERSION = 1

_HEAD = struct.Struct(">I")

#: Largest admissible frame payload (64 MiB).
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(StorageError):
    """A malformed, oversized, or unexpected wire frame."""


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, payload: Mapping[str, Any]) -> None:
    """Serialize *payload* as one frame and send it whole."""
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(raw)} bytes exceeds {MAX_FRAME}")
    sock.sendall(_HEAD.pack(len(raw)) + raw)


def recv_frame(sock: socket.socket, buffer: bytearray,
               keep_waiting: Optional[Callable[[], bool]] = None
               ) -> Optional[dict]:
    """Receive one frame; None on clean EOF at a frame boundary.

    *buffer* is the connection's carry-over byte buffer: a receive
    timeout mid-frame keeps the partial bytes there, so timeouts are
    safe at any point (the server uses them to poll its shutdown flag
    via *keep_waiting* — return False to give up waiting and receive
    None).
    """
    while True:
        if len(buffer) >= _HEAD.size:
            (length,) = _HEAD.unpack_from(bytes(buffer[:_HEAD.size]), 0)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds {MAX_FRAME}")
            if len(buffer) >= _HEAD.size + length:
                raw = bytes(buffer[_HEAD.size:_HEAD.size + length])
                del buffer[:_HEAD.size + length]
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ProtocolError(f"undecodable frame: {exc}") from None
                if not isinstance(payload, dict):
                    raise ProtocolError("frame payload must be a JSON object")
                return payload
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            if keep_waiting is None:
                raise  # honor the socket's own timeout (client side)
            if not keep_waiting():
                return None
            continue
        if not chunk:
            if buffer:
                raise ProtocolError("connection closed mid-frame")
            return None
        buffer.extend(chunk)


# -- value (de)serialization -------------------------------------------------


def lifespan_to_wire(lifespan: Lifespan) -> list:
    """A lifespan as its maximal closed intervals, JSON-ready."""
    return [[lo, hi] for lo, hi in lifespan.intervals]


def lifespan_from_wire(raw: Iterable) -> Lifespan:
    """Rebuild a lifespan from :func:`lifespan_to_wire` output."""
    return Lifespan(*[tuple(interval) for interval in raw])


def tuple_to_wire(t: HistoricalTuple) -> str:
    """One historical tuple as its base64-armored record encoding."""
    return base64.b64encode(encode_tuple(t)).decode("ascii")


def tuple_from_wire(raw: str, scheme: RelationScheme) -> HistoricalTuple:
    """Decode a :func:`tuple_to_wire` tuple against *scheme*."""
    return decode_tuple(base64.b64decode(raw.encode("ascii")), scheme)


def relation_to_wire(relation) -> dict:
    """A relation (memory or stored) as ``{"scheme", "tuples"}``."""
    return {
        "scheme": pager_mod.scheme_to_dict(relation.scheme),
        "tuples": [tuple_to_wire(t) for t in relation],
    }


def relation_from_wire(raw: Mapping, domains=None) -> HistoricalRelation:
    """Rebuild an in-memory relation from :func:`relation_to_wire`."""
    scheme = pager_mod.scheme_from_dict(raw["scheme"], domains)
    return HistoricalRelation(
        scheme, (tuple_from_wire(blob, scheme) for blob in raw["tuples"]))


def values_from_wire(raw: Mapping[str, Any]) -> dict[str, Any]:
    """Mutation values as :meth:`HistoricalTuple.build` conventions.

    JSON scalars pass through (they become constant functions); a JSON
    object is a ``{chronon: value}`` point mapping whose keys arrive as
    strings and are restored to ints here.
    """
    values: dict[str, Any] = {}
    for attr, value in raw.items():
        if isinstance(value, dict):
            try:
                values[attr] = {int(at): v for at, v in value.items()}
            except ValueError:
                raise ProtocolError(
                    f"point mapping for {attr!r} has a non-integer chronon"
                ) from None
        else:
            values[attr] = value
    return values


def error_to_wire(exc: BaseException) -> dict:
    """The ERROR frame for an exception.

    Errors whose class marks them **retryable** additionally carry
    ``retryable: true`` — a :class:`~repro.core.errors.ConflictError`
    (an optimistic COMMIT that lost its first-committer-wins race:
    BEGIN again against a fresh snapshot, ``Client.run_transaction``
    wraps that loop) or a :class:`~repro.core.errors.ReplicaLagError`
    (a read-your-writes token timed out on a lagging replica: re-issue
    the read against the primary, the routed client's fallback).
    """
    frame = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
    if getattr(exc, "retryable", False):
        frame["retryable"] = True
    return frame


def error_from_wire(payload: Mapping) -> HRDMError:
    """Rebuild the closest matching library exception from an ERROR frame.

    The class is looked up by name in :mod:`repro.core.errors`; classes
    with richer constructors (lexer positions) fall back to the nearest
    plain-message ancestor, so the *message* — which already embeds the
    position text — survives verbatim.
    """
    from repro.core import errors as errors_mod

    name = payload.get("error", "HRDMError")
    message = payload.get("message", "remote error")
    if name == "ProtocolError":
        return ProtocolError(message)
    cls = getattr(errors_mod, name, None)
    if isinstance(cls, type) and issubclass(cls, HRDMError):
        try:
            return cls(message)
        except TypeError:
            pass
    return HRDMError(f"{name}: {message}")
