"""repro — a reproduction of the Historical Relational Data Model (HRDM).

Implements Clifford & Croker, "The Historical Relational Data Model
(HRDM) and Algebra Based on Lifespans" (ICDE 1987): lifespans, temporal
functions, historical relations, the full historical algebra, a
database layer with evolving schemas and temporal integrity
constraints, a storage substrate mirroring the paper's three-level
architecture, a classical / tuple-timestamping baseline, a small
query language (HRQL), and a concurrent service layer — a wire
protocol server (:mod:`repro.server`) with a mirroring client library
(:mod:`repro.client`) over snapshot-isolated sessions.

Quickstart
----------
>>> from repro import (Lifespan, RelationScheme, HistoricalRelation,
...                    TemporalFunction, domains, algebra)
>>> emp = RelationScheme(
...     "EMP",
...     {"NAME": domains.cd(domains.STRING),
...      "SALARY": domains.td(domains.INTEGER)},
...     key=["NAME"])
>>> r = HistoricalRelation.from_rows(emp, [
...     (Lifespan.interval(0, 9),
...      {"NAME": "John",
...       "SALARY": TemporalFunction.step({0: 25_000, 5: 30_000}, end=9)}),
... ])
>>> algebra.when(algebra.select_when(r, algebra.AttrOp("SALARY", "=", 30_000)))
Lifespan([5, 9])
"""

from repro import algebra, planner
from repro.core import (
    ALWAYS,
    EMPTY_LIFESPAN,
    Attribute,
    HistoricalDomain,
    HistoricalRelation,
    HistoricalTuple,
    HRDMError,
    Lifespan,
    Relation,
    RelationScheme,
    TemporalFunction,
    TimeDomain,
    domains,
)
from repro.database import (
    HistoricalDatabase,
    PreparedQuery,
    QueryResult,
    Transaction,
)

__version__ = "1.1.0"

__all__ = [
    "ALWAYS",
    "Attribute",
    "EMPTY_LIFESPAN",
    "HRDMError",
    "HistoricalDatabase",
    "HistoricalDomain",
    "HistoricalRelation",
    "HistoricalTuple",
    "Lifespan",
    "PreparedQuery",
    "QueryResult",
    "Relation",
    "RelationScheme",
    "TemporalFunction",
    "TimeDomain",
    "Transaction",
    "__version__",
    "algebra",
    "domains",
    "planner",
]
