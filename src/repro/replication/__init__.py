"""WAL-shipping replication — multi-process read scaling.

One process can serve only as many readers as one interpreter core
allows; the published-snapshot MVCC of :mod:`repro.database.concurrency`
already made reads lock-free, so the next ceiling is the process
itself. This package moves past it by running **read replicas**: extra
processes that mirror a primary's committed history and serve the full
read protocol on their own ports, while every write still flows through
the one primary.

The moving parts:

* **The primary ships its write-ahead log.** A replica connects to the
  ordinary :class:`~repro.server.DatabaseServer` port and sends a
  SUBSCRIBE frame carrying its current ``(generation, lsn)`` position.
  The connection's worker thread becomes a dedicated shipper
  (:func:`repro.replication.primary.serve_subscription`): it tails the
  live log with an LSN-addressable
  :class:`~repro.storage.wal.WALReader` and streams each commit record
  as a WAL frame. When the log cannot bridge the replica's position —
  first contact, a checkpoint truncated the needed records away, or
  the replica is *ahead* (the primary lost an unsynced tail in a
  crash) — the shipper sends a consistent **snapshot** of the whole
  catalog first, captured under the commit lock at an exact position,
  then streams from there.

* **The replica replays through the recovery path.** A
  :class:`~repro.replication.replica.ReplicaServer` applies each
  streamed record via the same
  :meth:`~repro.database.durability.DurabilityManager.replay` that
  crash recovery uses, appends it to its *own* log under the primary's
  exact ``(generation, lsn)`` identity, and publishes the new committed
  cut through the MVCC machinery — so replica reads are
  byte-for-byte the primary's, snapshot-isolated, and never torn. A
  primary checkpoint observed mid-stream (the generation stamp jumps)
  is mirrored as a local checkpoint under the primary's generation
  number, keeping both directories in the same coordinate system.

* **Robustness is the default.** The replica reconnects with
  exponential backoff, survives ``kill -9`` on either end (its log and
  manifest make restart a normal recovery; the subscribe handshake
  then resumes or resyncs as needed), and rejects torn frames exactly
  like recovery does. Lag — applied LSN, records/bytes behind, seconds
  since the last ack — is visible in the primary's STATUS frame and
  the shell's ``\\replicas`` command.

* **Clients route reads.** ``connect(primary, replicas=[...])``
  (:mod:`repro.client`) sends writes to the primary, round-robins
  reads across the replicas, and carries each write's commit LSN as a
  **read-your-writes token**: a replica read waits until its applier
  covers the token (or the retryable
  :class:`~repro.core.errors.ReplicaLagError` sends the read back to
  the primary).

* **Failover is fenced.** A replica can be **promoted**
  (:meth:`~repro.replication.replica.ReplicaServer.promote`, the wire
  PROMOTE op, the shell's ``\\promote``): it stops syncing, bumps the
  cluster's fencing **epoch** — persisted in the manifest and stamped
  into every subsequent WAL commit frame — and starts taking writes.
  Any surviving ex-primary that hears the higher epoch (through a
  SUBSCRIBE handshake) fences itself: mutations get the retryable
  :class:`~repro.core.errors.FencedError`, which steers
  :class:`~repro.client.RoutedClient` sessions into rediscovering the
  new primary. The demoted node rejoins as a replica; the epoch check
  forces a snapshot resync that truncates any divergent suffix it
  committed after the promotion point. See ``docs/replication.md``.

Run a replica from the command line::

    python -m repro.replication PATH --primary HOST:PORT [--port P]

``docs/replication.md`` walks through topology, bootstrap, lag
semantics, and the read-your-writes token; ``benchmarks/bench_server.py``
measures the moved read ceiling (the ``replicated_read`` section).
"""

from __future__ import annotations

from repro.replication.replica import ReplicaServer

__all__ = ["ReplicaServer"]
