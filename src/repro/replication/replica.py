"""The replica — a read-only server that mirrors a primary's history.

A :class:`ReplicaServer` owns three cooperating pieces:

* a local durable :class:`~repro.database.database.HistoricalDatabase`
  in its own directory — the replica's state survives restarts the
  same way the primary's does (manifest + snapshots + WAL), so a
  replica killed at any point reopens, recovers, and re-subscribes
  from its recovered ``(generation, lsn)`` position;
* a **sync loop** on a background thread: subscribe to the primary,
  install a shipped snapshot when the handshake says so, then apply
  streamed commit records one by one — each is appended to the local
  WAL under the primary's exact identity
  (:meth:`~repro.storage.wal.WriteAheadLog.append_record`), replayed
  through the recovery path
  (:meth:`~repro.database.durability.DurabilityManager.replay`), and
  published as a fresh committed cut through the MVCC machinery, so a
  reader mid-query keeps its snapshot and never sees half a commit.
  Disconnects trigger reconnection with exponential backoff; a
  generation jump in the stream (the primary checkpointed) is mirrored
  as a local checkpoint under the primary's generation number;
* a read-only :class:`~repro.server.DatabaseServer` on its own port:
  the full query protocol, mutations refused with
  :class:`~repro.core.errors.ReadOnlyError`, STATUS extended with the
  replica's applied position and primary link, and read-your-writes
  tokens honored via :meth:`wait_applied` (timeout → the retryable
  :class:`~repro.core.errors.ReplicaLagError`, which sends the routed
  client back to the primary).

``python -m repro.replication PATH --primary HOST:PORT`` runs one from
the command line; tests and benchmarks embed it in-process exactly
like :class:`~repro.server.DatabaseServer`.
"""

from __future__ import annotations

import base64
import os
import random
import socket
import threading
import time
from typing import Any, Mapping, Optional, Tuple, Union

from repro import faults as faults_mod
from repro.core.domains import ValueDomain
from repro.core.errors import (FencedError, PromotionError, ReplicaLagError,
                               ReplicationError, StorageError)
from repro.database.concurrency import WriteSet
from repro.database.database import HistoricalDatabase
from repro.server import DatabaseServer, protocol
from repro.storage import pager as pager_mod
from repro.storage.pager import Pager
from repro.storage.wal import CommitRecord

#: Socket timeout while waiting for stream frames (poll granularity).
_POLL_SECONDS = 0.2

#: Reconnect backoff bounds (doubled per failed attempt).
_BACKOFF_MIN = 0.05
_BACKOFF_MAX = 5.0


def jittered_backoff(base: float, cap: float,
                     rng: Optional[random.Random] = None) -> float:
    """The actual sleep for a reconnect attempt at backoff *base*.

    Exponential backoff alone synchronizes a fleet: every replica that
    lost the same primary at the same moment retries at the same
    instants, and a primary bounce turns into a thundering herd of
    simultaneous SUBSCRIBE storms. The classic fix is jitter — each
    sleep is drawn uniformly from ``[base/2, base]`` (capped at *cap*),
    so retries decorrelate while keeping at least half the intended
    spacing. Pass a seeded *rng* for deterministic tests.

    >>> rng = random.Random(7)
    >>> delays = [jittered_backoff(0.8, 5.0, rng) for _ in range(100)]
    >>> all(0.4 <= d <= 0.8 for d in delays)
    True
    >>> jittered_backoff(80.0, 5.0, rng) <= 5.0  # the cap wins
    True
    """
    bounded = min(base, cap)
    draw = (rng or random).random()
    return bounded * (0.5 + 0.5 * draw)


def _parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    host, _, port_text = str(address).rpartition(":")
    if not host:
        raise StorageError(f"need HOST:PORT, got {address!r}")
    try:
        return host, int(port_text)
    except ValueError:
        raise StorageError(
            f"need a numeric port, got {port_text!r}") from None


class ReplicaServer:
    """One read replica: local durable state + sync loop + TCP server.

    >>> # doctest-free sketch; see docs/replication.md for a live one
    >>> # replica = ReplicaServer("replica-dir", primary_server.address)
    >>> # replica.start(); ...; replica.stop()
    """

    def __init__(self, path: str,
                 primary: Union[str, Tuple[str, int]], *,
                 host: str = "127.0.0.1", port: int = 0,
                 replica_id: Optional[str] = None,
                 sync: str = "batch", wal_batch_size: int = 64,
                 domains: Optional[Mapping[str, ValueDomain]] = None,
                 connect_timeout: float = 5.0,
                 backoff_min: float = _BACKOFF_MIN,
                 backoff_cap: float = _BACKOFF_MAX,
                 backoff_seed: Optional[int] = None):
        self.path = path
        self.primary_address = _parse_address(primary)
        self.replica_id = replica_id or f"replica-{os.getpid()}"
        self._sync = sync
        self._batch_size = wal_batch_size
        self._domains = dict(domains or {})
        self._connect_timeout = connect_timeout
        self.db = self._open_db()
        self._cond = threading.Condition()
        self._applied: Tuple[int, int] = self.db._durability.position
        self._connected = False
        self._last_frame: Optional[float] = None
        self._last_error: Optional[str] = None
        self._backoff_min = backoff_min
        self._backoff_cap = backoff_cap
        self._backoff = backoff_min
        self._rng = random.Random(backoff_seed)
        self._promoted = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.server = DatabaseServer(
            self.db, host, port, read_only=True, role="replica",
            status_extra=self._status_extra, lsn_waiter=self.wait_applied)
        self.server.promoter = self.promote  # the wire PROMOTE op

    def _open_db(self) -> HistoricalDatabase:
        return HistoricalDatabase(
            path=self.path, sync=self._sync,
            wal_batch_size=self._batch_size, domains=self._domains)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The read-only server's bound ``(host, port)``."""
        return self.server.address

    def start(self) -> None:
        """Serve + sync on background threads; returns immediately."""
        self.server.start()
        self._thread = threading.Thread(
            target=self._run, name=f"hrdm-replica:{self.address[1]}",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Sync on a background thread, serve on the calling thread."""
        self._thread = threading.Thread(
            target=self._run, name=f"hrdm-replica:{self.address[1]}",
            daemon=True)
        self._thread.start()
        self.server.serve_forever()

    def stop(self) -> None:
        """Stop syncing and serving; close the local database."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10)
            self._thread = None
        self.server.stop()
        if not self.db.closed:
            self.db.close()

    def __enter__(self) -> "ReplicaServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- observability -----------------------------------------------------

    @property
    def applied(self) -> Tuple[int, int]:
        """The last applied ``(generation, lsn)``."""
        return self._applied

    def wait_applied(self, lsn: int, timeout: float) -> None:
        """Block until the applier covers *lsn*; the read-your-writes
        waiter handed to the server. Raises the retryable
        :class:`~repro.core.errors.ReplicaLagError` on timeout."""
        with self._cond:
            if self._cond.wait_for(lambda: self._applied[1] >= lsn,
                                   timeout):
                return
            applied = self._applied[1]
        raise ReplicaLagError(
            f"replica {self.replica_id} is at LSN {applied}, short of "
            f"the read's token {lsn} after {timeout:.3g}s — read from "
            f"the primary instead")

    def _status_extra(self) -> dict:
        generation, lsn = self._applied
        last = self._last_frame
        return {"replica": {
            "id": self.replica_id,
            "primary": "%s:%d" % self.primary_address,
            "applied_generation": generation,
            "applied_lsn": lsn,
            "connected": self._connected,
            "promoted": self._promoted,
            "seconds_since_frame": (
                None if last is None else round(time.monotonic() - last, 3)),
            "last_error": self._last_error,
        }}

    # -- failover ----------------------------------------------------------

    def promote(self) -> int:
        """Promote this replica to primary; returns the new epoch.

        The fenced-failover sequence:

        1. stop the sync loop (no more frames from the old primary can
           land once the thread has joined);
        2. bump the fencing **epoch** past everything this replica ever
           followed and persist it in the manifest — from here, every
           local commit is stamped with the new epoch, a SUBSCRIBE from
           the ex-primary's surviving peers resyncs them onto this
           timeline, and this node's own SUBSCRIBE handshakes would
           fence any stale primary they reach;
        3. flip the embedded server writable (``role="primary"``) and
           drop the read-your-writes waiter — this node's commits are
           trivially its own.

        The replica starts accepting writes (and subscriptions) at its
        last **applied** position: commits the old primary acknowledged
        but never shipped are not on this timeline — that is the
        asynchronous-replication loss window, measured by
        ``benchmarks/bench_failover.py``. Raises
        :class:`~repro.core.errors.PromotionError` if already promoted
        or the local database cannot take writes.
        """
        if self._promoted:
            raise PromotionError(
                f"{self.replica_id} has already been promoted")
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(10)
            if thread.is_alive():
                raise PromotionError(
                    f"{self.replica_id}'s sync loop did not stop; refusing "
                    f"to promote over a live apply")
        self._thread = None
        db = self.db
        if db.closed or db._durability is None:
            raise PromotionError(
                f"{self.replica_id}'s local database is closed; cannot "
                f"promote")
        with db._concurrency.write():
            epoch = db._durability.bump_epoch(db)
        self._promoted = True
        self._connected = False
        self.server.lsn_waiter = None
        self.server.read_only = False
        self.server.role = "primary"
        return epoch

    # -- the sync loop -----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._sync_once()
            except Exception as exc:
                # Catch *everything*, not just OSError/HRDMError: a
                # malformed stream frame surfaces as KeyError,
                # ValueError, or binascii.Error, and any escape would
                # permanently kill the sync thread — the replica would
                # silently stop replicating while serving ever-staler
                # reads. Record it and let the backoff loop reconnect.
                self._last_error = f"{type(exc).__name__}: {exc}"
            finally:
                self._connected = False
            if self._stop.is_set():
                break
            self._stop.wait(jittered_backoff(self._backoff,
                                             self._backoff_cap, self._rng))
            self._backoff = min(self._backoff * 2, self._backoff_cap)

    def _sync_once(self) -> None:
        """One subscription: connect, handshake, apply until it drops."""
        faults_mod.fault_connect("replica")
        sock = faults_mod.wrap_socket(socket.create_connection(
            self.primary_address, timeout=self._connect_timeout), "replica")
        try:
            sock.settimeout(_POLL_SECONDS)
            buffer = bytearray()
            generation, lsn = self.db._durability.position
            protocol.send_frame(sock, {
                "op": "subscribe", "replica": self.replica_id,
                "generation": generation, "lsn": lsn,
                "epoch": self.db._durability.epoch,
                "protocol": protocol.PROTOCOL_VERSION,
            })
            response = self._recv(sock, buffer)
            if response is None:
                if self._stop.is_set():
                    return
                raise ReplicationError("primary closed during the handshake")
            if not response.get("ok"):
                raise protocol.error_from_wire(response)
            self._connected = True
            self._backoff = self._backoff_min  # a healthy link resets it
            self._note_frame()
            self._adopt_epoch(int(response.get("epoch", 0)))
            if response.get("mode") == "snapshot":
                self._install_snapshot(sock, buffer, response)
                self._ack(sock)
            self._stream(sock, buffer)
        finally:
            self._connected = False
            sock.close()

    def _stream(self, sock, buffer: bytearray) -> None:
        while not self._stop.is_set():
            frame = self._recv(sock, buffer)
            if frame is None:
                if self._stop.is_set():
                    return
                raise ReplicationError("primary closed the stream")
            self._note_frame()
            op = frame.get("op")
            if op == "wal":
                self._apply_frame(frame)
                self._ack(sock)
            elif op == "ping":
                self._ack(sock)
            elif op == "resync":
                header = self._recv(sock, buffer)
                if header is None or header.get("op") != "snapshot":
                    raise ReplicationError(
                        "primary announced a resync without a snapshot")
                self._install_snapshot(sock, buffer, header)
                self._ack(sock)
            elif not frame.get("ok", True):
                raise protocol.error_from_wire(frame)
            # unknown ops are skipped: forward compatibility

    def _recv(self, sock, buffer: bytearray) -> Optional[dict]:
        return protocol.recv_frame(
            sock, buffer, keep_waiting=lambda: not self._stop.is_set())

    def _ack(self, sock) -> None:
        generation, lsn = self._applied
        protocol.send_frame(
            sock, {"op": "ack", "generation": generation, "lsn": lsn})

    def _note_frame(self) -> None:
        self._last_frame = time.monotonic()

    def _adopt_epoch(self, epoch: int) -> None:
        """Track the primary's fencing epoch on the local timeline.

        The local WAL stamps (and the manifest persists, at the next
        write) the highest epoch seen, so a later :meth:`promote` bumps
        *past* the primacy this replica actually followed, and a
        subscription from a stale ex-primary is recognizably behind."""
        manager = self.db._durability
        if epoch > manager.epoch:
            manager.wal.epoch = epoch

    def _set_applied(self, generation: int, lsn: int) -> None:
        with self._cond:
            self._applied = (generation, lsn)
            self._cond.notify_all()

    # -- applying ----------------------------------------------------------

    def _apply_frame(self, frame: Mapping[str, Any]) -> None:
        """Apply one streamed commit record — WAL first, then state.

        The local append under the primary's exact identity happens
        *before* the in-memory replay (log-before-apply): a crash
        between the two replays the record at reopen, and a failed
        append leaves the position unchanged so the record is simply
        re-shipped on reconnect.
        """
        record = CommitRecord(
            int(frame["generation"]), int(frame["lsn"]),
            tuple(base64.b64decode(op) for op in frame["ops"]),
            int(frame.get("epoch", 0)),
            str(frame.get("kind", "commit")), str(frame.get("txn_id", "")))
        db = self.db
        manager = db._durability
        generation, lsn = manager.position
        if record.epoch < manager.epoch:
            # A fenced ex-primary is still shipping its old timeline
            # (or this replica was itself promoted mid-stream): refuse
            # the frame and drop the link rather than time-travel.
            raise FencedError(
                f"stream carries fenced epoch {record.epoch} "
                f"(local epoch is {manager.epoch}); dropping the link")
        if record.lsn <= lsn:
            return  # overlap after a reconnect: already applied
        if record.lsn != lsn + 1:
            raise ReplicationError(
                f"stream gap: expected LSN {lsn + 1}, got {record.lsn}")
        if record.generation < manager.generation:
            raise ReplicationError(
                f"stream went back a generation ({record.generation} < "
                f"{manager.generation})")
        if record.generation > manager.generation:
            # The primary checkpointed mid-stream: mirror it locally
            # under the primary's generation number, so both
            # directories keep identical (generation, lsn) coordinates.
            with db._concurrency.write():
                manager.checkpoint(db, generation=record.generation)
        write_set = WriteSet()
        for op in record.decoded():
            write_set.record_relation(op[1])
        with db._concurrency.write():
            manager.wal.append_record(record.generation, record.lsn,
                                      record.ops, epoch=record.epoch,
                                      kind=record.kind, txn_id=record.txn_id)
            if record.kind == "prepare":
                # Mirror the primary's in-doubt window: stash the ops,
                # apply them only when the decision record arrives (or
                # at reopen, where recovery replays the same dance).
                db._stash_prepare_record(record)
            elif record.kind in ("decide-commit", "decide-abort"):
                state = db._take_prepared(record.txn_id)
                if state is not None and record.kind == "decide-commit":
                    manager.replay(db, state.record)
                    db._version += 1
                    db._concurrency.committed(db._backends, state.write_set)
            else:
                manager.replay(db, record)
                db._version += 1
                db._concurrency.committed(db._backends, write_set)
        self._adopt_epoch(record.epoch)
        self._set_applied(record.generation, record.lsn)

    # -- snapshot install --------------------------------------------------

    def _install_snapshot(self, sock, buffer: bytearray,
                          header: Mapping[str, Any]) -> None:
        """Replace the local directory with a shipped consistent cut.

        Write order is crash-safe: (1) truncate the local WAL — its
        records belong to the history being replaced, and must not
        replay on top of either the old or the new snapshot; (2) write
        the shipped snapshot files at the shipped generation; (3)
        atomically flip the manifest (which also carries the shipped
        LSN as the restored counter floor); (4) clean old snapshots. A
        crash before (3) reopens to the old checkpoint state and
        re-subscribes from there; after (3), to the shipped cut.
        """
        relations = []
        for _ in range(int(header.get("relations", 0))):
            frame = self._recv(sock, buffer)
            if frame is None or frame.get("op") != "snap_relation":
                raise ReplicationError("snapshot stream truncated")
            relations.append(frame)
        done = self._recv(sock, buffer)
        if done is None or done.get("op") != "snap_done":
            raise ReplicationError("snapshot stream ended without snap_done")
        generation = int(header["generation"])
        lsn = int(header["lsn"])

        self.db.close()  # releases the directory lock for the rewrite
        pager = Pager(self.path)
        open(pager.wal_path, "wb").close()  # (1) drop the replaced history
        for frame in relations:  # (2)
            pager.write_snapshot(frame["name"], generation,
                                 base64.b64decode(frame["data"]))
        pager.write_manifest({  # (3)
            "format": pager_mod.FORMAT_VERSION,
            "name": header["name"],
            "generation": generation,
            "wal_lsn": lsn,
            "epoch": int(header.get("epoch", 0)),
            "time_domain": header["time_domain"],
            "relations": {
                frame["name"]: {
                    "storage": frame["storage"],
                    "options": frame["options"],
                    "scheme": frame["scheme"],
                }
                for frame in relations
            },
        })
        pager.clean_snapshots(generation)  # (4)

        # Swap the served database. Connections opened from here serve
        # the shipped cut; sessions already mid-query keep the old
        # published snapshot (immutable in memory) and finish cleanly.
        self.db = self._open_db()
        self.server.db = self.db
        self._set_applied(generation, lsn)

    def __repr__(self) -> str:
        generation, lsn = self._applied
        state = "connected" if self._connected else "disconnected"
        return (f"ReplicaServer({self.path!r} <- "
                f"{self.primary_address[0]}:{self.primary_address[1]}, "
                f"{state}, applied {generation}/{lsn})")
