"""The primary-side log shipper — one loop per subscribed replica.

A SUBSCRIBE frame turns an ordinary server connection into a
subscription: the connection's worker thread stops dispatching
request/response pairs and becomes a shipper that pushes frames until
the replica disconnects or the server stops. The wire choreography::

    replica                              primary
    -------                              -------
    {op: subscribe, replica, generation, lsn, epoch}
                          ->
                                  {ok, mode: "stream", generation, lsn, epoch}
                          <-      {op: wal, generation, lsn, epoch,
                                   ops: [b64...]}
                          <-      {op: wal, ...}
    {op: ack, generation, lsn}
                          ->
                          <-      {op: ping, lsn}          (idle heartbeat)

or, when the log cannot bridge the replica's position::

                                  {ok, mode: "snapshot", name, generation,
                                   lsn, time_domain, relations: N}
                          <-      {op: snap_relation, name, storage,
                                   options, scheme, data: b64} x N
                          <-      {op: snap_done}
                          <-      {op: wal, ...}                 (stream)

The **snapshot decision** at handshake: stream when the replica's LSN
equals the primary's, or when the log's first record reaches back to
``replica_lsn + 1``; ship a snapshot when the needed records were
checkpointed away, or when the replica is *ahead* (``replica_lsn >
primary_lsn`` or a newer generation) — that means the primary lost an
unsynced WAL tail in a crash and the replica's divergent suffix must
be discarded wholesale. A checkpoint that races the stream *after* the
handshake surfaces as a :class:`~repro.storage.wal.WALGapError` from
the reader, answered inline with ``{op: resync}`` followed by the same
snapshot choreography.

Snapshots are **consistent cuts**: captured under the database's
commit lock at an exact ``(generation, lsn)``, so streaming from that
LSN afterwards replays precisely the commits the snapshot does not
contain. ACK frames only feed the lag registry
(:meth:`~repro.server.DatabaseServer.track_replica`) — shipping never
waits for them; replication is asynchronous by design. The shipper
tails the *flushed* log, not the fsynced prefix, so a replica can
briefly hold commits the primary loses in a crash — the next handshake
detects exactly that divergence and resyncs from a snapshot.
"""

from __future__ import annotations

import base64
import os
import time
from typing import TYPE_CHECKING, Tuple

from repro.core.errors import FencedError, ReplicationError, WALError
from repro.server import protocol
from repro.storage import pager as pager_mod
from repro.storage.wal import WALGapError, WALReader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database.database import HistoricalDatabase
    from repro.database.durability import DurabilityManager

#: Heartbeat period on an idle stream — the replica's staleness clock.
PING_SECONDS = 1.0

#: Idle sleep between polls of a quiet log.
_IDLE_SLEEP = 0.05

#: Receive window per ack-drain pass (also paces a busy ship loop).
_ACK_TIMEOUT = 0.05

#: Send timeout for handshake, snapshot, and WAL frames. Generous on
#: purpose: a large snapshot or burst to a slow / backpressured replica
#: must not be mistaken for a dead peer (a snapshot bootstrap is
#: all-or-nothing, so aborting one mid-send livelocks a resync loop).
#: Only a peer that moves no bytes at all for this long is dropped.
_SEND_TIMEOUT = 60.0


def serve_subscription(connection, request) -> None:
    """Run one replica's subscription on its connection worker.

    *connection* is the server's ``_Connection`` handler; *request* the
    SUBSCRIBE frame. Raises (into the normal ERROR-frame path) only
    before the handshake response; once frames have started flowing,
    every failure just ends the subscription — the replica's reconnect
    loop owns retries.
    """
    owner = connection.server.owner
    db: "HistoricalDatabase" = connection.db
    if not getattr(db, "durable", False):
        raise ReplicationError(
            "replication needs a durable primary — serve a database "
            "directory (path=...), not an ephemeral catalog")
    if owner.read_only:
        raise ReplicationError(
            "cannot subscribe to a read-only replica; subscribe to "
            "the primary")
    manager: "DurabilityManager" = db._durability
    peer = "%s:%s" % connection.client_address[:2]
    replica_id = str(request.get("replica") or peer)
    replica_gen = int(request.get("generation", 0))
    replica_lsn = int(request.get("lsn", 0))
    replica_epoch = int(request.get("epoch", 0))
    if replica_epoch > manager.epoch:
        # The subscriber has seen a newer primacy than ours: somewhere a
        # replica was promoted past us. Fence this server — refusing
        # further writes is what keeps a partitioned ex-primary from
        # splitting the brain — and refuse the subscription.
        owner.fence()
        raise FencedError(
            f"this primary's epoch {manager.epoch} has been superseded "
            f"(subscriber speaks epoch {replica_epoch}); the server is "
            f"now fenced — rejoin it as a replica of the new primary")
    owner.track_replica(replica_id, address=peer, connected=True,
                        applied_lsn=replica_lsn,
                        applied_generation=replica_gen,
                        acked_at=time.monotonic())
    try:
        _ship(owner, db, manager, connection, replica_id,
              replica_gen, replica_lsn, replica_epoch)
    except (OSError, protocol.ProtocolError):
        pass  # the replica went away mid-stream; it will re-subscribe
    except WALError:
        pass  # unreadable log: drop the link, the next handshake decides
    finally:
        owner.track_replica(replica_id, connected=False)


def _capture_snapshot(db: "HistoricalDatabase",
                      manager: "DurabilityManager") -> Tuple[dict, list]:
    """A consistent catalog cut at an exact ``(generation, lsn)``.

    Captured under the commit lock: no commit can land between reading
    the position and serializing the backends, so streaming from the
    returned LSN afterwards is gapless and overlap-free.
    """
    with db._concurrency.write():
        generation, lsn = manager.position
        relations = [
            {
                "op": "snap_relation",
                "name": name,
                "storage": backend.kind,
                "options": backend.options(),
                "scheme": pager_mod.scheme_to_dict(backend.scheme),
                "data": base64.b64encode(backend.to_snapshot()).decode("ascii"),
            }
            for name, backend in db._backends.items()
        ]
    header = {
        "name": db.name,
        "generation": generation,
        "lsn": lsn,
        "epoch": manager.epoch,
        "time_domain": pager_mod.time_domain_to_dict(db.time_domain),
        "relations": len(relations),
    }
    return header, relations


def _send_snapshot(sock, header: dict, relations: list) -> None:
    for frame in relations:
        protocol.send_frame(sock, frame)
    protocol.send_frame(sock, {"op": "snap_done"})


def _wal_frame(record) -> dict:
    frame = {
        "op": "wal",
        "generation": record.generation,
        "lsn": record.lsn,
        "epoch": record.epoch,
        "ops": [base64.b64encode(op).decode("ascii") for op in record.ops],
    }
    if record.kind != "commit":
        # 2PC records (see repro.sharding): the replica must stash a
        # prepare and only apply it on its decision, like recovery does.
        frame["kind"] = record.kind
        frame["txn_id"] = record.txn_id
    return frame


def _ship(owner, db, manager, connection, replica_id,
          replica_gen, replica_lsn, replica_epoch=0) -> None:
    sock = connection.request
    buffer = connection.buffer
    # The connection arrives on the request/response poll timeout
    # (200ms) — far too tight for shipping a snapshot. Sends run under
    # the generous _SEND_TIMEOUT; only the ack drain narrows the window.
    sock.settimeout(_SEND_TIMEOUT)
    generation, lsn = manager.position
    wal_path = manager.wal.path

    # -- handshake: stream when the log bridges the replica's position --
    # A replica on an older *epoch* never streams: its history may end
    # in a divergent suffix committed by the fenced ex-primary (this is
    # the rejoin path of a demoted primary), and only a snapshot
    # truncates that suffix onto the new timeline wholesale.
    diverged = (replica_lsn > lsn or replica_gen > generation
                or replica_epoch < manager.epoch)
    if not diverged and replica_lsn == lsn:
        stream = True
    elif diverged:
        stream = False
    else:
        first = WALReader(wal_path).first_lsn()
        stream = first is not None and first <= replica_lsn + 1
    if stream:
        start_lsn = replica_lsn
        protocol.send_frame(sock, {"ok": True, "mode": "stream",
                                   "generation": generation, "lsn": lsn,
                                   "epoch": manager.epoch})
        owner.track_replica(replica_id, mode="stream")
    else:
        header, relations = _capture_snapshot(db, manager)
        start_lsn = header["lsn"]
        protocol.send_frame(sock, dict(header, ok=True, mode="snapshot"))
        _send_snapshot(sock, header, relations)
        owner.track_replica(replica_id, mode="snapshot",
                            shipped_lsn=start_lsn)

    # -- the ship loop ---------------------------------------------------
    reader = WALReader(wal_path, after_lsn=start_lsn)
    last_send = time.monotonic()
    while not owner.stopping:
        try:
            records = reader.poll()
        except WALGapError:
            # A checkpoint truncated records the replica still needs.
            protocol.send_frame(sock, {"op": "resync"})
            header, relations = _capture_snapshot(db, manager)
            protocol.send_frame(sock, dict(header, op="snapshot"))
            _send_snapshot(sock, header, relations)
            reader = WALReader(wal_path, after_lsn=header["lsn"])
            owner.track_replica(replica_id, mode="snapshot",
                                shipped_lsn=header["lsn"])
            last_send = time.monotonic()
            continue
        for record in records:
            protocol.send_frame(sock, _wal_frame(record))
        now = time.monotonic()
        if records:
            last_send = now
        try:
            pending = max(0, os.path.getsize(wal_path) - reader.offset)
        except OSError:
            pending = 0
        if records:
            owner.track_replica(replica_id, shipped_lsn=records[-1].lsn,
                                pending_bytes=pending)
        else:
            owner.track_replica(replica_id, pending_bytes=pending)
        # Drain acks under a short receive window (which also paces a
        # busy ship loop); the send timeout is restored before the next
        # frame goes out. A closed peer surfaces as a send failure on
        # the next frame or ping.
        sock.settimeout(_ACK_TIMEOUT)
        try:
            while True:
                ack = protocol.recv_frame(sock, buffer,
                                          keep_waiting=lambda: False)
                if ack is None:
                    break
                if ack.get("op") == "ack":
                    owner.track_replica(
                        replica_id,
                        applied_lsn=int(ack.get("lsn", 0)),
                        applied_generation=int(ack.get("generation", 0)),
                        acked_at=time.monotonic())
        finally:
            sock.settimeout(_SEND_TIMEOUT)
        if not records:
            if now - last_send >= PING_SECONDS:
                protocol.send_frame(
                    sock, {"op": "ping", "lsn": manager.position[1]})
                last_send = now
            time.sleep(_IDLE_SLEEP)
