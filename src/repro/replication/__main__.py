"""Run a read replica: ``python -m repro.replication``.

Usage::

    python -m repro.replication PATH --primary HOST:PORT
                                [--host H] [--port P]
                                [--replica-id ID]
                                [--sync always|batch|never]
                                [--wal-batch-size N]

``PATH`` is the replica's own durable directory (created if missing) —
its local mirror of the primary's history, recovered on restart like
any database directory. ``--primary`` names the primary server to
subscribe to. The process prints one ``listening on HOST:PORT`` line
once its read-only query port is bound (drivers spawning it as a
subprocess parse the real port from that line under ``--port 0``), then
syncs forever: snapshot bootstrap when needed, streamed WAL apply,
reconnect with exponential backoff when the primary goes away.
SIGINT / SIGTERM shut down gracefully.

Read from it with :func:`repro.client.connect` (directly, or as a
``replicas=[...]`` entry of a routed client), or from the HRQL shell
via ``\\connect PRIMARY,REPLICA``.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.errors import HRDMError
from repro.replication.replica import ReplicaServer
from repro.storage.wal import SYNC_POLICIES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="Run a read replica of a served historical database.")
    parser.add_argument("path",
                        help="replica database directory (created if missing)")
    parser.add_argument("--primary", required=True,
                        help="the primary server, HOST:PORT")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="read-only query port (0 binds an ephemeral one)")
    parser.add_argument("--replica-id", default=None,
                        help="stable identity in the primary's lag registry")
    parser.add_argument("--sync", default="batch", choices=SYNC_POLICIES,
                        help="local WAL fsync policy")
    parser.add_argument("--wal-batch-size", type=int, default=64,
                        help="local group-commit window under --sync batch")
    args = parser.parse_args(argv)
    try:
        replica = ReplicaServer(
            args.path, args.primary, host=args.host, port=args.port,
            replica_id=args.replica_id, sync=args.sync,
            wal_batch_size=args.wal_batch_size)
    except HRDMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def shut_down(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, shut_down)
    signal.signal(signal.SIGTERM, shut_down)
    host, port = replica.address
    print(f"replica of {args.primary} — listening on {host}:{port}",
          flush=True)
    try:
        replica.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        replica.stop()
        print("replica stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
