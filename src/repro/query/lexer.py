"""The HRQL lexer — a single-pass, position-tracking tokenizer."""

from __future__ import annotations

from repro.core.errors import LexError
from repro.query.tokens import KEYWORDS, THETA_LEXEMES, Token, TokenType

_PUNCT = {
    ",": TokenType.COMMA,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize *source* into a list ending with an EOF token.

    >>> [t.type.name for t in tokenize("SELECT WHEN A = 1 IN r")]
    ['KEYWORD', 'KEYWORD', 'IDENT', 'THETA', 'INT', 'KEYWORD', 'IDENT', 'EOF']
    >>> [t.type.name for t in tokenize("SALARY >= :min")]
    ['IDENT', 'THETA', 'PARAM', 'EOF']
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < n and source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < n:
        ch = source[pos]

        if ch in " \t\r\n":
            advance(1)
            continue

        if ch == "-" and source.startswith("--", pos):
            while pos < n and source[pos] != "\n":
                advance(1)
            continue

        start_line, start_col = line, col

        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, start_line, start_col))
            advance(1)
            continue

        matched_theta = next(
            (lex for lex in THETA_LEXEMES if source.startswith(lex, pos)), None
        )
        if matched_theta is not None:
            canonical = "!=" if matched_theta == "<>" else matched_theta
            tokens.append(Token(TokenType.THETA, canonical, start_line, start_col))
            advance(len(matched_theta))
            continue

        if ch == ":":
            end = pos + 1
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            name = source[pos + 1:end]
            if not name or not (name[0].isalpha() or name[0] == "_"):
                raise LexError(
                    "':' must introduce a named parameter like :min",
                    pos, start_line, start_col,
                )
            tokens.append(Token(TokenType.PARAM, name, start_line, start_col))
            advance(end - pos)
            continue

        if ch == "'":
            end = source.find("'", pos + 1)
            if end < 0:
                raise LexError("unterminated string literal", pos, start_line, start_col)
            value = source[pos + 1:end]
            tokens.append(Token(TokenType.STRING, value, start_line, start_col))
            advance(end + 1 - pos)
            continue

        if ch.isdigit() or (ch == "-" and pos + 1 < n and source[pos + 1].isdigit()):
            end = pos + 1
            seen_dot = False
            while end < n and (source[end].isdigit() or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            text = source[pos:end]
            if seen_dot:
                tokens.append(Token(TokenType.FLOAT, float(text), start_line, start_col))
            else:
                tokens.append(Token(TokenType.INT, int(text), start_line, start_col))
            advance(end - pos)
            continue

        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < n and (source[end].isalnum() or source[end] in "_#"):
                end += 1
            word = source[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_col))
            else:
                tokens.append(Token(TokenType.IDENT, word, start_line, start_col))
            advance(end - pos)
            continue

        raise LexError(f"unexpected character {ch!r}", pos, start_line, start_col)

    tokens.append(Token(TokenType.EOF, None, line, col))
    return tokens
