"""Recursive-descent parser for HRQL.

Grammar (EBNF; keywords case-insensitive)::

    statement    := "EXPLAIN" ["ANALYZE"] query  |  query
    query        := "WHEN" "(" setexpr ")"  |  setexpr
    setexpr      := joinexpr { SETOP ["MERGED"] joinexpr }
    SETOP        := "UNION" | "INTERSECT" | "MINUS" | "TIMES"
    joinexpr     := unary { jointail }
    jointail     := "JOIN" unary "ON" IDENT THETA IDENT
                  | "NATURAL" "JOIN" unary
                  | "TIMEJOIN" unary "VIA" IDENT
    unary        := "SELECT" "IF" predicate [QUANT] ["DURING" lifespan] "IN" unary
                  | "SELECT" "WHEN" predicate ["DURING" lifespan] "IN" unary
                  | "PROJECT" identlist "FROM" unary
                  | "TIMESLICE" unary ("TO" lifespan | "VIA" IDENT)
                  | "RENAME" IDENT "TO" IDENT {"," IDENT "TO" IDENT} "IN" unary
                  | primary
    QUANT        := "EXISTS" | "FORALL"
    primary      := IDENT | "(" setexpr ")"
    predicate    := orpred
    orpred       := andpred { "OR" andpred }
    andpred      := notpred { "AND" notpred }
    notpred      := "NOT" notpred | "(" predicate ")" | comparison
    comparison   := IDENT THETA (INT | FLOAT | STRING | PARAM | IDENT)
    lifespan     := "ALWAYS" | interval { "," interval }
    interval     := "[" endpoint "," endpoint "]"
    endpoint     := INT | PARAM

An identifier on the right-hand side of a comparison denotes *another
attribute* (the paper's attribute-vs-attribute θ criteria); literals
denote constants. ``PARAM`` is a named bind parameter (``:min``),
resolved when the statement is compiled with a ``params`` mapping.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.query import ast_nodes as ast
from repro.query.lexer import tokenize
from repro.query.tokens import Token, TokenType

_SETOPS = {"UNION": "union", "INTERSECT": "intersect", "MINUS": "minus", "TIMES": "times"}


class Parser:
    """One-shot recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> ast.Statement:
        """Parse a complete statement; trailing tokens are an error."""
        node = self._statement()
        trailer = self._peek()
        if trailer.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected input after query: {trailer.value!r}",
                trailer.line, trailer.column,
            )
        return node

    def _statement(self) -> ast.Statement:
        if self._accept_keyword("EXPLAIN"):
            analyze = self._accept_keyword("ANALYZE")
            return ast.ExplainNode(self._query(), analyze)
        return self._query()

    def _query(self) -> ast.QueryNode:
        if self._check_keyword("WHEN"):
            # Only a *top-level* WHEN is the Ω operator; inside SELECT
            # the keyword introduces the select flavor.
            self._advance()
            self._expect(TokenType.LPAREN, "'('")
            child = self._setexpr()
            self._expect(TokenType.RPAREN, "')'")
            return ast.WhenNode(child)
        return self._setexpr()

    def _setexpr(self) -> ast.QueryNode:
        node = self._joinexpr()
        while True:
            token = self._peek()
            if token.type is TokenType.KEYWORD and token.value in _SETOPS:
                self._advance()
                op = _SETOPS[token.value]
                if self._accept_keyword("MERGED"):
                    op += "_merged"
                right = self._joinexpr()
                node = ast.SetOpNode(op, node, right)
            else:
                return node

    def _joinexpr(self) -> ast.QueryNode:
        node = self._unary()
        while True:
            if self._accept_keyword("JOIN"):
                right = self._unary()
                self._expect_keyword("ON")
                left_attr = self._expect(TokenType.IDENT, "attribute").value
                theta = self._expect(TokenType.THETA, "comparison operator").value
                right_attr = self._expect(TokenType.IDENT, "attribute").value
                node = ast.JoinNode(
                    "theta", node, right,
                    left_attr=str(left_attr), theta=str(theta),
                    right_attr=str(right_attr),
                )
            elif self._check_keyword("NATURAL"):
                self._advance()
                self._expect_keyword("JOIN")
                right = self._unary()
                node = ast.JoinNode("natural", node, right)
            elif self._accept_keyword("TIMEJOIN"):
                right = self._unary()
                self._expect_keyword("VIA")
                via = self._expect(TokenType.IDENT, "attribute").value
                node = ast.JoinNode("time", node, right, via=str(via))
            else:
                return node

    def _unary(self) -> ast.QueryNode:
        if self._accept_keyword("SELECT"):
            return self._select_tail()
        if self._accept_keyword("PROJECT"):
            attributes = [str(self._expect(TokenType.IDENT, "attribute").value)]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                attributes.append(str(self._expect(TokenType.IDENT, "attribute").value))
            self._expect_keyword("FROM")
            child = self._unary()
            return ast.ProjectNode(tuple(attributes), child)
        if self._accept_keyword("TIMESLICE"):
            child = self._unary()
            if self._accept_keyword("TO"):
                return ast.TimeSliceNode(child, self._lifespan())
            self._expect_keyword("VIA")
            attribute = self._expect(TokenType.IDENT, "attribute").value
            return ast.DynamicTimeSliceNode(child, str(attribute))
        if self._accept_keyword("RENAME"):
            pairs = [self._rename_pair()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                pairs.append(self._rename_pair())
            self._expect_keyword("IN")
            child = self._unary()
            return ast.RenameNode(tuple(pairs), child)
        return self._primary()

    def _rename_pair(self) -> tuple[str, str]:
        old = self._expect(TokenType.IDENT, "attribute").value
        self._expect_keyword("TO")
        new = self._expect(TokenType.IDENT, "attribute").value
        return (str(old), str(new))

    def _select_tail(self) -> ast.QueryNode:
        if self._accept_keyword("IF"):
            predicate = self._predicate()
            quantifier = None
            if self._accept_keyword("EXISTS"):
                quantifier = "exists"
            elif self._accept_keyword("FORALL"):
                quantifier = "forall"
            during = self._lifespan() if self._accept_keyword("DURING") else None
            self._expect_keyword("IN")
            child = self._unary()
            return ast.SelectNode("if", predicate, child, quantifier, during)
        self._expect_keyword("WHEN")
        predicate = self._predicate()
        during = self._lifespan() if self._accept_keyword("DURING") else None
        self._expect_keyword("IN")
        child = self._unary()
        return ast.SelectNode("when", predicate, child, None, during)

    def _primary(self) -> ast.QueryNode:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return ast.RelationRef(str(token.value))
        if token.type is TokenType.LPAREN:
            self._advance()
            node = self._setexpr()
            self._expect(TokenType.RPAREN, "')'")
            return node
        raise ParseError(
            f"expected a relation name or '(', found {token.value!r}",
            token.line, token.column,
        )

    # -- predicates ------------------------------------------------------------------

    def _predicate(self) -> ast.PredicateNode:
        return self._orpred()

    def _orpred(self) -> ast.PredicateNode:
        parts = [self._andpred()]
        while self._accept_keyword("OR"):
            parts.append(self._andpred())
        if len(parts) == 1:
            return parts[0]
        return ast.BoolOp("or", tuple(parts))

    def _andpred(self) -> ast.PredicateNode:
        parts = [self._notpred()]
        while self._accept_keyword("AND"):
            parts.append(self._notpred())
        if len(parts) == 1:
            return parts[0]
        return ast.BoolOp("and", tuple(parts))

    def _notpred(self) -> ast.PredicateNode:
        if self._accept_keyword("NOT"):
            return ast.Negation(self._notpred())
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            inner = self._predicate()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        return self._comparison()

    def _comparison(self) -> ast.PredicateNode:
        attribute = self._expect(TokenType.IDENT, "attribute").value
        theta = self._expect(TokenType.THETA, "comparison operator").value
        rhs_token = self._peek()
        if rhs_token.type in (TokenType.INT, TokenType.FLOAT, TokenType.STRING):
            self._advance()
            return ast.Comparison(str(attribute), str(theta), rhs_token.value)
        if rhs_token.type is TokenType.PARAM:
            self._advance()
            return ast.Comparison(
                str(attribute), str(theta), ast.Parameter(str(rhs_token.value))
            )
        if rhs_token.type is TokenType.IDENT:
            self._advance()
            return ast.Comparison(
                str(attribute), str(theta), str(rhs_token.value), rhs_is_attribute=True
            )
        raise ParseError(
            f"expected a literal or attribute, found {rhs_token.value!r}",
            rhs_token.line, rhs_token.column,
        )

    # -- lifespans ----------------------------------------------------------------------

    def _lifespan(self) -> ast.LifespanLiteral:
        if self._accept_keyword("ALWAYS"):
            return ast.LifespanLiteral((), always=True)
        intervals = [self._interval()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            intervals.append(self._interval())
        return ast.LifespanLiteral(tuple(intervals))

    def _interval(self) -> tuple[ast.Endpoint, ast.Endpoint]:
        self._expect(TokenType.LBRACKET, "'['")
        lo = self._endpoint()
        self._expect(TokenType.COMMA, "','")
        hi = self._endpoint()
        self._expect(TokenType.RBRACKET, "']'")
        return (lo, hi)

    def _endpoint(self) -> ast.Endpoint:
        token = self._peek()
        if token.type is TokenType.PARAM:
            self._advance()
            return ast.Parameter(str(token.value))
        return int(self._expect(TokenType.INT, "integer").value)  # type: ignore[arg-type]


def parse(source: str) -> ast.Statement:
    """Parse an HRQL statement string into its AST.

    >>> parse("SELECT WHEN SALARY >= 30000 IN EMP")     # doctest: +ELLIPSIS
    SelectNode(...)
    >>> parse("EXPLAIN TIMESLICE EMP TO [0, 9]")        # doctest: +ELLIPSIS
    ExplainNode(...)
    """
    return Parser(tokenize(source)).parse()
