"""Compile HRQL ASTs onto the historical algebra.

:func:`compile_query` maps an AST to an
:class:`~repro.algebra.expr.Expr` tree (relations), a
:class:`WhenQuery` wrapper (top-level ``WHEN`` — a lifespan, the
algebra's second sort), or an :class:`ExplainQuery` wrapper (top-level
``EXPLAIN`` — a rendered plan). :func:`run` parses, compiles,
optionally rewrites (the Section 5 laws), and evaluates in one call.

Bind parameters (``:name`` in the surface syntax) are resolved here:
``compile_query(ast, params={"min": 30_000})`` substitutes each
:class:`~repro.query.ast_nodes.Parameter` with its bound value, so the
parsed statement itself stays reusable — prepare once, bind and plan
per execution. A missing, unused, or ill-typed binding raises
:class:`~repro.core.errors.BindError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.algebra.when import when as when_fn
from repro.algebra import expr as E
from repro.algebra.predicates import And, AttrOp, AttrRef, Not, Or, Predicate
from repro.algebra.rewriter import rewrite
from repro.algebra.select import EXISTS, FORALL
from repro.core.errors import BindError, CompileError
from repro.core.lifespan import ALWAYS, Lifespan
from repro.core.relation import HistoricalRelation
from repro.planner.explain import PlanExplanation, explain as explain_fn
from repro.planner.planner import Planner
from repro.query import ast_nodes as ast
from repro.query.parser import parse


@dataclass(frozen=True)
class WhenQuery:
    """A compiled top-level ``WHEN (...)`` — evaluates to a lifespan."""

    child: E.Expr

    def evaluate(self, env: Mapping[str, HistoricalRelation]) -> Lifespan:
        return when_fn(self.child.evaluate(env))


@dataclass(frozen=True)
class ExplainQuery:
    """A compiled ``EXPLAIN [ANALYZE] query`` — evaluates to a plan.

    Evaluation plans the inner query through the cost-based planner
    (normalizing with the Section 5 laws unless ``normalize=False``)
    and, with ``analyze``, also executes the plan to record actual row
    counts and timings.
    """

    child: Union[E.Expr, WhenQuery]
    analyze: bool = False

    def evaluate(self, env: Mapping[str, HistoricalRelation],
                 normalize: bool = True) -> PlanExplanation:
        planner = Planner(normalize=normalize)
        if isinstance(self.child, WhenQuery):
            return explain_fn(self.child.child, env, when=True,
                              analyze=self.analyze, planner=planner)
        return explain_fn(self.child, env, analyze=self.analyze, planner=planner)


Compiled = Union[E.Expr, WhenQuery, ExplainQuery]


class _Binder:
    """Resolves :class:`~repro.query.ast_nodes.Parameter` nodes.

    Tracks which bindings were consumed so a typo'd extra binding is an
    error rather than a silent no-op.
    """

    def __init__(self, params: Optional[Mapping[str, Any]]):
        self._params = dict(params) if params else {}
        self._used: set[str] = set()

    def resolve(self, parameter: ast.Parameter) -> Any:
        try:
            value = self._params[parameter.name]
        except KeyError:
            raise BindError(
                f"parameter :{parameter.name} is not bound; "
                f"pass params={{{parameter.name!r}: ...}}"
            ) from None
        self._used.add(parameter.name)
        return value

    def resolve_chronon(self, parameter: ast.Parameter) -> int:
        value = self.resolve(parameter)
        if isinstance(value, bool) or not isinstance(value, int):
            raise BindError(
                f"interval endpoint :{parameter.name} must bind an integer "
                f"chronon, got {value!r}"
            )
        return value

    def finish(self) -> None:
        unused = sorted(set(self._params) - self._used)
        if unused:
            names = ", ".join(f":{name}" for name in unused)
            raise BindError(f"unknown parameter(s) {names} not used by the query")


def compile_predicate(node: ast.PredicateNode,
                      binder: Optional[_Binder] = None) -> Predicate:
    """Map a predicate AST onto the algebra's predicate language."""
    binder = binder or _Binder(None)
    if isinstance(node, ast.Comparison):
        if node.rhs_is_attribute:
            rhs: Any = AttrRef(node.rhs)
        elif isinstance(node.rhs, ast.Parameter):
            rhs = binder.resolve(node.rhs)
        else:
            rhs = node.rhs
        return AttrOp(node.attribute, node.theta, rhs)
    if isinstance(node, ast.BoolOp):
        parts = tuple(compile_predicate(p, binder) for p in node.parts)
        return And(*parts) if node.op == "and" else Or(*parts)
    if isinstance(node, ast.Negation):
        return Not(compile_predicate(node.inner, binder))
    raise CompileError(f"unknown predicate node {node!r}")


def compile_lifespan(node: ast.LifespanLiteral | None,
                     binder: Optional[_Binder] = None) -> Lifespan | None:
    """Map a lifespan literal; None stays None (meaning 'unbounded')."""
    if node is None:
        return None
    if node.always:
        return ALWAYS
    binder = binder or _Binder(None)

    def chronon(endpoint: ast.Endpoint) -> int:
        if isinstance(endpoint, ast.Parameter):
            return binder.resolve_chronon(endpoint)
        return endpoint

    return Lifespan(*((chronon(lo), chronon(hi)) for lo, hi in node.intervals))


_SETOP_NODES = {
    "union": E.Union_,
    "intersect": E.Intersection,
    "minus": E.Difference,
    "times": E.Product,
    "union_merged": E.UnionMerge,
    "intersect_merged": E.IntersectionMerge,
    "minus_merged": E.DifferenceMerge,
}


def compile_query(node: ast.Statement,
                  params: Optional[Mapping[str, Any]] = None) -> Compiled:
    """Map a query AST onto the algebra expression tree.

    *params* binds the statement's ``:name`` parameters; every
    parameter must be bound and every binding must be used
    (:class:`~repro.core.errors.BindError` otherwise).
    """
    binder = _Binder(params)
    compiled = _compile_statement(node, binder)
    binder.finish()
    return compiled


def _compile_statement(node: ast.Statement, binder: _Binder) -> Compiled:
    if isinstance(node, ast.ExplainNode):
        inner = node.child
        if isinstance(inner, ast.ExplainNode):
            raise CompileError("EXPLAIN cannot be nested")
        return ExplainQuery(_compile_statement(inner, binder), node.analyze)
    if isinstance(node, ast.WhenNode):
        return WhenQuery(_compile_relational(node.child, binder))
    return _compile_relational(node, binder)


def _compile_relational(node: ast.QueryNode, binder: _Binder) -> E.Expr:
    if isinstance(node, ast.RelationRef):
        return E.Rel(node.name)
    if isinstance(node, ast.SelectNode):
        child = _compile_relational(node.child, binder)
        predicate = compile_predicate(node.predicate, binder)
        bound = compile_lifespan(node.during, binder)
        if node.flavor == "if":
            quantifier = FORALL if node.quantifier == "forall" else EXISTS
            return E.SelectIf(child, predicate, quantifier, bound)
        return E.SelectWhen(child, predicate, bound)
    if isinstance(node, ast.ProjectNode):
        return E.Project(_compile_relational(node.child, binder), node.attributes)
    if isinstance(node, ast.RenameNode):
        return E.Rename(_compile_relational(node.child, binder), node.mapping)
    if isinstance(node, ast.TimeSliceNode):
        lifespan = compile_lifespan(node.lifespan, binder)
        assert lifespan is not None
        return E.TimeSlice(_compile_relational(node.child, binder), lifespan)
    if isinstance(node, ast.DynamicTimeSliceNode):
        return E.DynamicTimeSlice(_compile_relational(node.child, binder),
                                  node.attribute)
    if isinstance(node, ast.SetOpNode):
        try:
            ctor = _SETOP_NODES[node.op]
        except KeyError:
            raise CompileError(f"unknown set operator {node.op!r}") from None
        return ctor(_compile_relational(node.left, binder),
                    _compile_relational(node.right, binder))
    if isinstance(node, ast.JoinNode):
        left = _compile_relational(node.left, binder)
        right = _compile_relational(node.right, binder)
        if node.kind == "theta":
            assert node.left_attr and node.theta and node.right_attr
            return E.ThetaJoin(left, right, node.left_attr, node.theta, node.right_attr)
        if node.kind == "natural":
            return E.NaturalJoin(left, right)
        if node.kind == "time":
            assert node.via
            return E.TimeJoin(left, right, node.via)
        raise CompileError(f"unknown join kind {node.kind!r}")
    if isinstance(node, ast.WhenNode):
        raise CompileError("WHEN (...) is only allowed at the top level of a query")
    raise CompileError(f"unknown query node {node!r}")


def run(source: str, env: Mapping[str, HistoricalRelation],
        optimize: bool = False, params: Optional[Mapping[str, Any]] = None
        ) -> HistoricalRelation | Lifespan | PlanExplanation:
    """Parse, compile, optionally rewrite, and evaluate an HRQL statement.

    ``EXPLAIN [ANALYZE]`` statements return a
    :class:`~repro.planner.explain.PlanExplanation` (its ``str()`` is
    the rendered plan tree); plain queries return a relation or, for
    top-level ``WHEN``, a lifespan. *optimize* governs Section 5
    normalization uniformly: naive evaluation for plain queries, and
    whether the explained plan is normalized for ``EXPLAIN``.
    *params* binds ``:name`` parameters in the statement.

    >>> run("SELECT WHEN SALARY >= :min IN EMP", {"EMP": emp},
    ...     params={"min": 30_000})                          # doctest: +SKIP
    """
    compiled = compile_query(parse(source), params)
    if isinstance(compiled, ExplainQuery):
        return compiled.evaluate(env, normalize=optimize)
    if isinstance(compiled, WhenQuery):
        child = rewrite(compiled.child) if optimize else compiled.child
        return WhenQuery(child).evaluate(env)
    expression = rewrite(compiled) if optimize else compiled
    return expression.evaluate(env)
