"""Compile HRQL ASTs onto the historical algebra.

:func:`compile_query` maps an AST to an
:class:`~repro.algebra.expr.Expr` tree (relations), a
:class:`WhenQuery` wrapper (top-level ``WHEN`` — a lifespan, the
algebra's second sort), or an :class:`ExplainQuery` wrapper (top-level
``EXPLAIN`` — a rendered plan). :func:`run` parses, compiles,
optionally rewrites (the Section 5 laws), and evaluates in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.algebra.when import when as when_fn
from repro.algebra import expr as E
from repro.algebra.predicates import And, AttrOp, AttrRef, Not, Or, Predicate
from repro.algebra.rewriter import rewrite
from repro.algebra.select import EXISTS, FORALL
from repro.core.errors import CompileError
from repro.core.lifespan import ALWAYS, Lifespan
from repro.core.relation import HistoricalRelation
from repro.planner.explain import PlanExplanation, explain as explain_fn
from repro.planner.planner import Planner
from repro.query import ast_nodes as ast
from repro.query.parser import parse


@dataclass(frozen=True)
class WhenQuery:
    """A compiled top-level ``WHEN (...)`` — evaluates to a lifespan."""

    child: E.Expr

    def evaluate(self, env: Mapping[str, HistoricalRelation]) -> Lifespan:
        return when_fn(self.child.evaluate(env))


@dataclass(frozen=True)
class ExplainQuery:
    """A compiled ``EXPLAIN [ANALYZE] query`` — evaluates to a plan.

    Evaluation plans the inner query through the cost-based planner
    (normalizing with the Section 5 laws unless ``normalize=False``)
    and, with ``analyze``, also executes the plan to record actual row
    counts and timings.
    """

    child: Union[E.Expr, WhenQuery]
    analyze: bool = False

    def evaluate(self, env: Mapping[str, HistoricalRelation],
                 normalize: bool = True) -> PlanExplanation:
        planner = Planner(normalize=normalize)
        if isinstance(self.child, WhenQuery):
            return explain_fn(self.child.child, env, when=True,
                              analyze=self.analyze, planner=planner)
        return explain_fn(self.child, env, analyze=self.analyze, planner=planner)


Compiled = Union[E.Expr, WhenQuery, ExplainQuery]


def compile_predicate(node: ast.PredicateNode) -> Predicate:
    """Map a predicate AST onto the algebra's predicate language."""
    if isinstance(node, ast.Comparison):
        rhs = AttrRef(node.rhs) if node.rhs_is_attribute else node.rhs
        return AttrOp(node.attribute, node.theta, rhs)
    if isinstance(node, ast.BoolOp):
        parts = tuple(compile_predicate(p) for p in node.parts)
        return And(*parts) if node.op == "and" else Or(*parts)
    if isinstance(node, ast.Negation):
        return Not(compile_predicate(node.inner))
    raise CompileError(f"unknown predicate node {node!r}")


def compile_lifespan(node: ast.LifespanLiteral | None) -> Lifespan | None:
    """Map a lifespan literal; None stays None (meaning 'unbounded')."""
    if node is None:
        return None
    if node.always:
        return ALWAYS
    return Lifespan(*node.intervals)


_SETOP_NODES = {
    "union": E.Union_,
    "intersect": E.Intersection,
    "minus": E.Difference,
    "times": E.Product,
    "union_merged": E.UnionMerge,
    "intersect_merged": E.IntersectionMerge,
    "minus_merged": E.DifferenceMerge,
}


def compile_query(node: ast.Statement) -> Compiled:
    """Map a query AST onto the algebra expression tree."""
    if isinstance(node, ast.ExplainNode):
        inner = node.child
        if isinstance(inner, ast.ExplainNode):
            raise CompileError("EXPLAIN cannot be nested")
        return ExplainQuery(compile_query(inner), node.analyze)
    if isinstance(node, ast.WhenNode):
        return WhenQuery(_compile_relational(node.child))
    return _compile_relational(node)


def _compile_relational(node: ast.QueryNode) -> E.Expr:
    if isinstance(node, ast.RelationRef):
        return E.Rel(node.name)
    if isinstance(node, ast.SelectNode):
        child = _compile_relational(node.child)
        predicate = compile_predicate(node.predicate)
        bound = compile_lifespan(node.during)
        if node.flavor == "if":
            quantifier = FORALL if node.quantifier == "forall" else EXISTS
            return E.SelectIf(child, predicate, quantifier, bound)
        return E.SelectWhen(child, predicate, bound)
    if isinstance(node, ast.ProjectNode):
        return E.Project(_compile_relational(node.child), node.attributes)
    if isinstance(node, ast.RenameNode):
        return E.Rename(_compile_relational(node.child), node.mapping)
    if isinstance(node, ast.TimeSliceNode):
        lifespan = compile_lifespan(node.lifespan)
        assert lifespan is not None
        return E.TimeSlice(_compile_relational(node.child), lifespan)
    if isinstance(node, ast.DynamicTimeSliceNode):
        return E.DynamicTimeSlice(_compile_relational(node.child), node.attribute)
    if isinstance(node, ast.SetOpNode):
        try:
            ctor = _SETOP_NODES[node.op]
        except KeyError:
            raise CompileError(f"unknown set operator {node.op!r}") from None
        return ctor(_compile_relational(node.left), _compile_relational(node.right))
    if isinstance(node, ast.JoinNode):
        left = _compile_relational(node.left)
        right = _compile_relational(node.right)
        if node.kind == "theta":
            assert node.left_attr and node.theta and node.right_attr
            return E.ThetaJoin(left, right, node.left_attr, node.theta, node.right_attr)
        if node.kind == "natural":
            return E.NaturalJoin(left, right)
        if node.kind == "time":
            assert node.via
            return E.TimeJoin(left, right, node.via)
        raise CompileError(f"unknown join kind {node.kind!r}")
    if isinstance(node, ast.WhenNode):
        raise CompileError("WHEN (...) is only allowed at the top level of a query")
    raise CompileError(f"unknown query node {node!r}")


def run(source: str, env: Mapping[str, HistoricalRelation],
        optimize: bool = False) -> HistoricalRelation | Lifespan | PlanExplanation:
    """Parse, compile, optionally rewrite, and evaluate an HRQL statement.

    ``EXPLAIN [ANALYZE]`` statements return a
    :class:`~repro.planner.explain.PlanExplanation` (its ``str()`` is
    the rendered plan tree); plain queries return a relation or, for
    top-level ``WHEN``, a lifespan. *optimize* governs Section 5
    normalization uniformly: naive evaluation for plain queries, and
    whether the explained plan is normalized for ``EXPLAIN``.

    >>> run("SELECT WHEN SALARY >= 30000 IN EMP", {"EMP": emp})  # doctest: +SKIP
    """
    compiled = compile_query(parse(source))
    if isinstance(compiled, ExplainQuery):
        return compiled.evaluate(env, normalize=optimize)
    if isinstance(compiled, WhenQuery):
        child = rewrite(compiled.child) if optimize else compiled.child
        return WhenQuery(child).evaluate(env)
    expression = rewrite(compiled) if optimize else compiled
    return expression.evaluate(env)
