"""An interactive HRQL shell: ``python -m repro.query``.

Loads the demo personnel workload (relation ``EMP``) and reads HRQL
queries from stdin, printing relations as timeline-annotated tables and
lifespans directly. A minimal but real entry point for exploring the
model without writing a script.

Commands::

    \\relations           list loaded relations
    \\timelines NAME      draw the per-tuple lifespans of a relation
    \\quit                exit

Anything else is parsed as an HRQL query, e.g.::

    SELECT WHEN SALARY >= 60000 IN EMP
    WHEN (SELECT WHEN DEPT = 'Toys' IN EMP)
    EXPLAIN ANALYZE TIMESLICE EMP TO [10, 20]
"""

from __future__ import annotations

import sys

from repro.core.errors import HRDMError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.planner.explain import PlanExplanation
from repro.query.compiler import run
from repro.render import relation_table, relation_timelines
from repro.workloads import PersonnelConfig, generate_personnel

BANNER = """\
HRDM / HRQL shell — demo relation: EMP(NAME*, SALARY, DEPT), months 0..120
Type an HRQL query, \\relations, \\timelines EMP, or \\quit.
"""

MAX_TABLE_ROWS = 40


def default_environment() -> dict[str, HistoricalRelation]:
    """The demo environment: one generated personnel relation."""
    return {"EMP": generate_personnel(PersonnelConfig(n_employees=20, seed=7))}


def format_result(result: HistoricalRelation | Lifespan | PlanExplanation) -> str:
    """Render a query result for the terminal."""
    if isinstance(result, PlanExplanation):
        return result.text
    if isinstance(result, Lifespan):
        return f"lifespan: {result}"
    table = relation_table(result)
    lines = table.splitlines()
    if len(lines) > MAX_TABLE_ROWS:
        hidden = len(lines) - MAX_TABLE_ROWS
        lines = lines[:MAX_TABLE_ROWS] + [f"... ({hidden} more rows)"]
    summary = f"{len(result)} tuple(s); LS = {result.lifespan()}"
    return "\n".join([summary, *lines])


def execute(line: str, env: dict[str, HistoricalRelation]) -> str:
    """Run one shell line and return the printable response."""
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in ("\\quit", "\\q"):
        raise EOFError
    if stripped == "\\relations":
        return "\n".join(
            f"  {name}: {len(rel)} tuples, LS = {rel.lifespan()}"
            for name, rel in env.items()
        )
    if stripped.startswith("\\timelines"):
        parts = stripped.split()
        name = parts[1] if len(parts) > 1 else "EMP"
        if name not in env:
            return f"no relation named {name!r}"
        return relation_timelines(env[name], width=60)
    try:
        return format_result(run(stripped, env, optimize=True))
    except HRDMError as exc:
        return f"error: {exc}"


def main(argv: list[str] | None = None) -> int:
    del argv
    env = default_environment()
    print(BANNER)
    while True:
        try:
            line = input("hrql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            response = execute(line, env)
        except EOFError:
            return 0
        if response:
            print(response)


if __name__ == "__main__":
    sys.exit(main())
