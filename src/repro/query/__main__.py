"""An interactive HRQL shell: ``python -m repro.query``.

Loads the demo personnel workload (relation ``EMP``) into a
:class:`~repro.database.HistoricalDatabase` and reads HRQL queries from
stdin, printing relations as timeline-annotated tables, lifespans
directly, and ``EXPLAIN`` plans as trees. Queries may use ``:name``
bind parameters, set with ``\\set``.

Commands::

    \\relations           list loaded relations
    \\timelines NAME      draw the per-tuple lifespans of a relation
    \\set NAME VALUE      bind a session parameter (int, float, or 'str')
    \\params              show the session parameter bindings
    \\open PATH           open (or create) a durable database directory
    \\connect HOST:PORT[,HOST:PORT...]
                         switch to a remote database server; extra
                         addresses are read replicas (reads round-robin
                         across them, writes go to the first address)
    \\replicas            per-replica lag, from the server's STATUS frame
    \\shards              per-shard position and placement summary, when
                         connected to a repro.sharding coordinator
    \\promote [HOST:PORT] promote a replica to primary (fenced failover);
                         with no argument, a routed session promotes its
                         first replica, a direct one its own server
    \\checkpoint          snapshot the open durable database, truncate its WAL
    \\timing              toggle wall-clock reporting per statement
    \\quit                exit

Anything else is parsed as an HRQL query, e.g.::

    SELECT WHEN SALARY >= 60000 IN EMP
    SELECT WHEN SALARY >= :min IN EMP     -- after \\set min 60000
    WHEN (SELECT WHEN DEPT = 'Toys' IN EMP)
    EXPLAIN ANALYZE TIMESLICE EMP TO [10, 20]

The session runs against an embedded catalog by default; after
``\\connect`` the same commands (and the same scripts) run against a
:mod:`repro.server` with identical rendering — results cross the wire
as real relations, and ``\\timing`` makes the latency difference
observable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional

from repro.core.errors import HRDMError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.database import HistoricalDatabase, QueryResult
from repro.planner.explain import PlanExplanation
from repro.query import ast_nodes as ast
from repro.query.parser import parse
from repro.render import relation_table, relation_timelines
from repro.workloads import PersonnelConfig, generate_personnel

BANNER = """\
HRDM / HRQL shell — demo relation: EMP(NAME*, SALARY, DEPT), months 0..120
Type an HRQL query (\\set binds :name parameters), \\relations,
\\timelines EMP, \\open PATH (durable database), \\connect
HOST:PORT[,REPLICA...] (remote server, optional read replicas),
\\replicas (replication lag), \\shards (sharded-catalog status),
\\promote [HOST:PORT] (failover), \\checkpoint, \\timing, or \\quit.
"""

MAX_TABLE_ROWS = 40


def default_environment() -> HistoricalDatabase:
    """The demo environment: one generated personnel relation."""
    db = HistoricalDatabase("demo")
    emp = generate_personnel(PersonnelConfig(n_employees=20, seed=7))
    db.create_relation(emp.scheme, emp.tuples)
    return db


def format_result(
    result: QueryResult | HistoricalRelation | Lifespan | PlanExplanation,
) -> str:
    """Render a query result for the terminal.

    Accepts embedded results (:class:`QueryResult` and its raw values)
    and their remote twins (:class:`repro.client.RemoteResult`, whose
    plan explanations arrive as server-rendered text) — both render
    identically.
    """
    result = getattr(result, "value", result)
    if hasattr(result, "text"):  # PlanExplanation or RemoteExplanation
        return result.text
    if isinstance(result, Lifespan):
        return f"lifespan: {result}"
    table = relation_table(result)
    lines = table.splitlines()
    if len(lines) > MAX_TABLE_ROWS:
        hidden = len(lines) - MAX_TABLE_ROWS
        lines = lines[:MAX_TABLE_ROWS] + [f"... ({hidden} more rows)"]
    summary = f"{len(result)} tuple(s); LS = {result.lifespan()}"
    return "\n".join([summary, *lines])


def _parse_value(text: str) -> Any:
    """A \\set value: 'quoted' string, int, or float."""
    if len(text) >= 2 and text[0] == text[-1] == "'":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def execute(line: str, env: HistoricalDatabase,
            params: Optional[dict[str, Any]] = None,
            state: Optional[dict[str, Any]] = None) -> str:
    """Run one shell line and return the printable response.

    *params* holds the session's ``\\set`` bindings; queries consume
    only the bindings they actually reference. *state*, when given, is
    the shell's mutable session (``state["env"]``) so ``\\open`` can
    switch the active database.
    """
    params = params if params is not None else {}
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in ("\\quit", "\\q"):
        raise EOFError
    if stripped.startswith("\\open"):
        parts = stripped.split(maxsplit=1)
        if len(parts) < 2:
            return "usage: \\open PATH"
        if state is None:
            return "error: \\open needs an interactive session to switch into"
        try:
            db = HistoricalDatabase(path=parts[1])
        except HRDMError as exc:
            return f"error: {exc}"
        _release(env)
        state["env"] = db
        return (f"opened durable database {db.name!r} at {db.path} "
                f"({len(db)} relation(s))")
    if stripped.startswith("\\connect"):
        parts = stripped.split(maxsplit=1)
        if len(parts) < 2:
            return "usage: \\connect HOST:PORT[,HOST:PORT...]"
        if state is None:
            return "error: \\connect needs an interactive session to switch into"
        from repro.client import connect

        # First address is the primary; any further comma-separated
        # addresses are read replicas the routed client fans reads to.
        addresses = [a.strip() for a in parts[1].split(",") if a.strip()]
        try:
            client = connect(addresses[0], replicas=addresses[1:] or None)
        except (HRDMError, OSError) as exc:
            return f"error: {exc}"
        _release(env)
        state["env"] = client
        host, port = addresses[0].rsplit(":", 1)
        suffix = (f", reads routed across {len(addresses) - 1} replica(s)"
                  if len(addresses) > 1 else "")
        return (f"connected to database {client.name!r} at {host}:{port} "
                f"({len(client)} relation(s)){suffix}")
    if stripped == "\\replicas":
        if not getattr(env, "remote", False):
            return ("error: \\replicas needs a server connection; "
                    "\\connect HOST:PORT[,REPLICA...] first")
        try:
            status = env.status()
        except HRDMError as exc:
            return f"error: {exc}"
        if status.get("role") == "replica":
            info = status.get("replica", {})
            link = ("connected" if info.get("connected")
                    else "reconnecting to primary")
            return (f"  this server is a replica of {info.get('primary')}: "
                    f"applied (generation {info.get('applied_generation')}, "
                    f"lsn {info.get('applied_lsn')}) [{link}]")
        replicas = status.get("replicas", [])
        if not replicas:
            return "no replicas attached to this primary"
        lines = [f"primary at generation {status.get('generation')}, "
                 f"lsn {status.get('lsn')}:"]
        for rep in replicas:
            ack = rep.get("seconds_since_ack")
            lines.append(
                f"  {rep['id']} @ {rep.get('address')}: applied "
                f"(generation {rep.get('applied_generation')}, "
                f"lsn {rep.get('applied_lsn')}), "
                f"{rep.get('records_behind')} record(s) / "
                f"{rep.get('bytes_behind')} byte(s) behind, last ack "
                f"{'never' if ack is None else f'{ack:.1f}s ago'} "
                f"[{'connected' if rep.get('connected') else 'disconnected'}"
                f", {rep.get('mode')}]")
        return "\n".join(lines)
    if stripped == "\\shards":
        if not getattr(env, "remote", False):
            return ("error: \\shards needs a coordinator connection; "
                    "\\connect HOST:PORT first")
        try:
            status = env.status()
        except HRDMError as exc:
            return f"error: {exc}"
        if status.get("role") != "coordinator":
            return ("error: this server is not a shard coordinator "
                    f"(role {status.get('role')!r}); start one with "
                    "python -m repro.sharding coordinator")
        shards = status.get("shards", [])
        placements = status.get("relations", {})
        lines = [f"{status.get('n_shards')} shard(s), "
                 f"{len(placements)} relation(s) "
                 f"({sum(1 for p in placements.values() if p == 'hashed')} "
                 f"hashed, "
                 f"{sum(1 for p in placements.values() if p == 'broadcast')} "
                 f"broadcast):"]
        for shard in shards:
            if not shard.get("ok"):
                lines.append(f"  shard {shard['id']} @ {shard['address']}: "
                             f"unreachable ({shard.get('error')})")
                continue
            in_doubt = shard.get("in_doubt") or []
            doubt = (f", {len(in_doubt)} in-doubt txn(s)" if in_doubt else "")
            lines.append(
                f"  shard {shard['id']} @ {shard['address']}: "
                f"generation {shard.get('generation')}, "
                f"lsn {shard.get('lsn')}, epoch {shard.get('epoch')}, "
                f"{shard.get('tuples')} tuple(s), "
                f"{shard.get('wal_bytes')} WAL byte(s)"
                f" [{shard.get('role')}]{doubt}")
        return "\n".join(lines)
    if stripped.startswith("\\promote"):
        if not getattr(env, "remote", False):
            return ("error: \\promote needs a server connection; "
                    "\\connect HOST:PORT[,REPLICA...] first")
        parts = stripped.split(maxsplit=1)
        target = parts[1].strip() if len(parts) > 1 else None
        try:
            if hasattr(env, "rediscover"):  # a routed session
                epoch = env.promote(target)
                host, port = env.primary._address
                return (f"promoted {host}:{port} to primary (fencing epoch "
                        f"{epoch}); writes now route there")
            if target is not None:
                return ("error: \\promote HOST:PORT needs a routed session "
                        "(\\connect PRIMARY,REPLICA...); a direct session "
                        "promotes its own server with plain \\promote")
            epoch = env.promote()
            return (f"promoted this server to primary "
                    f"(fencing epoch {epoch})")
        except HRDMError as exc:
            return f"error: {exc}"
    if stripped == "\\timing":
        if state is None:
            return "error: \\timing needs an interactive session"
        state["timing"] = not state.get("timing", False)
        return f"timing is {'on' if state['timing'] else 'off'}"
    if stripped == "\\checkpoint":
        if not env.durable:
            return "error: the current database is not durable; \\open PATH first"
        generation = env.checkpoint()
        return f"checkpointed {env.name!r} at generation {generation}"
    if stripped == "\\relations":
        if getattr(env, "remote", False):
            # One RELATIONS frame instead of fetching every relation's
            # full contents; same rendering as the embedded branch.
            return "\n".join(
                f"  {info['name']}: {info['n_tuples']} tuples, "
                f"LS = {info['lifespan']} [{info['storage']}]"
                for info in env.relations_info()
            )
        return "\n".join(
            f"  {name}: {len(env[name])} tuples, LS = {env[name].lifespan()} "
            f"[{env.storage(name)}]"
            for name in env
        )
    if stripped.startswith("\\timelines"):
        parts = stripped.split()
        name = parts[1] if len(parts) > 1 else "EMP"
        if name not in env:
            return f"no relation named {name!r}"
        relation = env[name]
        if not isinstance(relation, HistoricalRelation):
            relation = relation.to_relation()
        return relation_timelines(relation, width=60)
    if stripped == "\\params":
        if not params:
            return "no session parameters; \\set NAME VALUE to bind one"
        return "\n".join(f"  :{k} = {v!r}" for k, v in sorted(params.items()))
    if stripped.startswith("\\set"):
        parts = stripped.split(maxsplit=2)
        if len(parts) < 3:
            return "usage: \\set NAME VALUE"
        params[parts[1].lstrip(":")] = _parse_value(parts[2])
        return f":{parts[1].lstrip(':')} bound"
    try:
        statement = parse(stripped)
        needed = ast.parameters(statement)
        bindings = {name: params[name] for name in needed if name in params}
        # A remote session ships the source text (the server re-parses);
        # an embedded one reuses the already-parsed statement.
        source = stripped if getattr(env, "remote", False) else statement
        started = time.perf_counter()
        result = env.query(source, bindings or None)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        rendered = format_result(result)
        if state is not None and state.get("timing"):
            rendered += f"\nTime: {elapsed_ms:.3f} ms"
        return rendered
    except HRDMError as exc:
        return f"error: {exc}"


def _release(env) -> None:
    """Close the session's previous database / connection, if closable."""
    close = getattr(env, "close", None)
    if close is not None:
        close()


def main(argv: list[str] | None = None) -> int:
    del argv
    state: dict[str, Any] = {"env": default_environment()}
    params: dict[str, Any] = {}
    print(BANNER)
    try:
        while True:
            try:
                line = input("hrql> ")
            except (EOFError, KeyboardInterrupt):
                print()
                break
            try:
                response = execute(line, state["env"], params, state)
            except EOFError:
                break
            if response:
                print(response)
    finally:
        _release(state["env"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
