"""An interactive HRQL shell: ``python -m repro.query``.

Loads the demo personnel workload (relation ``EMP``) into a
:class:`~repro.database.HistoricalDatabase` and reads HRQL queries from
stdin, printing relations as timeline-annotated tables, lifespans
directly, and ``EXPLAIN`` plans as trees. Queries may use ``:name``
bind parameters, set with ``\\set``.

Commands::

    \\relations           list loaded relations
    \\timelines NAME      draw the per-tuple lifespans of a relation
    \\set NAME VALUE      bind a session parameter (int, float, or 'str')
    \\params              show the session parameter bindings
    \\quit                exit

Anything else is parsed as an HRQL query, e.g.::

    SELECT WHEN SALARY >= 60000 IN EMP
    SELECT WHEN SALARY >= :min IN EMP     -- after \\set min 60000
    WHEN (SELECT WHEN DEPT = 'Toys' IN EMP)
    EXPLAIN ANALYZE TIMESLICE EMP TO [10, 20]
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from repro.core.errors import HRDMError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.database import HistoricalDatabase, QueryResult
from repro.planner.explain import PlanExplanation
from repro.query import ast_nodes as ast
from repro.query.parser import parse
from repro.render import relation_table, relation_timelines
from repro.workloads import PersonnelConfig, generate_personnel

BANNER = """\
HRDM / HRQL shell — demo relation: EMP(NAME*, SALARY, DEPT), months 0..120
Type an HRQL query (\\set binds :name parameters), \\relations,
\\timelines EMP, or \\quit.
"""

MAX_TABLE_ROWS = 40


def default_environment() -> HistoricalDatabase:
    """The demo environment: one generated personnel relation."""
    db = HistoricalDatabase("demo")
    emp = generate_personnel(PersonnelConfig(n_employees=20, seed=7))
    db.create_relation(emp.scheme, emp.tuples)
    return db


def format_result(
    result: QueryResult | HistoricalRelation | Lifespan | PlanExplanation,
) -> str:
    """Render a query result for the terminal."""
    if isinstance(result, QueryResult):
        result = result.value
    if isinstance(result, PlanExplanation):
        return result.text
    if isinstance(result, Lifespan):
        return f"lifespan: {result}"
    table = relation_table(result)
    lines = table.splitlines()
    if len(lines) > MAX_TABLE_ROWS:
        hidden = len(lines) - MAX_TABLE_ROWS
        lines = lines[:MAX_TABLE_ROWS] + [f"... ({hidden} more rows)"]
    summary = f"{len(result)} tuple(s); LS = {result.lifespan()}"
    return "\n".join([summary, *lines])


def _parse_value(text: str) -> Any:
    """A \\set value: 'quoted' string, int, or float."""
    if len(text) >= 2 and text[0] == text[-1] == "'":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def execute(line: str, env: HistoricalDatabase,
            params: Optional[dict[str, Any]] = None) -> str:
    """Run one shell line and return the printable response.

    *params* holds the session's ``\\set`` bindings; queries consume
    only the bindings they actually reference.
    """
    params = params if params is not None else {}
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in ("\\quit", "\\q"):
        raise EOFError
    if stripped == "\\relations":
        return "\n".join(
            f"  {name}: {len(env[name])} tuples, LS = {env[name].lifespan()} "
            f"[{env.storage(name)}]"
            for name in env
        )
    if stripped.startswith("\\timelines"):
        parts = stripped.split()
        name = parts[1] if len(parts) > 1 else "EMP"
        if name not in env:
            return f"no relation named {name!r}"
        relation = env[name]
        if not isinstance(relation, HistoricalRelation):
            relation = relation.to_relation()
        return relation_timelines(relation, width=60)
    if stripped == "\\params":
        if not params:
            return "no session parameters; \\set NAME VALUE to bind one"
        return "\n".join(f"  :{k} = {v!r}" for k, v in sorted(params.items()))
    if stripped.startswith("\\set"):
        parts = stripped.split(maxsplit=2)
        if len(parts) < 3:
            return "usage: \\set NAME VALUE"
        params[parts[1].lstrip(":")] = _parse_value(parts[2])
        return f":{parts[1].lstrip(':')} bound"
    try:
        statement = parse(stripped)
        needed = ast.parameters(statement)
        bindings = {name: params[name] for name in needed if name in params}
        return format_result(env.query(statement, bindings or None))
    except HRDMError as exc:
        return f"error: {exc}"


def main(argv: list[str] | None = None) -> int:
    del argv
    env = default_environment()
    params: dict[str, Any] = {}
    print(BANNER)
    while True:
        try:
            line = input("hrql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            response = execute(line, env, params)
        except EOFError:
            return 0
        if response:
            print(response)


if __name__ == "__main__":
    sys.exit(main())
