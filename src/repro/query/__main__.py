"""An interactive HRQL shell: ``python -m repro.query``.

Loads the demo personnel workload (relation ``EMP``) into a
:class:`~repro.database.HistoricalDatabase` and reads HRQL queries from
stdin, printing relations as timeline-annotated tables, lifespans
directly, and ``EXPLAIN`` plans as trees. Queries may use ``:name``
bind parameters, set with ``\\set``.

Commands::

    \\relations           list loaded relations
    \\timelines NAME      draw the per-tuple lifespans of a relation
    \\set NAME VALUE      bind a session parameter (int, float, or 'str')
    \\params              show the session parameter bindings
    \\open PATH           open (or create) a durable database directory
    \\checkpoint          snapshot the open durable database, truncate its WAL
    \\quit                exit

Anything else is parsed as an HRQL query, e.g.::

    SELECT WHEN SALARY >= 60000 IN EMP
    SELECT WHEN SALARY >= :min IN EMP     -- after \\set min 60000
    WHEN (SELECT WHEN DEPT = 'Toys' IN EMP)
    EXPLAIN ANALYZE TIMESLICE EMP TO [10, 20]
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from repro.core.errors import HRDMError
from repro.core.lifespan import Lifespan
from repro.core.relation import HistoricalRelation
from repro.database import HistoricalDatabase, QueryResult
from repro.planner.explain import PlanExplanation
from repro.query import ast_nodes as ast
from repro.query.parser import parse
from repro.render import relation_table, relation_timelines
from repro.workloads import PersonnelConfig, generate_personnel

BANNER = """\
HRDM / HRQL shell — demo relation: EMP(NAME*, SALARY, DEPT), months 0..120
Type an HRQL query (\\set binds :name parameters), \\relations,
\\timelines EMP, \\open PATH (durable database), \\checkpoint, or \\quit.
"""

MAX_TABLE_ROWS = 40


def default_environment() -> HistoricalDatabase:
    """The demo environment: one generated personnel relation."""
    db = HistoricalDatabase("demo")
    emp = generate_personnel(PersonnelConfig(n_employees=20, seed=7))
    db.create_relation(emp.scheme, emp.tuples)
    return db


def format_result(
    result: QueryResult | HistoricalRelation | Lifespan | PlanExplanation,
) -> str:
    """Render a query result for the terminal."""
    if isinstance(result, QueryResult):
        result = result.value
    if isinstance(result, PlanExplanation):
        return result.text
    if isinstance(result, Lifespan):
        return f"lifespan: {result}"
    table = relation_table(result)
    lines = table.splitlines()
    if len(lines) > MAX_TABLE_ROWS:
        hidden = len(lines) - MAX_TABLE_ROWS
        lines = lines[:MAX_TABLE_ROWS] + [f"... ({hidden} more rows)"]
    summary = f"{len(result)} tuple(s); LS = {result.lifespan()}"
    return "\n".join([summary, *lines])


def _parse_value(text: str) -> Any:
    """A \\set value: 'quoted' string, int, or float."""
    if len(text) >= 2 and text[0] == text[-1] == "'":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def execute(line: str, env: HistoricalDatabase,
            params: Optional[dict[str, Any]] = None,
            state: Optional[dict[str, Any]] = None) -> str:
    """Run one shell line and return the printable response.

    *params* holds the session's ``\\set`` bindings; queries consume
    only the bindings they actually reference. *state*, when given, is
    the shell's mutable session (``state["env"]``) so ``\\open`` can
    switch the active database.
    """
    params = params if params is not None else {}
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in ("\\quit", "\\q"):
        raise EOFError
    if stripped.startswith("\\open"):
        parts = stripped.split(maxsplit=1)
        if len(parts) < 2:
            return "usage: \\open PATH"
        if state is None:
            return "error: \\open needs an interactive session to switch into"
        try:
            db = HistoricalDatabase(path=parts[1])
        except HRDMError as exc:
            return f"error: {exc}"
        if env.durable:
            env.close()
        state["env"] = db
        return (f"opened durable database {db.name!r} at {db.path} "
                f"({len(db)} relation(s))")
    if stripped == "\\checkpoint":
        if not env.durable:
            return "error: the current database is not durable; \\open PATH first"
        generation = env.checkpoint()
        return f"checkpointed {env.name!r} at generation {generation}"
    if stripped == "\\relations":
        return "\n".join(
            f"  {name}: {len(env[name])} tuples, LS = {env[name].lifespan()} "
            f"[{env.storage(name)}]"
            for name in env
        )
    if stripped.startswith("\\timelines"):
        parts = stripped.split()
        name = parts[1] if len(parts) > 1 else "EMP"
        if name not in env:
            return f"no relation named {name!r}"
        relation = env[name]
        if not isinstance(relation, HistoricalRelation):
            relation = relation.to_relation()
        return relation_timelines(relation, width=60)
    if stripped == "\\params":
        if not params:
            return "no session parameters; \\set NAME VALUE to bind one"
        return "\n".join(f"  :{k} = {v!r}" for k, v in sorted(params.items()))
    if stripped.startswith("\\set"):
        parts = stripped.split(maxsplit=2)
        if len(parts) < 3:
            return "usage: \\set NAME VALUE"
        params[parts[1].lstrip(":")] = _parse_value(parts[2])
        return f":{parts[1].lstrip(':')} bound"
    try:
        statement = parse(stripped)
        needed = ast.parameters(statement)
        bindings = {name: params[name] for name in needed if name in params}
        return format_result(env.query(statement, bindings or None))
    except HRDMError as exc:
        return f"error: {exc}"


def main(argv: list[str] | None = None) -> int:
    del argv
    state: dict[str, Any] = {"env": default_environment()}
    params: dict[str, Any] = {}
    print(BANNER)
    try:
        while True:
            try:
                line = input("hrql> ")
            except (EOFError, KeyboardInterrupt):
                print()
                break
            try:
                response = execute(line, state["env"], params, state)
            except EOFError:
                break
            if response:
                print(response)
    finally:
        env = state["env"]
        if env.durable:
            env.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
