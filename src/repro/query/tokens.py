"""Token definitions for HRQL, the small textual query language.

HRQL is a keyword-oriented surface syntax for the historical algebra,
so users (and the examples) can write::

    SELECT WHEN SALARY >= 30000 IN EMP
    SELECT WHEN SALARY >= :min IN EMP        -- with a bind parameter
    PROJECT NAME, DEPT FROM (TIMESLICE EMP TO [0, 59])
    EMP NATURAL JOIN MANAGES
    WHEN (SELECT WHEN DEPT = 'Toys' IN EMP)

Tokens carry their source position for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Lexical token categories."""

    IDENT = auto()       # attribute / relation names
    INT = auto()         # integer literal
    FLOAT = auto()       # float literal
    STRING = auto()      # 'quoted' string literal
    KEYWORD = auto()     # reserved word (case-insensitive)
    THETA = auto()       # = != < <= > >=
    PARAM = auto()       # :name — a bind parameter
    COMMA = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    EOF = auto()


#: Reserved words (stored uppercase; matching is case-insensitive).
KEYWORDS = frozenset({
    "SELECT", "IF", "WHEN", "IN", "PROJECT", "FROM", "TIMESLICE", "TO",
    "VIA", "UNION", "INTERSECT", "MINUS", "TIMES", "JOIN", "NATURAL",
    "TIMEJOIN", "ON", "AND", "OR", "NOT", "EXISTS", "FORALL", "DURING",
    "MERGED", "ALWAYS", "RENAME", "EXPLAIN", "ANALYZE",
})

#: θ comparison operators, longest first for maximal-munch lexing.
THETA_LEXEMES = (">=", "<=", "!=", "<>", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"
