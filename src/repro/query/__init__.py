"""HRQL — a small textual query language for the historical algebra.

Lexer → parser → compiler → :mod:`repro.algebra.expr` trees. Entry
point: :func:`repro.query.run`.
"""

from repro.query.compiler import (
    ExplainQuery,
    WhenQuery,
    compile_lifespan,
    compile_predicate,
    compile_query,
    run,
)
from repro.query.lexer import tokenize
from repro.query.parser import parse

__all__ = [
    "ExplainQuery",
    "WhenQuery",
    "compile_lifespan",
    "compile_predicate",
    "compile_query",
    "parse",
    "run",
    "tokenize",
]
