"""Abstract syntax tree for HRQL.

A deliberately small AST, separate from the algebra expression tree of
:mod:`repro.algebra.expr` so the surface language and the algebra can
evolve independently; :mod:`repro.query.compiler` maps one to the
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# -- parameters --------------------------------------------------------------


@dataclass(frozen=True)
class Parameter:
    """``:name`` — a bind parameter standing in for a literal.

    Parameters may appear wherever a literal may: on the right-hand
    side of a comparison and as interval endpoints in lifespan
    literals. They are resolved at compile (bind) time from the
    ``params`` mapping, so one parsed statement can be re-planned
    cheaply under different bindings.
    """

    name: str


# -- predicate AST -----------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``ATTR θ literal``, ``ATTR θ :param``, or ``ATTR θ ATTR``."""

    attribute: str
    theta: str
    rhs: Union[int, float, str, Parameter]
    rhs_is_attribute: bool = False


@dataclass(frozen=True)
class BoolOp:
    """``AND`` / ``OR`` over sub-predicates."""

    op: str  # "and" | "or"
    parts: Tuple["PredicateNode", ...]


@dataclass(frozen=True)
class Negation:
    """``NOT`` of a sub-predicate."""

    inner: "PredicateNode"


PredicateNode = Union[Comparison, BoolOp, Negation]


# -- lifespan AST ---------------------------------------------------------------


#: An interval endpoint: a chronon literal or a bind parameter.
Endpoint = Union[int, Parameter]


@dataclass(frozen=True)
class LifespanLiteral:
    """``[lo, hi], [lo, hi], ...`` or the keyword ``ALWAYS``.

    Endpoints may be bind parameters (``[:lo, :hi]``), resolved when
    the statement is compiled with a ``params`` mapping.
    """

    intervals: Tuple[Tuple[Endpoint, Endpoint], ...]
    always: bool = False


# -- relation expression AST ------------------------------------------------------


@dataclass(frozen=True)
class RelationRef:
    """A named base relation."""

    name: str


@dataclass(frozen=True)
class SelectNode:
    """``SELECT IF|WHEN pred [EXISTS|FORALL] [DURING L] IN child``."""

    flavor: str  # "if" | "when"
    predicate: PredicateNode
    child: "QueryNode"
    quantifier: Optional[str] = None  # "exists" | "forall" (IF only)
    during: Optional[LifespanLiteral] = None


@dataclass(frozen=True)
class ProjectNode:
    """``PROJECT a, b, c FROM child``."""

    attributes: Tuple[str, ...]
    child: "QueryNode"


@dataclass(frozen=True)
class TimeSliceNode:
    """``TIMESLICE child TO [lo, hi]`` (static)."""

    child: "QueryNode"
    lifespan: LifespanLiteral


@dataclass(frozen=True)
class DynamicTimeSliceNode:
    """``TIMESLICE child VIA attr`` (dynamic, through a TT attribute)."""

    child: "QueryNode"
    attribute: str


@dataclass(frozen=True)
class SetOpNode:
    """``left UNION|INTERSECT|MINUS|TIMES right`` (MERGED variants too)."""

    op: str  # "union" | "intersect" | "minus" | "times" (+ "_merged")
    left: "QueryNode"
    right: "QueryNode"


@dataclass(frozen=True)
class JoinNode:
    """``left JOIN right ON a θ b`` | ``left NATURAL JOIN right`` |
    ``left TIMEJOIN right VIA attr``."""

    kind: str  # "theta" | "natural" | "time"
    left: "QueryNode"
    right: "QueryNode"
    left_attr: Optional[str] = None
    theta: Optional[str] = None
    right_attr: Optional[str] = None
    via: Optional[str] = None


@dataclass(frozen=True)
class RenameNode:
    """``RENAME old TO new [, old TO new ...] IN child``."""

    mapping: Tuple[Tuple[str, str], ...]
    child: "QueryNode"


@dataclass(frozen=True)
class WhenNode:
    """``WHEN (child)`` — produces a lifespan, not a relation."""

    child: "QueryNode"


@dataclass(frozen=True)
class ExplainNode:
    """``EXPLAIN [ANALYZE] query`` — produces a plan explanation.

    Only allowed at the very top of a statement; with ``analyze`` the
    plan is also executed so actual costs appear beside estimates.
    """

    child: "QueryNode"
    analyze: bool = False


QueryNode = Union[
    RelationRef,
    RenameNode,
    SelectNode,
    ProjectNode,
    TimeSliceNode,
    DynamicTimeSliceNode,
    SetOpNode,
    JoinNode,
    WhenNode,
]

#: A full statement: a query, optionally wrapped in EXPLAIN.
Statement = Union[QueryNode, ExplainNode]


def parameters(node: object) -> Tuple[str, ...]:
    """The names of the bind parameters in *node*, in first-use order.

    Walks the whole statement tree (predicates, lifespan literals,
    nested queries) and returns each distinct ``:name`` once.

    >>> from repro.query.parser import parse
    >>> parameters(parse("SELECT WHEN SALARY >= :min DURING [:lo, 59] IN EMP"))
    ('min', 'lo')
    """
    found: list[str] = []

    def visit(value: object) -> None:
        if isinstance(value, Parameter):
            if value.name not in found:
                found.append(value.name)
        elif isinstance(value, tuple):
            for item in value:
                visit(item)
        elif hasattr(value, "__dataclass_fields__"):
            for field in value.__dataclass_fields__:
                visit(getattr(value, field))

    visit(node)
    return tuple(found)
