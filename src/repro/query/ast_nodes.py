"""Abstract syntax tree for HRQL.

A deliberately small AST, separate from the algebra expression tree of
:mod:`repro.algebra.expr` so the surface language and the algebra can
evolve independently; :mod:`repro.query.compiler` maps one to the
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# -- predicate AST -----------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``ATTR θ literal`` or ``ATTR θ ATTR``."""

    attribute: str
    theta: str
    rhs: Union[int, float, str]
    rhs_is_attribute: bool = False


@dataclass(frozen=True)
class BoolOp:
    """``AND`` / ``OR`` over sub-predicates."""

    op: str  # "and" | "or"
    parts: Tuple["PredicateNode", ...]


@dataclass(frozen=True)
class Negation:
    """``NOT`` of a sub-predicate."""

    inner: "PredicateNode"


PredicateNode = Union[Comparison, BoolOp, Negation]


# -- lifespan AST ---------------------------------------------------------------


@dataclass(frozen=True)
class LifespanLiteral:
    """``[lo, hi], [lo, hi], ...`` or the keyword ``ALWAYS``."""

    intervals: Tuple[Tuple[int, int], ...]
    always: bool = False


# -- relation expression AST ------------------------------------------------------


@dataclass(frozen=True)
class RelationRef:
    """A named base relation."""

    name: str


@dataclass(frozen=True)
class SelectNode:
    """``SELECT IF|WHEN pred [EXISTS|FORALL] [DURING L] IN child``."""

    flavor: str  # "if" | "when"
    predicate: PredicateNode
    child: "QueryNode"
    quantifier: Optional[str] = None  # "exists" | "forall" (IF only)
    during: Optional[LifespanLiteral] = None


@dataclass(frozen=True)
class ProjectNode:
    """``PROJECT a, b, c FROM child``."""

    attributes: Tuple[str, ...]
    child: "QueryNode"


@dataclass(frozen=True)
class TimeSliceNode:
    """``TIMESLICE child TO [lo, hi]`` (static)."""

    child: "QueryNode"
    lifespan: LifespanLiteral


@dataclass(frozen=True)
class DynamicTimeSliceNode:
    """``TIMESLICE child VIA attr`` (dynamic, through a TT attribute)."""

    child: "QueryNode"
    attribute: str


@dataclass(frozen=True)
class SetOpNode:
    """``left UNION|INTERSECT|MINUS|TIMES right`` (MERGED variants too)."""

    op: str  # "union" | "intersect" | "minus" | "times" (+ "_merged")
    left: "QueryNode"
    right: "QueryNode"


@dataclass(frozen=True)
class JoinNode:
    """``left JOIN right ON a θ b`` | ``left NATURAL JOIN right`` |
    ``left TIMEJOIN right VIA attr``."""

    kind: str  # "theta" | "natural" | "time"
    left: "QueryNode"
    right: "QueryNode"
    left_attr: Optional[str] = None
    theta: Optional[str] = None
    right_attr: Optional[str] = None
    via: Optional[str] = None


@dataclass(frozen=True)
class RenameNode:
    """``RENAME old TO new [, old TO new ...] IN child``."""

    mapping: Tuple[Tuple[str, str], ...]
    child: "QueryNode"


@dataclass(frozen=True)
class WhenNode:
    """``WHEN (child)`` — produces a lifespan, not a relation."""

    child: "QueryNode"


@dataclass(frozen=True)
class ExplainNode:
    """``EXPLAIN [ANALYZE] query`` — produces a plan explanation.

    Only allowed at the very top of a statement; with ``analyze`` the
    plan is also executed so actual costs appear beside estimates.
    """

    child: "QueryNode"
    analyze: bool = False


QueryNode = Union[
    RelationRef,
    RenameNode,
    SelectNode,
    ProjectNode,
    TimeSliceNode,
    DynamicTimeSliceNode,
    SetOpNode,
    JoinNode,
    WhenNode,
]

#: A full statement: a query, optionally wrapped in EXPLAIN.
Statement = Union[QueryNode, ExplainNode]
